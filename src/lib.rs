//! # openmp-mca — facade crate
//!
//! Reproduction of *"OpenMP-MCA: Leveraging Multiprocessor Embedded Systems
//! using industry standards"* (Sun, Chandrasekaran, Chapman; IPDPSW 2015) as
//! a Rust workspace.  This facade re-exports every subsystem so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`platform`] — the simulated T4240RDB/P4080DS embedded platform;
//! * [`mrapi`] — the MCA resource-management API (plus the paper's
//!   thread-level node and `use_malloc` memory extensions);
//! * [`mcapi`] — the MCA communications API;
//! * [`mtapi`] — the MCA task-management API;
//! * [`romp`] — the OpenMP-style runtime with native and MCA backends
//!   (the paper's libGOMP vs. MCA-libGOMP pair);
//! * [`trace`] — the observability layer: ring-buffered trace spans, a
//!   metrics registry, and the chrome://tracing exporter;
//! * [`epcc`] — the EPCC microbenchmark suite (Table I);
//! * [`npb`] — NAS Parallel Benchmark kernels (Figure 4);
//! * [`validation`] — the OpenMP validation suite analogue (§6A).
//!
//! ```
//! use openmp_mca::romp::{Runtime, BackendKind};
//!
//! let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
//! let sum: u64 = rt.parallel_reduce_sum(4, 0..1000u64, |i| i);
//! assert_eq!(sum, 499_500);
//! ```

pub use mca_mcapi as mcapi;
pub use mca_mrapi as mrapi;
pub use mca_mtapi as mtapi;
pub use mca_platform as platform;
pub use romp;
pub use romp::trace;
pub use romp_epcc as epcc;
pub use romp_npb as npb;
pub use romp_validation as validation;
