//! Sample statistics for the benchmark harness (EPCC reports mean, standard
//! deviation, and outlier-trimmed confidence figures).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum; +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Mean after dropping samples more than `k` standard deviations from the
/// mean — EPCC's outlier rejection (it uses k = 3).
pub fn trimmed_mean(xs: &[f64], k: f64) -> f64 {
    let m = mean(xs);
    let sd = std_dev(xs);
    if sd == 0.0 {
        return m;
    }
    let kept: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| (x - m).abs() <= k * sd)
        .collect();
    if kept.is_empty() {
        m
    } else {
        mean(&kept)
    }
}

/// Median (of a copy; input untouched).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_sync::rng::SmallRng;

    /// A random sample of `len in [min_len, max_len)` values in ±1e6.
    fn sample(rng: &mut SmallRng, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = rng.gen_index(min_len, max_len);
        (0..len).map(|_| rng.gen_f64_range(-1e6, 1e6)).collect()
    }

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[7.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(trimmed_mean(&[2.0, 2.0, 2.0], 3.0), 2.0);
    }

    #[test]
    fn trimming_drops_outliers() {
        let mut xs = vec![10.0; 20];
        xs.push(10_000.0);
        let t = trimmed_mean(&xs, 3.0);
        assert!(
            (t - 10.0).abs() < 1e-9,
            "outlier should be rejected, got {t}"
        );
    }

    #[test]
    fn mean_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(0xe9cc_0001);
        for _ in 0..256 {
            let xs = sample(&mut rng, 1, 50);
            let m = mean(&xs);
            assert!(m >= min(&xs) - 1e-9 && m <= max(&xs) + 1e-9);
        }
    }

    #[test]
    fn sd_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(0xe9cc_0002);
        for _ in 0..256 {
            let xs = sample(&mut rng, 2, 50);
            assert!(std_dev(&xs) >= 0.0);
        }
    }

    #[test]
    fn median_is_order_statistic() {
        let mut rng = SmallRng::seed_from_u64(0xe9cc_0003);
        for _ in 0..256 {
            let xs = sample(&mut rng, 1, 50);
            let med = median(&xs);
            let below = xs.iter().filter(|&&x| x <= med + 1e-12).count();
            let above = xs.iter().filter(|&&x| x >= med - 1e-12).count();
            assert!(below * 2 >= xs.len());
            assert!(above * 2 >= xs.len());
        }
    }
}
