//! # romp-epcc — the EPCC OpenMP microbenchmark suite
//!
//! A port of J. Bull's EPCC synchronisation benchmark methodology (the
//! paper's ref.\[48\], used for its Table I): measure the *overhead* of each
//! OpenMP construct as the difference between
//!
//! * the time to execute a calibrated busy-work `delay` inside the
//!   construct, and
//! * the reference time to execute the same delay serially,
//!
//! both normalised per inner repetition, repeated over several outer
//! repetitions to get a mean and standard deviation.
//!
//! The constructs covered are exactly Table I's rows — `parallel`, `for`,
//! `parallel for`, `barrier`, `single`, `critical`, `reduction` — plus
//! `lock` (EPCC measures it; the paper's table omits it) as an extension.
//!
//! ```
//! use romp::{Runtime, BackendKind};
//! use romp_epcc::{Construct, EpccConfig, measure};
//!
//! let rt = Runtime::with_backend(BackendKind::Native).unwrap();
//! let cfg = EpccConfig::quick(2);
//! let m = measure(&rt, Construct::Barrier, &cfg);
//! assert!(m.test_us > 0.0);
//! ```

pub mod arraybench;
pub mod schedbench;
pub mod stats;

use std::hint::black_box;
use std::time::Instant;

use romp::{ReduceOp, Runtime, Schedule};

/// The constructs Table I reports (plus the EPCC `lock` row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Construct {
    /// `#pragma omp parallel`.
    Parallel,
    /// `#pragma omp for` inside an open region.
    For,
    /// Combined `#pragma omp parallel for`.
    ParallelFor,
    /// `#pragma omp barrier` inside an open region.
    Barrier,
    /// `#pragma omp single` inside an open region.
    Single,
    /// `#pragma omp critical` inside an open region.
    Critical,
    /// `#pragma omp parallel reduction(+:x)`.
    Reduction,
    /// `omp_set_lock`/`omp_unset_lock` (EPCC extension row).
    Lock,
}

impl Construct {
    /// Table I's seven rows, in the paper's order.
    pub fn table1() -> [Construct; 7] {
        [
            Construct::Parallel,
            Construct::For,
            Construct::ParallelFor,
            Construct::Barrier,
            Construct::Single,
            Construct::Critical,
            Construct::Reduction,
        ]
    }

    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Construct::Parallel => "Parallel",
            Construct::For => "For",
            Construct::ParallelFor => "Parallel for",
            Construct::Barrier => "Barrier",
            Construct::Single => "Single",
            Construct::Critical => "Critical",
            Construct::Reduction => "Reduction",
            Construct::Lock => "Lock",
        }
    }
}

/// Measurement parameters (EPCC's `outerreps`/`innerreps`/`delaylength`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpccConfig {
    /// Team size under test.
    pub threads: usize,
    /// Outer repetitions: each yields one overhead sample.
    pub outer_reps: usize,
    /// Inner repetitions: constructs timed per sample.
    pub inner_reps: usize,
    /// Busy-work units inside each construct (see [`delay`]).
    pub delay_len: u64,
}

impl EpccConfig {
    /// EPCC-like defaults: 20 outer reps, calibrated ~0.1 µs delay.
    pub fn standard(threads: usize) -> Self {
        EpccConfig {
            threads,
            outer_reps: 20,
            inner_reps: 256,
            delay_len: calibrate_delay(100),
        }
    }

    /// Small configuration for tests and smoke runs.
    pub fn quick(threads: usize) -> Self {
        EpccConfig {
            threads,
            outer_reps: 3,
            inner_reps: 16,
            delay_len: 32,
        }
    }
}

/// One construct's measurement at one team size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    pub construct: Construct,
    pub threads: usize,
    /// Mean time per inner repetition of the construct, microseconds.
    pub test_us: f64,
    /// Mean serial reference time per inner repetition, microseconds.
    pub reference_us: f64,
    /// Mean overhead (`test - reference`), microseconds.
    pub overhead_us: f64,
    /// Standard deviation of the overhead samples, microseconds.
    pub sd_us: f64,
}

/// The EPCC busy-work delay: `len` dependent floating-point updates the
/// optimizer cannot remove.
#[inline]
pub fn delay(len: u64) {
    let mut a = 0.55f64;
    for _ in 0..len {
        a = black_box(a * a + 0.001);
        if a > 10.0 {
            a -= 9.0;
        }
    }
    black_box(a);
}

/// Pick a `delay_len` whose serial execution takes roughly `target_ns`.
pub fn calibrate_delay(target_ns: u64) -> u64 {
    // Time a large batch to dodge timer granularity.
    let probe = 1u64 << 16;
    let t0 = Instant::now();
    delay(probe);
    let per_unit_ns = t0.elapsed().as_nanos() as f64 / probe as f64;
    ((target_ns as f64 / per_unit_ns).round() as u64).max(1)
}

/// Serial reference: mean microseconds for one `delay(delay_len)` call,
/// measured the same way the construct tests are.
pub fn reference_time_us(cfg: &EpccConfig) -> f64 {
    let mut samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        for _ in 0..cfg.inner_reps {
            delay(cfg.delay_len);
        }
        samples.push(t0.elapsed().as_secs_f64() * 1e6 / cfg.inner_reps as f64);
    }
    stats::mean(&samples)
}

fn time_block(cfg: &EpccConfig, mut block: impl FnMut()) -> Vec<f64> {
    // One warm-up rep primes the thread pool and code caches, as EPCC does.
    block();
    let mut samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        block();
        samples.push(t0.elapsed().as_secs_f64() * 1e6 / cfg.inner_reps as f64);
    }
    samples
}

/// Measure one construct's overhead on `rt` (EPCC `syncbench` logic).
pub fn measure(rt: &Runtime, construct: Construct, cfg: &EpccConfig) -> Measurement {
    let n = cfg.threads;
    let inner = cfg.inner_reps as u64;
    let len = cfg.delay_len;
    let samples = match construct {
        Construct::Parallel => time_block(cfg, || {
            for _ in 0..inner {
                rt.parallel(n, |_| delay(len));
            }
        }),
        Construct::For => time_block(cfg, || {
            rt.parallel(n, |w| {
                for _ in 0..inner {
                    w.for_range(0..n as u64, Schedule::Static { chunk: None }, |_| {
                        delay(len)
                    });
                }
            });
        }),
        Construct::ParallelFor => time_block(cfg, || {
            for _ in 0..inner {
                rt.parallel_for(n, 0..n as u64, Schedule::Static { chunk: None }, |_| {
                    delay(len)
                });
            }
        }),
        Construct::Barrier => time_block(cfg, || {
            rt.parallel(n, |w| {
                for _ in 0..inner {
                    delay(len);
                    w.barrier();
                }
            });
        }),
        Construct::Single => time_block(cfg, || {
            rt.parallel(n, |w| {
                for _ in 0..inner {
                    w.single(|| delay(len));
                }
            });
        }),
        Construct::Critical => time_block(cfg, || {
            rt.parallel(n, |w| {
                // innerreps criticals in total, split across the team.
                let mine = inner / n as u64 + u64::from((w.thread_num() as u64) < inner % n as u64);
                for _ in 0..mine {
                    w.critical("epcc", || delay(len));
                }
            });
        }),
        Construct::Lock => {
            let lock = rt.new_lock();
            time_block(cfg, || {
                rt.parallel(n, |w| {
                    let mine =
                        inner / n as u64 + u64::from((w.thread_num() as u64) < inner % n as u64);
                    for _ in 0..mine {
                        lock.with(|| delay(len));
                    }
                });
            })
        }
        Construct::Reduction => time_block(cfg, || {
            for _ in 0..inner {
                rt.parallel(n, |w| {
                    delay(len);
                    black_box(w.reduce_u64(1, ReduceOp::Sum));
                });
            }
        }),
    };
    let reference_us = reference_time_us(cfg);
    let overheads: Vec<f64> = samples.iter().map(|s| s - reference_us).collect();
    Measurement {
        construct,
        threads: n,
        test_us: stats::mean(&samples),
        reference_us,
        overhead_us: stats::mean(&overheads),
        sd_us: stats::std_dev(&overheads),
    }
}

/// Measure every Table I construct at one team size.
pub fn measure_table1(rt: &Runtime, cfg: &EpccConfig) -> Vec<Measurement> {
    Construct::table1()
        .iter()
        .map(|&c| measure(rt, c, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    #[test]
    fn delay_scales_roughly_linearly() {
        let t = |len| {
            let t0 = Instant::now();
            delay(len);
            t0.elapsed().as_nanos() as f64
        };
        // Warm up, then compare 1x vs 8x.
        t(1 << 12);
        let one = t(1 << 14);
        let eight = t(1 << 17);
        assert!(
            eight > one * 3.0,
            "8x work should take clearly longer ({one} vs {eight})"
        );
    }

    #[test]
    fn calibration_hits_target_order_of_magnitude() {
        let len = calibrate_delay(1_000);
        let t0 = Instant::now();
        for _ in 0..64 {
            delay(len);
        }
        let per = t0.elapsed().as_nanos() as f64 / 64.0;
        assert!(
            per > 100.0 && per < 100_000.0,
            "calibrated delay ({len}) ran at {per} ns, wanted ~1000"
        );
    }

    #[test]
    fn reference_time_positive_and_stable() {
        let cfg = EpccConfig::quick(1);
        let r = reference_time_us(&cfg);
        assert!(r > 0.0);
    }

    #[test]
    fn all_constructs_measure_without_panic() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let cfg = EpccConfig::quick(2);
        for c in Construct::table1().into_iter().chain([Construct::Lock]) {
            let m = measure(&rt, c, &cfg);
            assert_eq!(m.construct, c);
            assert!(m.test_us > 0.0, "{c:?} produced non-positive test time");
            assert!(
                m.test_us >= m.reference_us * 0.1,
                "{c:?} wildly below reference"
            );
        }
    }

    #[test]
    fn table1_runs_on_both_backends() {
        for kind in BackendKind::all() {
            let rt = Runtime::with_backend(kind).unwrap();
            let rows = measure_table1(&rt, &EpccConfig::quick(2));
            assert_eq!(rows.len(), 7);
        }
    }

    #[test]
    fn barrier_overhead_exceeds_nothing_burner() {
        // A barrier in a 4-thread team must cost more than the pure delay.
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let cfg = EpccConfig {
            threads: 4,
            outer_reps: 5,
            inner_reps: 64,
            delay_len: 16,
        };
        let m = measure(&rt, Construct::Barrier, &cfg);
        assert!(
            m.test_us > m.reference_us,
            "barrier block ({}) should exceed serial reference ({})",
            m.test_us,
            m.reference_us
        );
    }

    #[test]
    fn labels_match_paper_rows() {
        let labels: Vec<&str> = Construct::table1().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Parallel",
                "For",
                "Parallel for",
                "Barrier",
                "Single",
                "Critical",
                "Reduction"
            ]
        );
    }
}
