//! EPCC `schedbench`: loop-scheduling overheads.
//!
//! The second half of Bull's suite measures how much each *loop schedule*
//! costs as a function of chunk size: the loop body is the same calibrated
//! delay, the iteration count is fixed, and the schedule/chunk vary.  The
//! overhead is again test-time minus the reference time for the same total
//! work done serially.
//!
//! These numbers back Table I's `For` row (which EPCC measures under static
//! scheduling) and the scheduling ablation in DESIGN.md: dynamic pays per
//! chunk (so small chunks are expensive), guided starts large and shrinks,
//! static costs almost nothing beyond the barrier.

use crate::{delay, stats, EpccConfig};
use romp::{Runtime, Schedule};
use std::time::Instant;

/// One schedbench measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedMeasurement {
    pub schedule: Schedule,
    pub threads: usize,
    /// Iterations in the measured loop.
    pub iterations: u64,
    /// Mean time per loop instance, microseconds.
    pub loop_us: f64,
    /// Serial reference for the same total work, microseconds.
    pub reference_us: f64,
    /// Mean overhead per loop instance, microseconds.
    pub overhead_us: f64,
    /// Standard deviation of the overhead samples.
    pub sd_us: f64,
}

/// The chunk sizes Bull's schedbench sweeps (powers of two).
pub fn standard_chunks() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128]
}

/// Measure one schedule at one team size.  The loop runs
/// `iterations = 128 · threads` delay bodies, as schedbench does, so the
/// per-thread work is constant across team sizes.
pub fn measure_schedule(rt: &Runtime, sched: Schedule, cfg: &EpccConfig) -> SchedMeasurement {
    let iterations = 128 * cfg.threads as u64;
    let len = cfg.delay_len;
    // Serial reference: the same iterations, no runtime.
    let mut ref_samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        for _ in 0..iterations {
            delay(len);
        }
        ref_samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let reference_us = stats::mean(&ref_samples) / cfg.threads as f64;

    // Warm-up then measure: one parallel region per sample, inner_reps
    // loop instances inside it.
    let run = || {
        rt.parallel(cfg.threads, |w| {
            for _ in 0..cfg.inner_reps {
                w.for_range(0..iterations, sched, |_| delay(len));
            }
        });
    };
    run();
    let mut samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        run();
        samples.push(t0.elapsed().as_secs_f64() * 1e6 / cfg.inner_reps as f64);
    }
    let loop_us = stats::mean(&samples);
    let overheads: Vec<f64> = samples.iter().map(|s| s - reference_us).collect();
    SchedMeasurement {
        schedule: sched,
        threads: cfg.threads,
        iterations,
        loop_us,
        reference_us,
        overhead_us: stats::mean(&overheads),
        sd_us: stats::std_dev(&overheads),
    }
}

/// The full schedbench sweep: static (blocked + chunked), dynamic and
/// guided across [`standard_chunks`].
pub fn sweep(rt: &Runtime, cfg: &EpccConfig) -> Vec<SchedMeasurement> {
    let mut out = vec![measure_schedule(rt, Schedule::Static { chunk: None }, cfg)];
    for &chunk in &standard_chunks() {
        out.push(measure_schedule(
            rt,
            Schedule::Static { chunk: Some(chunk) },
            cfg,
        ));
        out.push(measure_schedule(rt, Schedule::Dynamic { chunk }, cfg));
        out.push(measure_schedule(rt, Schedule::Guided { chunk }, cfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn quick_cfg(threads: usize) -> EpccConfig {
        EpccConfig {
            threads,
            outer_reps: 3,
            inner_reps: 4,
            delay_len: 16,
        }
    }

    #[test]
    fn schedules_measure_positively() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let cfg = quick_cfg(2);
        for sched in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(4) },
            Schedule::Dynamic { chunk: 4 },
            Schedule::Guided { chunk: 4 },
        ] {
            let m = measure_schedule(&rt, sched, &cfg);
            assert!(m.loop_us > 0.0, "{sched:?}");
            assert_eq!(m.iterations, 256);
        }
    }

    #[test]
    fn dynamic_chunk1_costs_more_than_static() {
        // The canonical schedbench shape: dynamic,1 pays a shared-cursor
        // round trip per iteration; blocked static pays one partition.
        // The loop body is empty (delay_len 1) so scheduling dominates;
        // retried because wall-clock noise on a loaded host can mask it.
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let cfg = EpccConfig {
            threads: 4,
            outer_reps: 7,
            inner_reps: 8,
            delay_len: 1,
        };
        for attempt in 0..5 {
            let stat = measure_schedule(&rt, Schedule::Static { chunk: None }, &cfg);
            let dyn1 = measure_schedule(&rt, Schedule::Dynamic { chunk: 1 }, &cfg);
            if dyn1.loop_us > stat.loop_us {
                return;
            }
            eprintln!(
                "attempt {attempt}: dynamic,1 {} vs static {} — retrying",
                dyn1.loop_us, stat.loop_us
            );
        }
        panic!("dynamic,1 never exceeded blocked static across 5 attempts");
    }

    #[test]
    fn sweep_covers_all_schedules() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let cfg = EpccConfig {
            threads: 2,
            outer_reps: 2,
            inner_reps: 2,
            delay_len: 4,
        };
        let rows = sweep(&rt, &cfg);
        assert_eq!(rows.len(), 1 + 3 * standard_chunks().len());
    }

    #[test]
    fn mca_backend_schedbench_smoke() {
        let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
        let m = measure_schedule(&rt, Schedule::Guided { chunk: 2 }, &quick_cfg(3));
        assert!(m.loop_us.is_finite() && m.loop_us > 0.0);
    }
}
