//! EPCC `arraybench`: data-environment overheads.
//!
//! The third component of Bull's suite measures what `private`,
//! `firstprivate` and `copyprivate` clauses cost as the privatised array
//! grows: every region entry must materialise (and for `firstprivate`,
//! copy) a per-thread array of `size` elements.  In Rust the privatised
//! storage is an explicit per-worker allocation, so the measured cost is
//! the same thing libGOMP pays in its data-environment setup.

use crate::{delay, stats, EpccConfig};
use romp::Runtime;
use std::hint::black_box;
use std::time::Instant;

/// Which data-environment clause is being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayClause {
    /// `private(a)` — uninitialised per-thread array.
    Private,
    /// `firstprivate(a)` — per-thread copy of the master's array.
    FirstPrivate,
    /// `single copyprivate(a)` — one thread fills, everyone receives.
    CopyPrivate,
}

impl ArrayClause {
    /// All clauses, suite order.
    pub fn all() -> [ArrayClause; 3] {
        [
            ArrayClause::Private,
            ArrayClause::FirstPrivate,
            ArrayClause::CopyPrivate,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ArrayClause::Private => "private",
            ArrayClause::FirstPrivate => "firstprivate",
            ArrayClause::CopyPrivate => "copyprivate",
        }
    }
}

/// One arraybench measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayMeasurement {
    pub clause: ArrayClause,
    pub threads: usize,
    /// Privatised array length (f64 elements).
    pub size: usize,
    /// Mean time per region entry, microseconds.
    pub region_us: f64,
    /// Reference: the same entry with no data environment, microseconds.
    pub reference_us: f64,
    /// Mean overhead attributable to the clause, microseconds.
    pub overhead_us: f64,
    pub sd_us: f64,
}

/// The array sizes EPCC sweeps (per the suite: 1 … 59049 in powers of 3;
/// trimmed to keep host runs quick).
pub fn standard_sizes() -> Vec<usize> {
    vec![1, 9, 81, 729, 6561]
}

/// Measure one clause at one array size.
pub fn measure_clause(
    rt: &Runtime,
    clause: ArrayClause,
    size: usize,
    cfg: &EpccConfig,
) -> ArrayMeasurement {
    let n = cfg.threads;
    let len = cfg.delay_len;
    let inner = cfg.inner_reps;
    let master_copy: Vec<f64> = (0..size).map(|i| i as f64).collect();

    // Reference: region entries with the busy-work but no data environment.
    let run_ref = || {
        for _ in 0..inner {
            rt.parallel(n, |_| delay(len));
        }
    };
    run_ref();
    let mut ref_samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        run_ref();
        ref_samples.push(t0.elapsed().as_secs_f64() * 1e6 / inner as f64);
    }
    let reference_us = stats::mean(&ref_samples);

    let run_test = || {
        for _ in 0..inner {
            match clause {
                ArrayClause::Private => rt.parallel(n, |_| {
                    let mut a = vec![0.0f64; size];
                    a[size / 2] = 1.0;
                    black_box(&a);
                    delay(len);
                }),
                ArrayClause::FirstPrivate => rt.parallel(n, |_| {
                    let mut a = master_copy.clone();
                    a[size / 2] += 1.0;
                    black_box(&a);
                    delay(len);
                }),
                ArrayClause::CopyPrivate => rt.parallel(n, |w| {
                    let a: Vec<f64> = w.single_copy(|| master_copy.clone());
                    black_box(&a);
                    delay(len);
                }),
            }
        }
    };
    run_test();
    let mut samples = Vec::with_capacity(cfg.outer_reps);
    for _ in 0..cfg.outer_reps {
        let t0 = Instant::now();
        run_test();
        samples.push(t0.elapsed().as_secs_f64() * 1e6 / inner as f64);
    }
    let region_us = stats::mean(&samples);
    let overheads: Vec<f64> = samples.iter().map(|s| s - reference_us).collect();
    ArrayMeasurement {
        clause,
        threads: n,
        size,
        region_us,
        reference_us,
        overhead_us: stats::mean(&overheads),
        sd_us: stats::std_dev(&overheads),
    }
}

/// Full arraybench sweep: every clause × [`standard_sizes`].
pub fn sweep(rt: &Runtime, cfg: &EpccConfig) -> Vec<ArrayMeasurement> {
    let mut out = Vec::new();
    for clause in ArrayClause::all() {
        for &size in &standard_sizes() {
            out.push(measure_clause(rt, clause, size, cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn cfg(threads: usize) -> EpccConfig {
        EpccConfig {
            threads,
            outer_reps: 3,
            inner_reps: 4,
            delay_len: 8,
        }
    }

    #[test]
    fn all_clauses_measure() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        for clause in ArrayClause::all() {
            let m = measure_clause(&rt, clause, 81, &cfg(2));
            assert!(m.region_us > 0.0, "{clause:?}");
            assert_eq!(m.size, 81);
        }
    }

    #[test]
    fn firstprivate_cost_grows_with_size() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let c = EpccConfig {
            threads: 2,
            outer_reps: 5,
            inner_reps: 8,
            delay_len: 4,
        };
        // Copying a 64k-element array per thread per region must cost
        // measurably more than a 1-element one; compare region times
        // directly (reference cancels).
        let small = measure_clause(&rt, ArrayClause::FirstPrivate, 1, &c);
        let big = measure_clause(&rt, ArrayClause::FirstPrivate, 65536, &c);
        assert!(
            big.region_us > small.region_us,
            "copy cost must grow: {} vs {}",
            big.region_us,
            small.region_us
        );
    }

    #[test]
    fn sweep_covers_grid_on_mca() {
        let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
        let rows = sweep(&rt, &cfg(2));
        assert_eq!(rows.len(), 3 * standard_sizes().len());
        assert!(rows.iter().all(|r| r.region_us.is_finite()));
    }

    #[test]
    fn labels() {
        assert_eq!(ArrayClause::Private.label(), "private");
        assert_eq!(ArrayClause::FirstPrivate.label(), "firstprivate");
        assert_eq!(ArrayClause::CopyPrivate.label(), "copyprivate");
    }
}
