//! Criterion version of the Table I measurement: each OpenMP construct on
//! both backends, so regressions in the MCA plumbing show up as a ratio
//! drift between the `native/…` and `mca/…` series.

use std::time::Duration;

use ompmca_bench::harness::BenchGroup;
use romp::{BackendKind, ReduceOp, Runtime, Schedule};

const TEAM: usize = 4;

fn main() {
    let mut group = BenchGroup::new("constructs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let label = kind.label();
        group.bench_function(format!("{label}/parallel"), |b| {
            b.iter(|| rt.parallel(TEAM, |_| {}));
        });
        group.bench_function(format!("{label}/for"), |b| {
            b.iter(|| {
                rt.parallel(TEAM, |w| {
                    w.for_range(0..TEAM as u64, Schedule::Static { chunk: None }, |_| {});
                })
            });
        });
        group.bench_function(format!("{label}/barrier"), |b| {
            b.iter(|| {
                rt.parallel(TEAM, |w| {
                    for _ in 0..8 {
                        w.barrier();
                    }
                })
            });
        });
        group.bench_function(format!("{label}/single"), |b| {
            b.iter(|| {
                rt.parallel(TEAM, |w| {
                    w.single(|| {});
                })
            });
        });
        group.bench_function(format!("{label}/critical"), |b| {
            b.iter(|| {
                rt.parallel(TEAM, |w| {
                    w.critical("bench", || {});
                })
            });
        });
        group.bench_function(format!("{label}/reduction"), |b| {
            b.iter(|| {
                rt.parallel(TEAM, |w| {
                    w.reduce_u64(1, ReduceOp::Sum);
                })
            });
        });
    }
    group.finish();
}
