//! Ablation for §5A.1: thread-level MRAPI nodes (the paper's extension)
//! versus the process-level style that stock MRAPI encourages.
//!
//! "The overhead due to launching a process and inter-process communication
//! (IPC) can be a performance kill … threads are light-weight … able to
//! exchange large data structures simply by passing pointers rather than
//! copying."  The two series measure exactly that: a worker-thread node
//! exchanging a payload by pointer, versus a node exchanging it through a
//! system-segment copy (the process-style IPC path).

use std::sync::Arc;
use std::time::Duration;

use mca_mrapi::{DomainId, MrapiSystem, NodeId, ShmemAttributes};
use ompmca_bench::harness::BenchGroup;

const PAYLOAD: usize = 64 * 1024;

fn main() {
    let mut group = BenchGroup::new("node_modes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Thread-level node: spawn, hand over an Arc (pointer passing), join.
    group.bench_function("thread_node/spawn_and_share", |b| {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let payload: Arc<Vec<u8>> = Arc::new(vec![42u8; PAYLOAD]);
        let mut next = 1u32;
        b.iter(|| {
            let p = Arc::clone(&payload);
            let w = master
                .thread_create(NodeId(next), move |_| {
                    p.iter().map(|&b| b as u64).sum::<u64>()
                })
                .unwrap();
            next += 1;
            std::hint::black_box(w.join().unwrap());
        });
    });

    // Process-style node: spawn, copy the payload through a system segment
    // (serialize → IPC segment → deserialize), join.
    group.bench_function("process_style/spawn_and_copy", |b| {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let payload = vec![42u8; PAYLOAD];
        let mut next = 1u32;
        b.iter(|| {
            let key = 0x100 + next;
            let shm = master
                .shmem_create(key, PAYLOAD, &ShmemAttributes::default())
                .unwrap();
            shm.write_bytes(0, &payload); // "send": copy into the segment
            let w = master
                .thread_create(NodeId(next), move |me| {
                    let shm = me.shmem_get(key).unwrap();
                    let mut local = vec![0u8; PAYLOAD];
                    shm.read_bytes(0, &mut local); // "receive": copy out
                    local.iter().map(|&b| b as u64).sum::<u64>()
                })
                .unwrap();
            next += 1;
            std::hint::black_box(w.join().unwrap());
            shm.delete().unwrap();
        });
    });
    group.finish();
}
