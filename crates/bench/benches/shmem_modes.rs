//! Ablation for §5A.2: MRAPI shared memory with the paper's `use_malloc`
//! extension (process-heap, thread-shareable, no IPC costs) versus the
//! stock system-segment mode (coherency fence + modeled mapping/access
//! costs) — the motivation for Listing 3's `gomp_malloc` change.

use std::time::Duration;

use mca_mrapi::{DomainId, MrapiSystem, NodeId, ShmemAttributes};
use ompmca_bench::harness::BenchGroup;

fn main() {
    let sys = MrapiSystem::new_t4240();
    let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    let heap = node
        .shmem_create(
            1,
            4096,
            &ShmemAttributes {
                use_malloc: true,
                ..Default::default()
            },
        )
        .unwrap();
    let segment = node
        .shmem_create(2, 4096, &ShmemAttributes::default())
        .unwrap();

    let mut group = BenchGroup::new("shmem_modes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("use_malloc/word_rw", |b| {
        b.iter(|| {
            for i in 0..64usize {
                heap.write_u64(i * 8 % 4096, i as u64);
                std::hint::black_box(heap.read_u64(i * 8 % 4096));
            }
        });
    });
    group.bench_function("segment/word_rw", |b| {
        b.iter(|| {
            for i in 0..64usize {
                segment.write_u64(i * 8 % 4096, i as u64);
                std::hint::black_box(segment.read_u64(i * 8 % 4096));
            }
        });
    });
    group.bench_function("use_malloc/bulk_1k", |b| {
        let buf = [7u8; 1024];
        let mut out = [0u8; 1024];
        b.iter(|| {
            heap.write_bytes(0, &buf);
            heap.read_bytes(0, &mut out);
            std::hint::black_box(out[0]);
        });
    });
    group.bench_function("segment/bulk_1k", |b| {
        let buf = [7u8; 1024];
        let mut out = [0u8; 1024];
        b.iter(|| {
            segment.write_bytes(0, &buf);
            segment.read_bytes(0, &mut out);
            std::hint::black_box(out[0]);
        });
    });
    group.finish();
}
