//! Ablation for §5B.3: the runtime's own spin-then-park lock (native)
//! versus the MRAPI mutex with its lock-key protocol (MCA), uncontended and
//! under team contention — the substitution behind Table I's `Critical`
//! row.

use std::time::Duration;

use ompmca_bench::harness::BenchGroup;
use romp::{BackendKind, Runtime};

fn main() {
    let mut group = BenchGroup::new("lock_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let label = kind.label();
        let lock = rt.new_lock();
        group.bench_function(format!("{label}/uncontended"), |b| {
            b.iter(|| {
                for _ in 0..100 {
                    lock.with(|| std::hint::black_box(0u64));
                }
            });
        });
        let lock2 = rt.new_lock();
        group.bench_function(format!("{label}/contended_t4"), |b| {
            b.iter(|| {
                rt.parallel(4, |_| {
                    for _ in 0..50 {
                        lock2.with(|| std::hint::black_box(0u64));
                    }
                })
            });
        });
    }
    group.finish();
}
