//! Ablation: barrier algorithm (centralized vs combining tree).
//!
//! DESIGN.md's barrier-choice ablation: the tree barrier combines arrivals
//! per 4-core cluster before crossing the fabric on the modeled board; on
//! the host this measures the pure algorithmic difference.

use std::time::Duration;

use ompmca_bench::harness::BenchGroup;
use romp::{BackendKind, BarrierKind, Config, Runtime};

fn main() {
    let mut group = BenchGroup::new("barrier_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, kind) in [
        ("centralized", BarrierKind::Centralized),
        ("tree4", BarrierKind::Tree { arity: 4 }),
        ("tree2", BarrierKind::Tree { arity: 2 }),
    ] {
        for team in [2usize, 4, 8] {
            let rt = Runtime::with_config(
                Config::default()
                    .with_backend(BackendKind::Native)
                    .with_barrier(kind),
            )
            .unwrap();
            group.bench_function(format!("{name}/t{team}"), |b| {
                b.iter(|| {
                    rt.parallel(team, |w| {
                        for _ in 0..16 {
                            w.barrier();
                        }
                    })
                });
            });
        }
    }
    group.finish();
}
