//! Task-scheduler shape ablation: the pre-refactor single shared task
//! queue versus the current two-level work-stealing scheduler (per-worker
//! bounded rings + overflow injector + round-robin stealing), at the
//! team sizes the paper's board exercises (1/4/8/24 workers).
//!
//! Both sides run the same workload — the `taskloop` pattern: each worker
//! repeatedly queues a burst of trivial tasks and drains to completion —
//! so the measured difference is purely the queue discipline.  The
//! `single_queue` series routes every push and pop through one shared
//! lock-protected FIFO (the old `TeamShared.tasks`); the `work_stealing`
//! series is the scheduler the runtime now uses.  An imbalanced variant
//! (one producer, everyone drains) shows stealing redistributing work.
//!
//! The second group hammers the lock-free construct ring through the real
//! runtime: back-to-back `single nowait` and `sections` constructs, whose
//! per-construct state lookup used to take a team-global backend lock on
//! every encounter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use mca_sync::deque::{Injector, RingQueue, Steal};
use mca_sync::queue::SharedQueue;
use mca_sync::CachePadded;
use ompmca_bench::harness::BenchGroup;
use romp::{BackendKind, Runtime, Schedule};

type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Bursts per round and tasks per burst: the burst stays under the local
/// ring capacity (256), matching `taskloop`'s queue-then-wait shape.
const BURSTS: usize = 8;
const BURST: usize = 200;

/// Old discipline: every worker pushes to and pops from one shared FIFO.
fn single_queue_round(workers: usize) -> u64 {
    let executed = AtomicU64::new(0);
    let outstanding = AtomicUsize::new(0);
    let queue: SharedQueue<Task<'_>> = SharedQueue::new();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                for _ in 0..BURSTS {
                    for _ in 0..BURST {
                        let executed = &executed;
                        outstanding.fetch_add(1, Ordering::AcqRel);
                        queue.push(Box::new(move || {
                            executed.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                    while outstanding.load(Ordering::Acquire) > 0 {
                        match queue.pop() {
                            Some(t) => {
                                t();
                                outstanding.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                }
            });
        }
    });
    executed.load(Ordering::Relaxed)
}

/// Current discipline: per-worker rings, shared injector, stealing.
/// `producers` limits who queues work (everyone still drains), so the
/// imbalanced variant exercises the steal path heavily.
fn work_stealing_round(workers: usize, producers: usize) -> u64 {
    let executed = AtomicU64::new(0);
    let outstanding = AtomicUsize::new(0);
    let rings: Vec<CachePadded<RingQueue<Task<'_>>>> = (0..workers)
        .map(|_| CachePadded::new(RingQueue::new(256)))
        .collect();
    let injector: Injector<Task<'_>> = Injector::new();
    let take = |tid: usize| -> Option<Task<'_>> {
        if let Some(t) = rings[tid].pop() {
            return Some(t);
        }
        loop {
            match injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        for k in 1..workers {
            if let Some(t) = rings[(tid + k) % workers].pop() {
                return Some(t);
            }
        }
        None
    };
    std::thread::scope(|s| {
        for tid in 0..workers {
            let rings = &rings;
            let injector = &injector;
            let executed = &executed;
            let outstanding = &outstanding;
            let take = &take;
            s.spawn(move || {
                // Producers queue the same total work as in the
                // single-queue round, split across however many there are.
                let my_bursts = if tid < producers {
                    BURSTS * workers / producers
                } else {
                    0
                };
                for _ in 0..my_bursts {
                    for _ in 0..BURST {
                        outstanding.fetch_add(1, Ordering::AcqRel);
                        let task: Task<'_> = Box::new(move || {
                            executed.fetch_add(1, Ordering::Relaxed);
                        });
                        if let Err(t) = rings[tid].push(task) {
                            injector.push(t);
                        }
                    }
                    while outstanding.load(Ordering::Acquire) > 0 {
                        match take(tid) {
                            Some(t) => {
                                t();
                                outstanding.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => break,
                        }
                    }
                }
                // Non-producers (and finished producers) help drain.
                while outstanding.load(Ordering::Acquire) > 0 {
                    match take(tid) {
                        Some(t) => {
                            t();
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });
    executed.load(Ordering::Relaxed)
}

fn main() {
    let expect = |workers: usize| (workers * BURSTS * BURST) as u64;

    // Per-operation cost of each queue discipline with a plain `u64`
    // payload, so allocation stays out of the numbers.  Uncontended, the
    // locked `VecDeque` is *cheaper* per op (one lock CAS + pointer bump
    // versus the ring's sequenced slot atomics); what the refactor buys is
    // the contended arm below — every shared-FIFO op serializes on one
    // lock and one cache line, while private rings never touch a line
    // another thread writes.
    let mut ops = BenchGroup::new("queue_ops");
    ops.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    let shared: SharedQueue<u64> = SharedQueue::new();
    ops.bench_function("shared_fifo/push_pop", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                shared.push(i);
            }
            let mut acc = 0u64;
            while let Some(v) = shared.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    });
    let ring: RingQueue<u64> = RingQueue::new(256);
    ops.bench_function("local_ring/push_pop", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                let _ = ring.push(i);
            }
            let mut acc = 0u64;
            while let Some(v) = ring.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    });
    // Contended: 8 threads hammering the one shared FIFO, versus 8
    // threads each owning a private ring.  Same total op count.  On a
    // multi-core host the FIFO arm serializes every op through one lock
    // word (an RFO per acquire); a single-core host timeshares instead —
    // no line ever bounces — so both arms degenerate to their uncontended
    // constant factors there and the ratio says nothing about scaling.
    const CONTEND_THREADS: usize = 8;
    const CONTEND_CYCLES: usize = 64;
    ops.bench_function("shared_fifo/contended_x8", |b| {
        b.iter(|| {
            let q: SharedQueue<u64> = SharedQueue::new();
            std::thread::scope(|s| {
                for _ in 0..CONTEND_THREADS {
                    s.spawn(|| {
                        for _ in 0..CONTEND_CYCLES {
                            for i in 0..64u64 {
                                q.push(i);
                            }
                            for _ in 0..64 {
                                while q.pop().is_none() {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    });
                }
            });
        });
    });
    ops.bench_function("local_ring/contended_x8", |b| {
        b.iter(|| {
            let rings: Vec<RingQueue<u64>> =
                (0..CONTEND_THREADS).map(|_| RingQueue::new(256)).collect();
            std::thread::scope(|s| {
                for r in &rings {
                    s.spawn(move || {
                        for _ in 0..CONTEND_CYCLES {
                            for i in 0..64u64 {
                                let _ = r.push(i);
                            }
                            while r.pop().is_some() {}
                        }
                    });
                }
            });
        });
    });
    let ops_results = ops.finish();
    let per_op = |label: &str, ops_per_iter: f64| {
        ops_results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.median_ns / ops_per_iter)
    };
    if let (Some(fifo), Some(local)) = (
        per_op("shared_fifo/push_pop", 128.0),
        per_op("local_ring/push_pop", 128.0),
    ) {
        println!("-- uncontended: shared fifo {fifo:.1} ns/op, local ring {local:.1} ns/op --");
    }
    let contended_ops = (CONTEND_THREADS * CONTEND_CYCLES * 128) as f64;
    if let (Some(fifo), Some(local)) = (
        per_op("shared_fifo/contended_x8", contended_ops),
        per_op("local_ring/contended_x8", contended_ops),
    ) {
        println!(
            "-- contended x8: shared fifo {fifo:.1} ns/op, local ring {local:.1} ns/op, \
             ratio {:.2}x --\n",
            fifo / local
        );
    }

    let mut group = BenchGroup::new("task_throughput");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    for workers in [1usize, 4, 8, 24] {
        group.bench_function(format!("single_queue/w{workers}"), |b| {
            b.iter(|| assert_eq!(single_queue_round(workers), expect(workers)));
        });
        group.bench_function(format!("work_stealing/w{workers}"), |b| {
            b.iter(|| assert_eq!(work_stealing_round(workers, workers), expect(workers)));
        });
    }
    group.bench_function("work_stealing_imbalanced/w8", |b| {
        b.iter(|| assert_eq!(work_stealing_round(8, 1), expect(8)));
    });
    let results = group.finish();

    // Headline comparison: tasks/s at each worker count, and the ratio the
    // refactor is accountable for (≥ 2x at 8+ workers on multi-core hosts;
    // still expected > 1 oversubscribed, where the win is fewer
    // lock-holder preemptions rather than parallel pops).
    println!("-- throughput summary (tasks/second, median) --");
    for workers in [1usize, 4, 8, 24] {
        let find = |prefix: &str| {
            results
                .iter()
                .find(|r| r.label == format!("{prefix}/w{workers}"))
                .map(|r| expect(workers) as f64 / (r.median_ns / 1e9))
        };
        if let (Some(sq), Some(ws)) = (find("single_queue"), find("work_stealing")) {
            println!(
                "  w{workers:<3} single_queue {:>12.0}/s   work_stealing {:>12.0}/s   ratio {:.2}x",
                sq,
                ws,
                ws / sq
            );
        }
    }

    // Construct-ring contention: nowait constructs back-to-back through
    // the full runtime; each encounter is one ring lookup + release.
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let mut ring = BenchGroup::new("construct_ring");
    ring.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    for team in [4usize, 8] {
        ring.bench_function(format!("single_nowait_x64/t{team}"), |b| {
            b.iter(|| {
                rt.parallel(team, |w| {
                    for _ in 0..64 {
                        w.single_nowait(|| ());
                    }
                })
            });
        });
        ring.bench_function(format!("sections_x16/t{team}"), |b| {
            b.iter(|| {
                rt.parallel(team, |w| {
                    for _ in 0..16 {
                        w.sections(team, |_| ());
                    }
                })
            });
        });
        ring.bench_function(format!("dynamic_for_x16/t{team}"), |b| {
            b.iter(|| {
                rt.parallel(team, |w| {
                    for _ in 0..16 {
                        w.for_range_nowait(0..64, Schedule::Dynamic { chunk: 4 }, |_| {});
                    }
                })
            });
        });
    }
    ring.finish();
}
