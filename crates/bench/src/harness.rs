//! A small self-contained benchmark harness (criterion-style API).
//!
//! The workspace builds hermetically with no external crates, so the
//! ablation benches under `benches/` drive this harness instead of
//! criterion.  The shape is deliberately criterion-like — groups, labeled
//! bench functions, a [`Bencher::iter`] callback — so the benches read the
//! same; the statistics are simpler: per-sample nanoseconds-per-iteration,
//! reported as median/mean/min over a fixed sample count.
//!
//! Methodology: a calibration pass during the warm-up window estimates the
//! cost of one iteration, the iteration count is then chosen so each sample
//! runs long enough to dominate timer noise, and `sample_size` samples are
//! taken.  The median is the headline number (robust against scheduler
//! hiccups on oversubscribed hosts, the reproduction's usual habitat).

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier the benches use.
pub use std::hint::black_box;

/// Passed to each bench function; [`Bencher::iter`] times the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for this sample's iteration count and record the elapsed
    /// time.  The closure's result is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// One bench function's summary statistics (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub label: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
}

/// A named group of related bench functions.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// A group with criterion-like defaults (10 samples, 300 ms warm-up,
    /// 1 s measurement budget).
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            results: Vec::new(),
        }
    }

    /// Samples per bench function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Calibration/warm-up window per bench function.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per bench function (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Measure one labeled bench function and print its summary line.
    pub fn bench_function(
        &mut self,
        label: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = label.into();
        // Calibration: single-iteration samples until the warm-up budget is
        // spent; the *minimum* estimates the true per-iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter_ns = f64::INFINITY;
        loop {
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64;
            if ns > 0.0 {
                per_iter_ns = per_iter_ns.min(ns);
            }
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        if !per_iter_ns.is_finite() {
            per_iter_ns = 1.0;
        }
        // Pick an iteration count so one sample consumes roughly its share
        // of the measurement budget.
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((per_sample_ns / per_iter_ns).round() as u64).clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let min_ns = samples_ns[0];
        let mid = samples_ns.len() / 2;
        let median_ns = if samples_ns.len() % 2 == 1 {
            samples_ns[mid]
        } else {
            (samples_ns[mid - 1] + samples_ns[mid]) / 2.0
        };
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        println!(
            "{}/{:<40} time: [{} median] (mean {}, min {}, {} iters x {} samples)",
            self.name,
            label,
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
            iters,
            samples_ns.len(),
        );
        self.results.push(BenchResult {
            label,
            median_ns,
            mean_ns,
            min_ns,
            samples: samples_ns.len(),
        });
        self
    }

    /// Finish the group and return its results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!();
        self.results
    }

    /// Results collected so far (without consuming the group).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Human-readable nanosecond quantity.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn measures_something_plausible() {
        let counter = AtomicU64::new(0);
        let mut g = BenchGroup::new("harness_self_test");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(50));
        g.bench_function("fetch_add", |b| {
            b.iter(|| counter.fetch_add(1, Ordering::Relaxed));
        });
        let results = g.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns && r.median_ns.is_finite());
        assert!(counter.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
