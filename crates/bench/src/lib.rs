//! # ompmca-bench — the experiment harness
//!
//! Support library for the two paper-reproduction binaries:
//!
//! * **`table1`** — EPCC construct overheads, native vs MCA backend, at the
//!   paper's team sizes (4–24), printed as absolute overheads plus the
//!   paper's *relative overhead* table (MCA ÷ native; "the smaller number
//!   indicating fewer overheads");
//! * **`figure4`** — NAS kernels on both backends across team sizes,
//!   execution time and speedup, where the board-scale numbers come from
//!   the measured per-worker CPU profiles fed through the T4240 cost model
//!   (see `mca-platform::vtime`).
//!
//! The benches under `benches/` (driven by the in-tree [`harness`]) cover
//! the ablations DESIGN.md lists (barrier algorithms, lock substitution,
//! shmem modes, node modes, task-scheduler shape, construct-ring
//! contention).

pub mod harness;

use mca_platform::vtime::CostModel;
use romp::{BackendKind, Config, Runtime};
use romp_epcc::{Construct, EpccConfig, Measurement};
use romp_npb::{Class, NpbKernel};

/// Parse a comma-separated list of thread counts.
pub fn parse_threads(s: &str) -> Option<Vec<usize>> {
    let v: Result<Vec<usize>, _> = s.split(',').map(|t| t.trim().parse::<usize>()).collect();
    v.ok()
        .filter(|v| !v.is_empty() && v.iter().all(|&n| (1..=256).contains(&n)))
}

/// The paper's Table I team sizes.
pub fn table1_threads() -> Vec<usize> {
    vec![4, 8, 12, 16, 20, 24]
}

/// The Figure 4 sweep (1..24, the T4240's hardware thread count).
pub fn figure4_threads() -> Vec<usize> {
    vec![1, 2, 4, 8, 12, 16, 20, 24]
}

/// A runtime pair: the baseline and the MCA-backed runtime, as in the
/// paper's libGOMP vs MCA-libGOMP comparison.  Tracing follows the
/// environment (`ROMP_TRACE`/`ROMP_TRACE_OUT`); when a trace file is
/// requested it is suffixed per backend so the pair doesn't clobber it.
pub fn runtime_pair(profiling: bool) -> (Runtime, Runtime) {
    runtime_pair_sharded(profiling, None)
}

/// [`runtime_pair`] with an explicit shard-count override (the bench
/// binaries' `--shards` flag).  `None` defers to the environment
/// (`ROMP_SHARDS`) and the runtime's topology-derived default.
pub fn runtime_pair_sharded(profiling: bool, shards: Option<usize>) -> (Runtime, Runtime) {
    let env = Config::from_env();
    let mk = |kind: BackendKind| {
        let mut cfg = Config::default()
            .with_backend(kind)
            .with_profiling(profiling)
            .with_tracing(env.trace);
        cfg.shards = shards.or(env.shards);
        cfg.trace_out = env.trace_out.as_ref().map(|p| {
            let (stem, ext) = match p.rsplit_once('.') {
                Some((s, e)) => (s, format!(".{e}")),
                None => (p.as_str(), String::new()),
            };
            format!("{stem}-{}{ext}", kind.label())
        });
        Runtime::with_config(cfg)
    };
    let native = mk(BackendKind::Native).expect("native runtime");
    let mca = mk(BackendKind::Mca).expect("mca runtime");
    (native, mca)
}

/// One Table I cell: both backends' overheads and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct Table1Cell {
    pub construct: Construct,
    pub threads: usize,
    pub native: Measurement,
    pub mca: Measurement,
}

impl Table1Cell {
    /// The paper's normalised number: MCA overhead ÷ native overhead.
    /// Overheads can dip below the timer floor on fast constructs; both are
    /// clamped to 10 ns so the ratio stays meaningful.
    pub fn ratio(&self) -> f64 {
        let floor = 0.01; // µs
        self.mca.overhead_us.max(floor) / self.native.overhead_us.max(floor)
    }
}

/// Measure the full Table I grid.
pub fn measure_table1_grid(
    native: &Runtime,
    mca: &Runtime,
    threads: &[usize],
    outer: usize,
    inner: usize,
) -> Vec<Table1Cell> {
    let mut cells = Vec::new();
    for &n in threads {
        let cfg = EpccConfig {
            threads: n,
            outer_reps: outer,
            inner_reps: inner,
            delay_len: romp_epcc::calibrate_delay(100),
        };
        for c in Construct::table1() {
            let nat = romp_epcc::measure(native, c, &cfg);
            let mc = romp_epcc::measure(mca, c, &cfg);
            cells.push(Table1Cell {
                construct: c,
                threads: n,
                native: nat,
                mca: mc,
            });
        }
    }
    cells
}

/// Render the paper-style relative-overhead table.
pub fn render_table1(cells: &[Table1Cell], threads: &[usize]) -> String {
    let mut s = String::new();
    s.push_str("TABLE I: Relative overhead of MCA-libGOMP versus GNU OpenMP runtime\n");
    s.push_str("(romp MCA backend / romp native backend; smaller = fewer overheads)\n\n");
    s.push_str(&format!("{:<14}", "Directive"));
    for t in threads {
        s.push_str(&format!("{t:>8}"));
    }
    s.push('\n');
    for c in Construct::table1() {
        s.push_str(&format!("{:<14}", c.label()));
        for &t in threads {
            let cell = cells.iter().find(|x| x.construct == c && x.threads == t);
            match cell {
                Some(cell) => s.push_str(&format!("{:>8.2}", cell.ratio())),
                None => s.push_str(&format!("{:>8}", "-")),
            }
        }
        s.push('\n');
    }
    s
}

/// Render the Table I grid as a JSON document (hand-rolled — the workspace
/// carries no serde), for committing machine-readable baselines
/// (`BENCH_table1.json`) that later sessions can diff against.
pub fn render_table1_json(
    cells: &[Table1Cell],
    threads: &[usize],
    outer: usize,
    inner: usize,
    shards: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"table1\",\n");
    s.push_str("  \"unit\": \"relative overhead (mca_us / native_us)\",\n");
    s.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    ));
    s.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"outer_reps\": {outer},\n"));
    s.push_str(&format!("  \"inner_reps\": {inner},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"construct\": \"{}\", \"threads\": {}, \"native_us\": {:.4}, \
             \"native_sd_us\": {:.4}, \"mca_us\": {:.4}, \"mca_sd_us\": {:.4}, \
             \"ratio\": {:.4}}}{}\n",
            c.construct.label(),
            c.threads,
            c.native.overhead_us,
            c.native.sd_us,
            c.mca.overhead_us,
            c.mca.sd_us,
            c.ratio(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One Figure 4 data point.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    pub kernel: NpbKernel,
    pub backend: BackendKind,
    pub threads: usize,
    /// Host wall-clock seconds (oversubscribed; reported for transparency).
    pub wall_s: f64,
    /// Modeled T4240 execution seconds from the measured CPU profile.
    pub board_s: f64,
    pub verified: bool,
    pub verification: String,
}

/// Run one kernel at one team size and model its board time.
pub fn figure4_point(
    rt: &Runtime,
    model: &CostModel,
    kernel: NpbKernel,
    class: Class,
    threads: usize,
) -> Fig4Point {
    rt.set_profiling(true);
    rt.reset_profile();
    let result = kernel.run(rt, threads, class);
    let profile = rt.take_profile();
    let board_s = model.elapsed_ns(&profile, kernel.beta()) / 1e9;
    Fig4Point {
        kernel,
        backend: rt.backend_kind(),
        threads,
        wall_s: result.wall_s,
        board_s,
        verified: result.verified(),
        verification: format!("{:?}", result.verification),
    }
}

/// Render one kernel's Figure 4 block (times + speedups, both backends).
pub fn render_figure4_kernel(points: &[Fig4Point], kernel: NpbKernel, threads: &[usize]) -> String {
    let find = |bk: BackendKind, t: usize| {
        points
            .iter()
            .find(|p| p.kernel == kernel && p.backend == bk && p.threads == t)
    };
    let base = |bk: BackendKind| find(bk, threads[0]).map(|p| p.board_s).unwrap_or(f64::NAN);
    let mut s = String::new();
    s.push_str(&format!(
        "{} — modeled T4240 execution time (s) and speedup vs {} thread(s)\n",
        kernel.name(),
        threads[0]
    ));
    s.push_str(&format!(
        "{:>8} {:>14} {:>9} {:>14} {:>9} {:>10}\n",
        "threads", "native(s)", "spdup", "mca(s)", "spdup", "mca/native"
    ));
    for &t in threads {
        let (n, m) = (find(BackendKind::Native, t), find(BackendKind::Mca, t));
        if let (Some(n), Some(m)) = (n, m) {
            s.push_str(&format!(
                "{:>8} {:>14.4} {:>9.2} {:>14.4} {:>9.2} {:>10.3}\n",
                t,
                n.board_s,
                base(BackendKind::Native) / n.board_s,
                m.board_s,
                base(BackendKind::Mca) / m.board_s,
                m.board_s / n.board_s,
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_parsing() {
        assert_eq!(parse_threads("1,2, 4"), Some(vec![1, 2, 4]));
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("0,2"), None);
        assert_eq!(parse_threads("a"), None);
        assert_eq!(table1_threads(), vec![4, 8, 12, 16, 20, 24]);
    }

    #[test]
    fn table1_grid_smoke() {
        let (native, mca) = runtime_pair(false);
        let cells = measure_table1_grid(&native, &mca, &[2], 2, 8);
        assert_eq!(cells.len(), 7);
        let rendered = render_table1(&cells, &[2]);
        assert!(rendered.contains("Parallel"));
        assert!(rendered.contains("Reduction"));
        for c in &cells {
            assert!(c.ratio().is_finite() && c.ratio() > 0.0);
        }
        let json = render_table1_json(&cells, &[2], 2, 8, 1);
        assert!(json.contains("\"construct\": \"Parallel\""));
        assert!(json.contains("\"ratio\":"));
        assert_eq!(json.matches("{\"construct\"").count(), 7);
    }

    #[test]
    fn figure4_point_produces_model_time() {
        let (native, _) = runtime_pair(true);
        let model = CostModel::t4240rdb();
        let p = figure4_point(&native, &model, NpbKernel::Ep, Class::S, 2);
        assert!(p.verified, "{}", p.verification);
        assert!(p.board_s > 0.0);
        assert!(p.wall_s > 0.0);
    }

    #[test]
    fn figure4_rendering() {
        let pts = vec![
            Fig4Point {
                kernel: NpbKernel::Ep,
                backend: BackendKind::Native,
                threads: 1,
                wall_s: 1.0,
                board_s: 4.0,
                verified: true,
                verification: String::new(),
            },
            Fig4Point {
                kernel: NpbKernel::Ep,
                backend: BackendKind::Mca,
                threads: 1,
                wall_s: 1.0,
                board_s: 4.1,
                verified: true,
                verification: String::new(),
            },
        ];
        let s = render_figure4_kernel(&pts, NpbKernel::Ep, &[1]);
        assert!(s.contains("EP"));
        assert!(
            s.contains("1.02") || s.contains("1.03"),
            "ratio column rendered: {s}"
        );
    }
}
