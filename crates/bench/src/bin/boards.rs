//! Cross-platform portability run (paper §4C): the same MCA-backed binary
//! on the T4240RDB model and its predecessor P4080DS.
//!
//! ```text
//! cargo run -p ompmca-bench --release --bin boards [-- --class S|W|A]
//! ```
//!
//! The paper's central portability claim is that the MCA-based toolchain
//! carries applications across boards unchanged ("our goal is to provide a
//! software toolchain that could be used across more than one platform").
//! This harness runs each NAS kernel once per board-appropriate team size
//! on the MCA backend and models both boards' execution times and energy
//! (the e6500's cascading power management, §4A) from the same measured
//! profiles — the experiment the paper's §4C comparison sets up.

use mca_platform::power::{energy_for_profile, PowerModel};
use mca_platform::vtime::CostModel;
use romp::{BackendKind, Config, Runtime};
use romp_npb::{Class, NpbKernel};

fn main() {
    let mut class = Class::S;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--class" => {
                class = Class::parse(&args.next().expect("--class needs a value"))
                    .expect("class must be S, W or A");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let boards: Vec<(&str, CostModel, PowerModel, usize)> = vec![
        ("T4240RDB", CostModel::t4240rdb(), PowerModel::t4240(), 24),
        // The P4080's envelope: fewer, simpler cores; similar uncore share.
        (
            "P4080DS",
            CostModel::p4080ds(),
            PowerModel {
                active_w: 1.3,
                uncore_w: 9.0,
                ..PowerModel::t4240()
            },
            8,
        ),
    ];

    println!(
        "== §4C portability: same MCA binary, two boards (class {}) ==",
        class.label()
    );
    let rt = Runtime::with_config(
        Config::default()
            .with_backend(BackendKind::Mca)
            .with_profiling(true),
    )
    .unwrap();

    println!(
        "{:<8} {:<10} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "kernel", "board", "threads", "board(s)", "joules", "avg W", "ok"
    );
    for kernel in NpbKernel::all() {
        for (name, cost, power, threads) in &boards {
            rt.reset_profile();
            let res = kernel.run(&rt, *threads, class);
            let profile = rt.take_profile();
            let board_s = cost.elapsed_ns(&profile, kernel.beta()) / 1e9;
            let energy = energy_for_profile(power, cost, &profile, kernel.beta());
            println!(
                "{:<8} {:<10} {:>8} {:>12.4} {:>10.2} {:>10.2} {:>8}",
                kernel.name(),
                name,
                threads,
                board_s,
                energy.joules,
                energy.avg_watts,
                res.verified()
            );
        }
    }
    println!("\nsame binary, same backend, both boards: the MCA layer is the portability seam.");
}
