//! Regenerate the paper's **Table I**: relative EPCC overhead of the
//! MCA-backed runtime versus the native runtime.
//!
//! ```text
//! cargo run -p ompmca-bench --release --bin table1 [-- --threads 4,8,12,16,20,24 \
//!     --outer 20 --inner 256 | --quick] [--shards N] [--json PATH] [--report]
//! ```
//!
//! The paper normalises each construct's EPCC overhead on MCA-libGOMP by
//! the stock libGOMP overhead; values around 1.0 mean the MCA layer costs
//! nothing.  This harness measures both backends with the same EPCC
//! methodology and prints absolute overheads plus the ratio table.
//! `--json PATH` additionally writes the grid as machine-readable JSON
//! (the repo commits one run as `BENCH_table1.json`, the baseline later
//! sessions diff against).  `--report` prints each runtime's observability
//! summary after the grid — arm it with `ROMP_TRACE=1` to also get event
//! counts, not just runtime statistics.

use ompmca_bench::{
    measure_table1_grid, parse_threads, render_table1, render_table1_json, runtime_pair_sharded,
    table1_threads,
};

fn main() {
    let mut threads = table1_threads();
    let mut outer = 10usize;
    let mut inner = 128usize;
    let mut json_path: Option<String> = None;
    let mut report = false;
    let mut shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = parse_threads(&v).expect("bad --threads list");
            }
            "--outer" => outer = args.next().unwrap().parse().expect("bad --outer"),
            "--inner" => inner = args.next().unwrap().parse().expect("bad --inner"),
            "--quick" => {
                threads = vec![2, 4];
                outer = 3;
                inner = 16;
            }
            "--shards" => shards = Some(args.next().unwrap().parse().expect("bad --shards")),
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--report" => report = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    println!("== OpenMP-MCA reproduction: Table I (EPCC overheads) ==");
    println!(
        "host parallelism: {}; team sizes {:?}; outer={outer} inner={inner} shards={}",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
        threads,
        shards.unwrap_or(1)
    );
    println!("note: team sizes above the host parallelism run oversubscribed;");
    println!("the ratio (MCA/native) is host-independent, which is what Table I reports.\n");

    let (native, mca) = runtime_pair_sharded(false, shards);
    let cells = measure_table1_grid(&native, &mca, &threads, outer, inner);

    println!("-- absolute overheads (µs per construct, EPCC methodology) --");
    println!(
        "{:<14}{:>8}  {:>12} {:>12} {:>10} {:>10}",
        "Directive", "threads", "native(µs)", "mca(µs)", "nat sd", "mca sd"
    );
    for c in &cells {
        println!(
            "{:<14}{:>8}  {:>12.3} {:>12.3} {:>10.3} {:>10.3}",
            c.construct.label(),
            c.threads,
            c.native.overhead_us,
            c.mca.overhead_us,
            c.native.sd_us,
            c.mca.sd_us
        );
    }
    println!();
    print!("{}", render_table1(&cells, &threads));
    println!(
        "\npaper's Table I row means for comparison: Parallel≈0.96, For≈1.17, Parallel for≈1.03,"
    );
    println!(
        "Barrier≈1.11, Single≈1.15, Critical≈1.01, Reduction≈1.00 (ratios ≈ 1 ⇒ no overhead)."
    );

    if let Some(path) = json_path {
        let json = render_table1_json(&cells, &threads, outer, inner, shards.unwrap_or(1));
        std::fs::write(&path, json).expect("write --json output");
        println!("\nwrote {path}");
    }

    if report {
        println!("\n-- native runtime observability summary --");
        print!("{}", native.run_summary().render());
        println!("\n-- mca runtime observability summary --");
        print!("{}", mca.run_summary().render());
    }
}
