//! Sensitivity sweep of the virtual-time cost model.
//!
//! ```text
//! cargo run -p ompmca-bench --release --bin model_sweep
//! ```
//!
//! EXPERIMENTS.md's transparency appendix: for a perfectly balanced
//! synthetic workload, print the modeled 24-thread T4240 speedup as a
//! function of the model's two calibration knobs — memory intensity β and
//! SMT efficiency — so a reader can see exactly how the Figure 4 curves
//! respond to the calibration (EP sits at β≈0; the paper's "≈15×" kernels
//! sit near β≈0.3).

use mca_platform::vtime::{CostModel, RegionProfile};

fn even(total_ns: u64, workers: usize) -> RegionProfile {
    RegionProfile {
        worker_cpu_ns: vec![total_ns / workers as u64; workers],
        barriers: 100,
        criticals: 0,
    }
}

fn main() {
    let total = 2_000_000_000u64; // 2s of host CPU work
    println!("== cost-model sensitivity: modeled speedup at N threads (T4240) ==\n");

    println!("-- speedup vs memory intensity β (SMT eff fixed at 0.92) --");
    print!("{:>6}", "β");
    let thread_points = [4usize, 8, 12, 16, 20, 24];
    for t in thread_points {
        print!("{t:>9}");
    }
    println!();
    let model = CostModel::t4240rdb();
    for beta in [0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0] {
        let serial = model.elapsed_ns(&even(total, 1), beta);
        print!("{beta:>6.1}");
        for t in thread_points {
            let s = serial / model.elapsed_ns(&even(total, t), beta);
            print!("{s:>9.2}");
        }
        println!();
    }

    println!("\n-- speedup at 24 threads vs SMT efficiency (β fixed at 0.02, EP-like) --");
    println!("{:>8} {:>10}", "smt_eff", "speedup24");
    for eff in [0.5, 0.6, 0.7, 0.8, 0.9, 0.92, 0.95, 1.0] {
        let m = CostModel {
            smt_efficiency: eff,
            ..CostModel::t4240rdb()
        };
        let s = m.elapsed_ns(&even(total, 1), 0.02) / m.elapsed_ns(&even(total, 24), 0.02);
        println!("{eff:>8.2} {s:>10.2}");
    }

    println!("\n-- barrier cost share at 24 threads vs barriers per run (β=0.3) --");
    println!("{:>10} {:>12} {:>10}", "barriers", "elapsed(ms)", "sync %");
    for barriers in [0u64, 100, 1_000, 10_000, 100_000] {
        let prof = RegionProfile {
            worker_cpu_ns: vec![total / 24; 24],
            barriers,
            criticals: 0,
        };
        let e = model.elapsed_ns(&prof, 0.3);
        let sync = barriers as f64 * model.barrier_cost_ns(24);
        println!(
            "{barriers:>10} {:>12.2} {:>9.1}%",
            e / 1e6,
            sync / e * 100.0
        );
    }
}
