//! Regenerate the paper's **Figure 4**: NAS benchmark execution time and
//! speedup, 1–24 threads, MCA-backed runtime vs native runtime.
//!
//! ```text
//! cargo run -p ompmca-bench --release --bin figure4 [-- --class S|W|A \
//!     --threads 1,2,4,8,12,16,20,24 --kernels EP,CG,IS,MG,FT | --quick] \
//!     [--shards N]
//! ```
//!
//! The paper ran class A on a 24-hardware-thread T4240RDB.  This host may
//! have far fewer cores, so the harness measures what is host-independent —
//! each worker's actual CPU time and the team's synchronization counts —
//! and feeds the profile through the calibrated T4240 cost model
//! (`mca-platform::vtime`) to reconstruct board execution times and speedup
//! curves.  Host wall-clock is printed alongside for transparency.
//! Default class is W to keep a full sweep tractable; pass `--class A` for
//! the paper-scale run.

use mca_platform::vtime::CostModel;
use ompmca_bench::{
    figure4_point, figure4_threads, parse_threads, render_figure4_kernel, runtime_pair_sharded,
    Fig4Point,
};
use romp_npb::{Class, NpbKernel};

fn main() {
    let mut threads = figure4_threads();
    let mut class = Class::W;
    let mut kernels: Vec<NpbKernel> = NpbKernel::all().to_vec();
    let mut shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = parse_threads(&v).expect("bad --threads list");
            }
            "--class" => {
                let v = args.next().expect("--class needs a value");
                class = Class::parse(&v).expect("class must be S, W or A");
            }
            "--kernels" => {
                let v = args.next().expect("--kernels needs a value");
                kernels = v
                    .split(',')
                    .map(|k| match k.trim().to_ascii_uppercase().as_str() {
                        "EP" => NpbKernel::Ep,
                        "CG" => NpbKernel::Cg,
                        "IS" => NpbKernel::Is,
                        "MG" => NpbKernel::Mg,
                        "FT" => NpbKernel::Ft,
                        other => panic!("unknown kernel {other}"),
                    })
                    .collect();
            }
            "--shards" => {
                shards = Some(args.next().unwrap().parse().expect("bad --shards"));
            }
            "--quick" => {
                threads = vec![1, 4, 24];
                class = Class::S;
                kernels = vec![NpbKernel::Ep, NpbKernel::Cg, NpbKernel::Is];
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let model = CostModel::t4240rdb();
    println!(
        "== OpenMP-MCA reproduction: Figure 4 (NAS benchmarks, class {}) ==",
        class.label()
    );
    println!(
        "cost model: T4240RDB @1.8GHz, {} hw threads, SMT eff {:.2}, 1-thread BW {:.1} GB/s,",
        model.topo.num_hw_threads(),
        model.smt_efficiency,
        model.single_thread_bw / 1e9
    );
    println!(
        "DRAM BW {:.1} GB/s, barrier {:.1}+{:.1}·t ns, host→board scale {:.1}",
        model.topo.dram_bandwidth_bytes_per_s / 1e9,
        model.barrier_base_ns,
        model.barrier_per_thread_ns,
        model.host_to_board_scale
    );
    println!(
        "kernel β (memory intensity): EP {:.2}, CG {:.2}, IS {:.2}, MG {:.2}, FT {:.2}\n",
        NpbKernel::Ep.beta(),
        NpbKernel::Cg.beta(),
        NpbKernel::Is.beta(),
        NpbKernel::Mg.beta(),
        NpbKernel::Ft.beta()
    );

    let (native, mca) = runtime_pair_sharded(true, shards);
    let mut points: Vec<Fig4Point> = Vec::new();
    for &kernel in &kernels {
        for &t in &threads {
            for rt in [&native, &mca] {
                let p = figure4_point(rt, &model, kernel, class, t);
                eprintln!(
                    "  measured {} {} backend, {} threads: wall {:.2}s, board {:.3}s, verified={}",
                    kernel.name(),
                    p.backend.label(),
                    t,
                    p.wall_s,
                    p.board_s,
                    p.verified
                );
                if !p.verified {
                    eprintln!("    verification detail: {}", p.verification);
                }
                points.push(p);
            }
        }
        println!("{}", render_figure4_kernel(&points, kernel, &threads));
    }

    // Shard-isolation evidence: with every kernel's work spawned from
    // inside its own region, a sharded run should satisfy its demand
    // locally — `steals.remote` stays 0 while `steals.local` may not.
    // Report the split so per-shard runs are verified by scheduler
    // counters, not wall-clock alone (see EXPERIMENTS.md).
    for (label, rt) in [("native", &native), ("mca", &mca)] {
        let st = rt.stats();
        println!(
            "{label} backend steal split: local={} remote={} (shards={})",
            st.steals_local,
            st.steals_remote,
            shards.unwrap_or(1)
        );
    }

    let failures: Vec<_> = points.iter().filter(|p| !p.verified).collect();
    if failures.is_empty() {
        println!("all {} kernel runs verified.", points.len());
    } else {
        println!(
            "{} of {} kernel runs FAILED verification:",
            failures.len(),
            points.len()
        );
        for f in failures {
            println!(
                "  {} {} @{}: {}",
                f.kernel.name(),
                f.backend.label(),
                f.threads,
                f.verification
            );
        }
        std::process::exit(1);
    }
}
