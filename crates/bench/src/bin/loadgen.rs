//! `loadgen` — the romp-serve load generator and latency reporter.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N | --sweep 1,4,16,64] [--requests N]
//!         [--pipeline N] [--rate R] [--mix epcc|npb|mixed|hi=10,batch=90]
//!         [--hi-deadline-ms MS] [--hi-p99-max-us US] [--json]
//! loadgen --workers-sweep 0,1,2,4 [--server-bin PATH] [other flags]
//! loadgen --addr HOST:PORT --ping
//! loadgen --addr HOST:PORT --shutdown
//! ```
//!
//! `--mix hi=P,batch=Q` is the **mixed-priority** mode: `P` percent of
//! each client's stream is tagged Hi priority with a tight explicit
//! deadline (`--hi-deadline-ms`, default 150), the rest floods the Batch
//! lane.  The report adds per-class p50/p99 and shed counts; a
//! `ShedDeadline` answer abandons that job (it is *not* retried — the
//! server's verdict is that the deadline cannot be met) and counts toward
//! the class's `sheds`.  With `--hi-p99-max-us` the process exits
//! non-zero when the Hi class misses the bound or records any failed or
//! shed job — the CI overload gate.
//!
//! `--workers-sweep` runs one phase per pool width, spawning a fresh
//! `romp-serve` child for each (`0` = the single-process baseline, `N>0`
//! = `--workers N` cluster mode), waiting for its readiness line,
//! driving the phase, and shutting it down — the `BENCH_cluster.json`
//! scaling experiment.  The server binary is located next to this one
//! unless `--server-bin` says otherwise.
//!
//! Each client thread owns one connection and keeps up to `--pipeline N`
//! requests in flight on it: a submission is followed immediately by an
//! `await`, and the server writes each `JobResult` the moment the job
//! finishes — no polling, no extra round trips.  Submission responses
//! arrive in request order; results arrive in completion order and are
//! correlated by job id.  `--pipeline 1` (the default) degenerates to the
//! classic closed loop, one round trip at a time.
//!
//! With `--rate R` the generator is **open-loop**: arrivals follow a
//! fixed schedule of `R` requests/second per client, and latency is
//! measured from the *scheduled* arrival, so time spent catching up after
//! a slow response is charged to the server (coordinated-omission-free,
//! the wrk2 discipline).  Without `--rate` it is closed-loop maximum
//! throughput and latency is submit → result.
//!
//! `Rejected { retry_after_ms }` answers are counted, honoured (bounded
//! sleep) and retried — a full-queue episode shows up as rejections and
//! latency, never as a lost request.  Any protocol-level surprise is a
//! hard error counted in `protocol_errors`; the process exits non-zero
//! if any occurred (the CI smoke's assertion).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mca_sync::Mutex;
use romp_epcc::Construct;
use romp_npb::{Class, NpbKernel};
use romp_serve::{Client, JobSpec, Request, Response};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--clients N | --sweep 1,4,16,64] \
         [--requests N] [--pipeline N] [--rate R] \
         [--mix epcc|npb|mixed|hi=10,batch=90] [--hi-deadline-ms MS] \
         [--hi-p99-max-us US] [--json]\n\
         \x20      loadgen --workers-sweep 0,1,2,4 [--server-bin PATH] [flags]\n\
         \x20      loadgen --addr HOST:PORT --ping | --shutdown"
    );
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Epcc,
    Npb,
    Mixed,
    /// Mixed-priority: `hi_pct` percent of the stream is Hi priority
    /// with a tight deadline, the rest Batch (EPCC specs throughout).
    Priority {
        hi_pct: u64,
    },
}

impl Mix {
    fn parse(s: &str) -> Option<Mix> {
        match s {
            "epcc" => Some(Mix::Epcc),
            "npb" => Some(Mix::Npb),
            "mixed" => Some(Mix::Mixed),
            _ => {
                // "hi=10,batch=90" (the batch share is implied; when both
                // are given they must sum to 100).
                let mut hi: Option<u64> = None;
                let mut batch: Option<u64> = None;
                for part in s.split(',') {
                    let (k, v) = part.split_once('=')?;
                    let v: u64 = v.trim().parse().ok()?;
                    match k.trim() {
                        "hi" => hi = Some(v),
                        "batch" => batch = Some(v),
                        _ => return None,
                    }
                }
                let hi_pct = hi?;
                if hi_pct > 100 || batch.is_some_and(|b| hi_pct + b != 100) {
                    return None;
                }
                Some(Mix::Priority { hi_pct })
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mix::Epcc => "epcc",
            Mix::Npb => "npb",
            Mix::Mixed => "mixed",
            Mix::Priority { .. } => "priority",
        }
    }

    /// Whether the k-th request rides the Hi lane (priority mix only).
    fn is_hi(self, k: u64) -> bool {
        match self {
            Mix::Priority { hi_pct } => k % 100 < hi_pct,
            _ => false,
        }
    }

    /// The k-th request's job.  EPCC constructs rotate so the stream
    /// exercises the whole construct matrix; the mixed stream folds in an
    /// NPB kernel every 16th request.
    fn job(self, k: u64) -> JobSpec {
        const CONSTRUCTS: [Construct; 6] = [
            Construct::Barrier,
            Construct::Parallel,
            Construct::Reduction,
            Construct::Critical,
            Construct::Single,
            Construct::ParallelFor,
        ];
        let epcc = JobSpec::Epcc {
            construct: CONSTRUCTS[(k % CONSTRUCTS.len() as u64) as usize],
            threads: 2,
            inner_reps: 8,
        };
        let npb = JobSpec::Npb {
            kernel: if k.is_multiple_of(2) {
                NpbKernel::Ep
            } else {
                NpbKernel::Is
            },
            class: Class::S,
            threads: 2,
        };
        match self {
            Mix::Epcc | Mix::Priority { .. } => epcc,
            Mix::Npb => npb,
            Mix::Mixed => {
                if k % 16 == 15 {
                    npb
                } else {
                    epcc
                }
            }
        }
    }
}

/// Rank quantile over a sorted latency vector, microseconds.
fn quantile_us_of(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let n = sorted_ns.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted_ns[rank - 1] as f64 / 1_000.0
}

/// Per-priority-class accounting (priority mix only; class 0 = Hi,
/// class 1 = Batch).
#[derive(Default)]
struct ClassTally {
    latencies_ns: Mutex<Vec<u64>>,
    completed: AtomicU64,
    failed: AtomicU64,
    sheds: AtomicU64,
}

#[derive(Default)]
struct PhaseTally {
    latencies_ns: Mutex<Vec<u64>>,
    completed: AtomicU64,
    failed_verification: AtomicU64,
    rejections: AtomicU64,
    sheds: AtomicU64,
    protocol_errors: AtomicU64,
    classes: [ClassTally; 2],
}

/// One class's digest in a [`PhaseReport`].
struct ClassReport {
    name: &'static str,
    completed: u64,
    failed: u64,
    sheds: u64,
    latencies_ns: Vec<u64>,
}

impl ClassReport {
    fn to_json(&self) -> String {
        format!(
            "\"{}\": {{\"completed\": {}, \"failed\": {}, \"sheds\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            self.name,
            self.completed,
            self.failed,
            self.sheds,
            quantile_us_of(&self.latencies_ns, 0.50),
            quantile_us_of(&self.latencies_ns, 0.99),
        )
    }
}

struct PhaseReport {
    clients: usize,
    completed: u64,
    failed_verification: u64,
    rejections: u64,
    sheds: u64,
    protocol_errors: u64,
    wall_s: f64,
    latencies_ns: Vec<u64>,
    /// `[Hi, Batch]`, present for the priority mix.
    classes: Option<[ClassReport; 2]>,
}

impl PhaseReport {
    fn throughput_rps(&self) -> f64 {
        self.completed as f64 / self.wall_s.max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> f64 {
        quantile_us_of(&self.latencies_ns, q)
    }

    fn mean_us(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.latencies_ns.iter().sum();
        sum as f64 / self.latencies_ns.len() as f64 / 1_000.0
    }

    fn to_json(&self) -> String {
        let classes = match &self.classes {
            Some([hi, batch]) => {
                format!(", \"classes\": {{{}, {}}}", hi.to_json(), batch.to_json())
            }
            None => String::new(),
        };
        format!(
            "{{\"clients\": {}, \"completed\": {}, \"failed_verification\": {}, \
             \"rejections\": {}, \"sheds\": {}, \"protocol_errors\": {}, \"wall_s\": {:.4}, \
             \"throughput_rps\": {:.2}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \
             \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}{classes}}}",
            self.clients,
            self.completed,
            self.failed_verification,
            self.rejections,
            self.sheds,
            self.protocol_errors,
            self.wall_s,
            self.throughput_rps(),
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        )
    }

    fn render(&self) -> String {
        let mut line = format!(
            "clients={:<3} completed={:<6} rejected={:<5} shed={:<4} proto_err={:<3} \
             {:>8.1} req/s   p50={:.1}us p90={:.1}us p99={:.1}us p999={:.1}us",
            self.clients,
            self.completed,
            self.rejections,
            self.sheds,
            self.protocol_errors,
            self.throughput_rps(),
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        );
        if let Some(classes) = &self.classes {
            for c in classes {
                line.push_str(&format!(
                    "\n  {:<5} completed={:<6} failed={:<4} shed={:<4} p50={:.1}us p99={:.1}us",
                    c.name,
                    c.completed,
                    c.failed,
                    c.sheds,
                    quantile_us_of(&c.latencies_ns, 0.50),
                    quantile_us_of(&c.latencies_ns, 0.99),
                ));
            }
        }
        line
    }
}

/// Account one `JobResult` arriving on the wire.  Returns `false` for a
/// result that matches nothing in flight (a misrouted response — counted
/// as a protocol error by the caller).
fn note_completion(
    inflight: &mut HashMap<u64, (Instant, Option<usize>)>,
    local_lat: &mut Vec<u64>,
    tally: &PhaseTally,
    done: &mut u64,
    job: u64,
    ok: bool,
) -> bool {
    let Some((t0, class)) = inflight.remove(&job) else {
        return false;
    };
    let lat = t0.elapsed().as_nanos() as u64;
    local_lat.push(lat);
    *done += 1;
    tally.completed.fetch_add(1, Ordering::Relaxed);
    if !ok {
        tally.failed_verification.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(c) = class {
        let ct = &tally.classes[c];
        ct.latencies_ns.lock().push(lat);
        ct.completed.fetch_add(1, Ordering::Relaxed);
        if !ok {
            ct.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    true
}

/// One client thread's share of a phase: a pipelined submit/await window
/// of up to `pipeline` in-flight jobs on a single connection.
#[allow(clippy::too_many_arguments)] // one knob per CLI flag
fn client_worker(
    addr: String,
    mix: Mix,
    hi_deadline_ms: u32,
    client_idx: u64,
    requests: u64,
    rate: f64,
    pipeline: u64,
    tally: Arc<PhaseTally>,
) {
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: connect failed: {e}");
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let start = Instant::now();
    let interval = if rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / rate))
    } else {
        None
    };
    let mut local_lat = Vec::with_capacity(requests as usize);
    let mut inflight: HashMap<u64, (Instant, Option<usize>)> = HashMap::new();
    let mut sent = 0u64;
    let mut done = 0u64;
    let fail = |what: &str, tally: &PhaseTally| {
        eprintln!("loadgen: {what}");
        tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
    };
    'phase: while done < requests {
        if sent < requests && (inflight.len() as u64) < pipeline {
            // Open-loop: the k-th request is *due* at start + k·interval;
            // latency accrues from the due time even if we are behind.
            let due = interval.map(|iv| start + iv * (sent as u32));
            if let Some(due) = due {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let t0 = due.unwrap_or_else(Instant::now);
            let k = client_idx.wrapping_mul(7919).wrapping_add(sent);
            let spec = mix.job(k);
            // The priority mix: Hi jobs carry a tight deadline on lane 1,
            // everything else floods the Batch lane.
            let class = match mix {
                Mix::Priority { .. } => Some(if mix.is_hi(k) { 0 } else { 1 }),
                _ => None,
            };
            let (deadline_ms, priority) = match class {
                Some(0) => (hi_deadline_ms, 1u8),
                Some(_) => (0, 2u8),
                None => (0, 0u8),
            };
            let submit = Request::Submit {
                spec,
                deadline_ms,
                idem_key: 0,
                affinity: client_idx.wrapping_add(1),
                priority,
            };
            let retry_until = Instant::now() + Duration::from_secs(60);
            // Send the submission, then read until its (request-ordered)
            // answer arrives; any JobResult met on the way is a completed
            // await from earlier in the pipeline.  `None` = shed (the job
            // is abandoned, never retried).
            let job = loop {
                if let Err(e) = client.send(&submit) {
                    fail(&format!("submit send failed: {e}"), &tally);
                    break 'phase;
                }
                let sync = loop {
                    match client.recv() {
                        Ok(Response::JobResult { job, ok, .. }) => {
                            if !note_completion(
                                &mut inflight,
                                &mut local_lat,
                                &tally,
                                &mut done,
                                job,
                                ok,
                            ) {
                                fail(&format!("unexpected result for job {job}"), &tally);
                                break 'phase;
                            }
                        }
                        Ok(resp) => break resp,
                        Err(e) => {
                            fail(&format!("recv failed: {e}"), &tally);
                            break 'phase;
                        }
                    }
                };
                match sync {
                    Response::Accepted { job } => break Some(job),
                    Response::Rejected { retry_after_ms } => {
                        tally.rejections.fetch_add(1, Ordering::Relaxed);
                        if Instant::now() >= retry_until {
                            fail("admission retry budget exhausted", &tally);
                            break 'phase;
                        }
                        std::thread::sleep(Duration::from_millis(
                            u64::from(retry_after_ms).clamp(1, 250),
                        ));
                    }
                    Response::ShedDeadline { .. } => break None,
                    other => {
                        fail(&format!("unexpected submit answer: {other:?}"), &tally);
                        break 'phase;
                    }
                }
            };
            let Some(job) = job else {
                tally.sheds.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = class {
                    tally.classes[c].sheds.fetch_add(1, Ordering::Relaxed);
                }
                sent += 1;
                done += 1;
                continue;
            };
            inflight.insert(job, (t0, class));
            if let Err(e) = client.send(&Request::Await { job }) {
                fail(&format!("await send failed: {e}"), &tally);
                break 'phase;
            }
            sent += 1;
        } else {
            // Window full (or all submitted): block for the next result.
            match client.recv() {
                Ok(Response::JobResult { job, ok, .. }) => {
                    if !note_completion(&mut inflight, &mut local_lat, &tally, &mut done, job, ok) {
                        fail(&format!("unexpected result for job {job}"), &tally);
                        break 'phase;
                    }
                }
                Ok(other) => {
                    fail(
                        &format!("unexpected frame awaiting results: {other:?}"),
                        &tally,
                    );
                    break 'phase;
                }
                Err(e) => {
                    fail(&format!("recv failed: {e}"), &tally);
                    break 'phase;
                }
            }
        }
    }
    tally.latencies_ns.lock().extend_from_slice(&local_lat);
}

fn run_phase(
    addr: &str,
    mix: Mix,
    hi_deadline_ms: u32,
    clients: usize,
    requests: u64,
    rate: f64,
    pipeline: u64,
) -> PhaseReport {
    let tally = Arc::new(PhaseTally::default());
    let per = requests / clients as u64;
    let extra = requests % clients as u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let tally = Arc::clone(&tally);
            let n = per + u64::from((c as u64) < extra);
            std::thread::spawn(move || {
                client_worker(
                    addr,
                    mix,
                    hi_deadline_ms,
                    c as u64,
                    n,
                    rate,
                    pipeline,
                    tally,
                )
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let mut latencies_ns = std::mem::take(&mut *tally.latencies_ns.lock());
    latencies_ns.sort_unstable();
    let classes = matches!(mix, Mix::Priority { .. }).then(|| {
        let digest = |name: &'static str, ct: &ClassTally| {
            let mut lat = std::mem::take(&mut *ct.latencies_ns.lock());
            lat.sort_unstable();
            ClassReport {
                name,
                completed: ct.completed.load(Ordering::Relaxed),
                failed: ct.failed.load(Ordering::Relaxed),
                sheds: ct.sheds.load(Ordering::Relaxed),
                latencies_ns: lat,
            }
        };
        [
            digest("hi", &tally.classes[0]),
            digest("batch", &tally.classes[1]),
        ]
    });
    PhaseReport {
        clients,
        completed: tally.completed.load(Ordering::Relaxed),
        failed_verification: tally.failed_verification.load(Ordering::Relaxed),
        rejections: tally.rejections.load(Ordering::Relaxed),
        sheds: tally.sheds.load(Ordering::Relaxed),
        protocol_errors: tally.protocol_errors.load(Ordering::Relaxed),
        wall_s,
        latencies_ns,
        classes,
    }
}

/// Locate `romp-serve` next to this executable (cargo puts workspace
/// binaries in one target directory).
fn locate_server_bin() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for d in [dir, dir.parent().unwrap_or(dir)] {
        let cand = d.join("romp-serve");
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

/// Launch a server for one `--workers-sweep` phase and wait for its
/// readiness line.  Returns the child and the bound address.
fn spawn_server(bin: &std::path::Path, workers: usize) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut cmd = std::process::Command::new(bin);
    cmd.args(["--addr", "127.0.0.1:0"]);
    if workers > 0 {
        cmd.args(["--workers", &workers.to_string()]);
    }
    cmd.stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut child = cmd.spawn().unwrap_or_else(|e| {
        eprintln!("loadgen: spawn {} failed: {e}", bin.display());
        std::process::exit(1);
    });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap_or_else(|e| {
        eprintln!("loadgen: server readiness line: {e}");
        std::process::exit(1);
    });
    let addr = match line.trim().strip_prefix("romp-serve listening on ") {
        Some(a) => a.to_string(),
        None => {
            eprintln!("loadgen: unexpected server banner: {line:?}");
            let _ = child.kill();
            std::process::exit(1);
        }
    };
    // Keep the pipe drained so the drain report never blocks the server.
    std::thread::spawn(move || {
        let mut sink = String::new();
        use std::io::Read;
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

fn main() {
    let mut addr: Option<String> = None;
    let mut clients = 4usize;
    let mut sweep: Option<Vec<usize>> = None;
    let mut workers_sweep: Option<Vec<usize>> = None;
    let mut server_bin: Option<std::path::PathBuf> = None;
    let mut requests = 200u64;
    let mut rate = 0.0f64;
    let mut pipeline = 1u64;
    let mut mix = Mix::Epcc;
    let mut hi_deadline_ms = 150u32;
    let mut hi_p99_max_us = 0f64;
    let mut json = false;
    let mut ping = false;
    let mut shutdown = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |j: usize| args.get(j).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = Some(need(i + 1));
                i += 2;
            }
            "--clients" => {
                clients = need(i + 1)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--sweep" => {
                let v: Option<Vec<usize>> = need(i + 1)
                    .split(',')
                    .map(|t| t.trim().parse().ok().filter(|&n| n >= 1))
                    .collect();
                sweep = Some(v.unwrap_or_else(|| usage()));
                i += 2;
            }
            "--workers-sweep" => {
                let v: Option<Vec<usize>> = need(i + 1)
                    .split(',')
                    .map(|t| t.trim().parse().ok())
                    .collect();
                workers_sweep = Some(v.unwrap_or_else(|| usage()));
                i += 2;
            }
            "--server-bin" => {
                server_bin = Some(need(i + 1).into());
                i += 2;
            }
            "--requests" => {
                requests = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--rate" => {
                rate = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--pipeline" => {
                pipeline = need(i + 1)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--mix" => {
                mix = Mix::parse(&need(i + 1)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--hi-deadline-ms" => {
                hi_deadline_ms = need(i + 1)
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--hi-p99-max-us" => {
                hi_p99_max_us = need(i + 1)
                    .parse()
                    .ok()
                    .filter(|&n: &f64| n > 0.0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--ping" => {
                ping = true;
                i += 1;
            }
            "--shutdown" => {
                shutdown = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // Worker-pool scaling mode: one fresh server per phase.
    if let Some(widths) = workers_sweep {
        if ping || shutdown || sweep.is_some() || addr.is_some() || widths.is_empty() {
            usage();
        }
        let bin = server_bin.or_else(locate_server_bin).unwrap_or_else(|| {
            eprintln!("loadgen: romp-serve binary not found (pass --server-bin PATH)");
            std::process::exit(1);
        });
        let mut phases: Vec<(usize, PhaseReport)> = Vec::new();
        for &w in &widths {
            if !json {
                eprintln!(
                    "loadgen: phase workers={w} clients={clients} requests={requests} \
                     pipeline={pipeline} ..."
                );
            }
            let (mut child, srv_addr) = spawn_server(&bin, w);
            let report = run_phase(
                &srv_addr,
                mix,
                hi_deadline_ms,
                clients,
                requests,
                rate,
                pipeline,
            );
            if let Err(e) = Client::connect(srv_addr.as_str()).and_then(|mut c| c.shutdown()) {
                eprintln!("loadgen: shutdown after workers={w} failed: {e}");
            }
            let status = child.wait().expect("server exit status");
            if !status.success() {
                eprintln!("loadgen: server (workers={w}) exited with {status}");
                std::process::exit(1);
            }
            phases.push((w, report));
        }
        if json {
            let mut s = String::from("{\n  \"benchmark\": \"cluster_loadgen\",\n");
            s.push_str(&format!(
                "  \"host_cores\": {},\n",
                std::thread::available_parallelism()
                    .map(|v| v.get())
                    .unwrap_or(1)
            ));
            s.push_str(&format!("  \"mix\": \"{}\",\n", mix.label()));
            s.push_str(&format!("  \"requests_per_phase\": {requests},\n"));
            s.push_str(&format!("  \"clients\": {clients},\n"));
            s.push_str(&format!("  \"pipeline\": {pipeline},\n"));
            s.push_str("  \"phases\": [\n");
            for (i, (w, r)) in phases.iter().enumerate() {
                s.push_str(&format!("    {{\"workers\": {w}, "));
                s.push_str(&r.to_json()[1..]);
                s.push_str(if i + 1 == phases.len() { "\n" } else { ",\n" });
            }
            s.push_str("  ]\n}");
            println!("{s}");
        } else {
            for (w, r) in &phases {
                println!("workers={w:<2} {}", r.render());
            }
        }
        let bad: u64 = phases.iter().map(|(_, r)| r.protocol_errors).sum();
        let incomplete = phases
            .iter()
            .any(|(_, r)| r.completed + r.sheds != requests || r.failed_verification != 0);
        if bad > 0 || incomplete {
            eprintln!("loadgen: FAILED (protocol_errors={bad}, incomplete={incomplete})");
            std::process::exit(1);
        }
        return;
    }

    let addr = addr.unwrap_or_else(|| usage());

    if ping {
        match Client::connect(addr.as_str()).and_then(|mut c| c.ping()) {
            Ok(()) => {
                eprintln!("loadgen: {addr} is alive");
                return;
            }
            Err(e) => {
                eprintln!("loadgen: ping {addr} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| c.shutdown()) {
            Ok(outstanding) => {
                eprintln!("loadgen: drain requested, {outstanding} jobs outstanding");
                return;
            }
            Err(e) => {
                eprintln!("loadgen: shutdown {addr} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let concurrencies = sweep.unwrap_or_else(|| vec![clients]);
    let mut reports = Vec::new();
    for &c in &concurrencies {
        if !json {
            eprintln!("loadgen: phase clients={c} requests={requests} pipeline={pipeline} ...");
        }
        reports.push(run_phase(
            &addr,
            mix,
            hi_deadline_ms,
            c,
            requests,
            rate,
            pipeline,
        ));
    }

    if json {
        let mut s = String::from("{\n  \"benchmark\": \"serve_loadgen\",\n");
        s.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        ));
        s.push_str(&format!("  \"mix\": \"{}\",\n", mix.label()));
        s.push_str(&format!("  \"requests_per_phase\": {requests},\n"));
        s.push_str(&format!("  \"pipeline\": {pipeline},\n"));
        s.push_str(&format!("  \"open_loop_rate_per_client\": {rate},\n"));
        s.push_str("  \"phases\": [\n");
        for (i, r) in reports.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&r.to_json());
            s.push_str(if i + 1 == reports.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]\n}");
        println!("{s}");
    } else {
        for r in &reports {
            println!("{}", r.render());
        }
    }

    let bad: u64 = reports.iter().map(|r| r.protocol_errors).sum();
    let incomplete = reports
        .iter()
        .any(|r| r.completed + r.sheds != requests || r.failed_verification != 0);
    if bad > 0 || incomplete {
        eprintln!("loadgen: FAILED (protocol_errors={bad}, incomplete={incomplete})");
        std::process::exit(1);
    }
    // The overload gate: the Hi class must finish everything it was
    // admitted for (no deadline kills, no sheds) within the p99 bound.
    if hi_p99_max_us > 0.0 {
        for r in &reports {
            let Some([hi, _]) = &r.classes else {
                eprintln!("loadgen: --hi-p99-max-us requires --mix hi=..,batch=..");
                std::process::exit(2);
            };
            let p99 = quantile_us_of(&hi.latencies_ns, 0.99);
            if hi.failed != 0 || hi.sheds != 0 || p99 > hi_p99_max_us {
                eprintln!(
                    "loadgen: FAILED hi-class gate (failed={}, sheds={}, p99={p99:.1}us, \
                     bound={hi_p99_max_us:.1}us)",
                    hi.failed, hi.sheds
                );
                std::process::exit(1);
            }
        }
    }
}
