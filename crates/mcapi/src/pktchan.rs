//! Connected packet channels (`mcapi_pktchan_*`).
//!
//! A packet channel is a unidirectional FIFO between exactly two endpoints.
//! The spec's three-step dance (connect, open send side, open receive side)
//! is condensed into [`connect`], which returns the two typed half-handles;
//! either side may close, after which the receiver drains what is queued and
//! then observes `MCAPI_ERR_CHAN_CLOSED`.

use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::registry::{ChanKind, ChanRole, ChanState, Endpoint, Item};
use crate::status::{ensure, McapiResult, McapiStatus};

impl std::fmt::Debug for PktTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PktTx")
            .field("ep", &self.ep.addr())
            .finish()
    }
}

/// Sending half of a packet channel.
pub struct PktTx {
    ep: Endpoint,
    peer: Endpoint,
}

impl std::fmt::Debug for PktRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PktRx")
            .field("ep", &self.ep.addr())
            .finish()
    }
}

/// Receiving half of a packet channel.
pub struct PktRx {
    ep: Endpoint,
    peer: Endpoint,
}

/// `mcapi_pktchan_connect_i` + both opens: bind `tx → rx`.
///
/// Fails with `MCAPI_ERR_CHAN_CONNECTED` if either endpoint is already
/// bound, and refuses endpoints with queued connectionless messages
/// (`MCAPI_ERR_CHAN_INVALID`) — channel traffic must not interleave with
/// datagrams.
pub fn connect(tx: &Endpoint, rx: &Endpoint) -> McapiResult<(PktTx, PktRx)> {
    tx.check_live()?;
    rx.check_live()?;
    ensure(
        tx.queued() == 0 && rx.queued() == 0,
        McapiStatus::ErrChanInvalid,
    )?;
    let mut tc = tx.inner.chan.lock();
    let mut rc = rx.inner.chan.lock();
    ensure(tc.is_none() && rc.is_none(), McapiStatus::ErrChanConnected)?;
    *tc = Some(ChanState {
        kind: ChanKind::Packet,
        role: ChanRole::Sender,
        peer: rx.addr(),
    });
    *rc = Some(ChanState {
        kind: ChanKind::Packet,
        role: ChanRole::Receiver,
        peer: tx.addr(),
    });
    drop(tc);
    drop(rc);
    Ok((
        PktTx {
            ep: tx.clone(),
            peer: rx.clone(),
        },
        PktRx {
            ep: rx.clone(),
            peer: tx.clone(),
        },
    ))
}

impl PktTx {
    fn check_open(&self) -> McapiResult<()> {
        self.ep.check_live()?;
        ensure(
            !self.ep.inner.peer_closed.load(Ordering::Acquire),
            McapiStatus::ErrChanClosed,
        )?;
        let c = self.ep.inner.chan.lock();
        match *c {
            Some(ChanState {
                kind: ChanKind::Packet,
                role: ChanRole::Sender,
                ..
            }) => Ok(()),
            _ => Err(crate::McapiError(McapiStatus::ErrChanInvalid)),
        }
    }

    /// `mcapi_pktchan_send` — blocking FIFO send.
    pub fn send(&self, data: &[u8]) -> McapiResult<()> {
        self.check_open()?;
        Endpoint::deliver(&self.peer.inner, Item::Packet(data.to_vec()), None)
    }

    /// Non-blocking send (`MCAPI_ERR_MEM_LIMIT` when the peer queue is
    /// full).
    pub fn try_send(&self, data: &[u8]) -> McapiResult<()> {
        self.check_open()?;
        Endpoint::try_deliver(&self.peer.inner, Item::Packet(data.to_vec()))
    }

    /// Close the sending half; the receiver drains then sees
    /// `MCAPI_ERR_CHAN_CLOSED`.
    pub fn close(self) {
        *self.ep.inner.chan.lock() = None;
        self.peer.inner.peer_closed.store(true, Ordering::Release);
        self.peer.inner.cv.notify_all();
    }
}

impl PktRx {
    fn check_open(&self) -> McapiResult<()> {
        self.ep.check_live()?;
        let c = self.ep.inner.chan.lock();
        match *c {
            Some(ChanState {
                kind: ChanKind::Packet,
                role: ChanRole::Receiver,
                ..
            }) => Ok(()),
            _ => Err(crate::McapiError(McapiStatus::ErrChanInvalid)),
        }
    }

    /// `mcapi_pktchan_recv` — blocking FIFO receive.
    pub fn recv(&self) -> McapiResult<Vec<u8>> {
        self.recv_inner(None)
    }

    /// Blocking receive bounded by `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> McapiResult<Vec<u8>> {
        self.recv_inner(Some(timeout))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> McapiResult<Vec<u8>> {
        self.check_open()?;
        self.ep.try_take(accept_packet, convert_packet)
    }

    fn recv_inner(&self, timeout: Option<Duration>) -> McapiResult<Vec<u8>> {
        self.check_open()?;
        self.ep.take_next(timeout, accept_packet, convert_packet)
    }

    /// Packets waiting (`mcapi_pktchan_available`).
    pub fn available(&self) -> usize {
        self.ep.queued()
    }

    /// Close the receiving half; pending packets are discarded and a
    /// blocked sender wakes with `MCAPI_ERR_CHAN_CLOSED` on its next send.
    pub fn close(self) {
        *self.ep.inner.chan.lock() = None;
        self.peer.inner.peer_closed.store(true, Ordering::Release);
        self.ep.inner.cv.notify_all();
    }
}

fn accept_packet(item: &Item) -> McapiResult<()> {
    match item {
        Item::Packet(_) => Ok(()),
        _ => Err(crate::McapiError(McapiStatus::ErrChanType)),
    }
}

fn convert_packet(item: Item) -> Vec<u8> {
    match item {
        Item::Packet(d) => d,
        _ => unreachable!("accept_packet filtered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EndpointAddr, McapiDomain};

    fn channel() -> (PktTx, PktRx) {
        let dom = McapiDomain::new(1);
        let tx = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        connect(&tx, &rx).unwrap()
    }

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = channel();
        for i in 0..50u32 {
            tx.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(rx.recv().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn connected_endpoint_rejects_messages() {
        let dom = McapiDomain::new(1);
        let n0 = dom.initialize(0).unwrap();
        let tx = n0.create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        let other = n0.create_endpoint(2).unwrap();
        let (_t, _r) = connect(&tx, &rx).unwrap();
        assert_eq!(
            tx.msg_send(other.addr(), b"x", 0).unwrap_err().0,
            McapiStatus::ErrChanConnected
        );
        assert_eq!(
            other.msg_send(rx.addr(), b"x", 0).unwrap_err().0,
            McapiStatus::ErrChanConnected,
            "messages must not target a connected endpoint"
        );
    }

    #[test]
    fn double_connect_rejected() {
        let dom = McapiDomain::new(1);
        let tx = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        let _c = connect(&tx, &rx).unwrap();
        let rx2 = dom.get_endpoint(EndpointAddr { node: 1, port: 1 }).unwrap();
        assert_eq!(
            connect(&tx, &rx2).unwrap_err().0,
            McapiStatus::ErrChanConnected
        );
    }

    #[test]
    fn connect_refuses_dirty_queues() {
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        a.msg_send(b.addr(), b"stale", 0).unwrap();
        assert_eq!(connect(&a, &b).unwrap_err().0, McapiStatus::ErrChanInvalid);
    }

    #[test]
    fn close_drains_then_fails() {
        let (tx, rx) = channel();
        tx.send(b"one").unwrap();
        tx.send(b"two").unwrap();
        tx.close();
        assert_eq!(rx.recv().unwrap(), b"one");
        assert_eq!(rx.recv().unwrap(), b"two");
        assert_eq!(rx.recv().unwrap_err().0, McapiStatus::ErrChanClosed);
    }

    #[test]
    fn receiver_close_fails_sender() {
        let (tx, rx) = channel();
        rx.close();
        assert_eq!(tx.send(b"x").unwrap_err().0, McapiStatus::ErrChanClosed);
    }

    #[test]
    fn cross_thread_stream() {
        let (tx, rx) = channel();
        let producer = std::thread::spawn(move || {
            for i in 0..200u32 {
                tx.send(&i.to_le_bytes()).unwrap();
            }
            tx.close();
        });
        let mut next = 0u32;
        loop {
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(d) => {
                    assert_eq!(d, next.to_le_bytes());
                    next += 1;
                }
                Err(e) => {
                    assert_eq!(e.0, McapiStatus::ErrChanClosed);
                    break;
                }
            }
        }
        assert_eq!(next, 200);
        producer.join().unwrap();
    }

    #[test]
    fn try_ops_report_state() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv().unwrap_err().0, McapiStatus::ErrQueueEmpty);
        tx.try_send(b"x").unwrap();
        assert_eq!(rx.available(), 1);
        assert_eq!(rx.try_recv().unwrap(), b"x");
    }
}
