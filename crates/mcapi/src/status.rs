//! MCAPI status vocabulary.

/// Status codes this implementation can emit (`mcapi_status_t` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum McapiStatus {
    /// Operation completed (`MCAPI_SUCCESS`).
    Success,
    /// Node id already initialized (`MCAPI_ERR_NODE_INITFAILED`).
    ErrNodeInitFailed,
    /// Node unknown or finalized (`MCAPI_ERR_NODE_INVALID`).
    ErrNodeInvalid,
    /// Port already has an endpoint (`MCAPI_ERR_ENDP_EXISTS`).
    ErrEndpointExists,
    /// No endpoint at the address (`MCAPI_ERR_ENDP_INVALID`).
    ErrEndpointInvalid,
    /// Parameter out of range (`MCAPI_ERR_PARAMETER`).
    ErrParameter,
    /// Receive queue full (`MCAPI_ERR_MEM_LIMIT`).
    ErrQueueFull,
    /// Receive queue empty on a non-blocking receive (`MCAPI_ERR_QUEUE_EMPTY`).
    ErrQueueEmpty,
    /// Timed wait expired (`MCAPI_TIMEOUT`).
    Timeout,
    /// Endpoint already connected to a channel (`MCAPI_ERR_CHAN_CONNECTED`).
    ErrChanConnected,
    /// Channel operation on an unconnected endpoint (`MCAPI_ERR_CHAN_INVALID`).
    ErrChanInvalid,
    /// Channel type mismatch, e.g. scalar op on a packet channel
    /// (`MCAPI_ERR_CHAN_TYPE`).
    ErrChanType,
    /// Channel was closed by the peer (`MCAPI_ERR_CHAN_CLOSED`).
    ErrChanClosed,
    /// Scalar size mismatch between send and receive
    /// (`MCAPI_ERR_SCL_SIZE`).
    ErrScalarSize,
    /// Packet exceeds the transport's size bound (`MCAPI_ERR_PKT_LIMIT`).
    ErrPktLimit,
    /// The underlying physical transport failed (`MCAPI_ERR_TRANSMISSION`)
    /// — e.g. the socket carrying a cross-process wire link broke.
    ErrTransmission,
}

impl McapiStatus {
    /// Spec-style identifier.
    pub fn spec_name(self) -> &'static str {
        match self {
            McapiStatus::Success => "MCAPI_SUCCESS",
            McapiStatus::ErrNodeInitFailed => "MCAPI_ERR_NODE_INITFAILED",
            McapiStatus::ErrNodeInvalid => "MCAPI_ERR_NODE_INVALID",
            McapiStatus::ErrEndpointExists => "MCAPI_ERR_ENDP_EXISTS",
            McapiStatus::ErrEndpointInvalid => "MCAPI_ERR_ENDP_INVALID",
            McapiStatus::ErrParameter => "MCAPI_ERR_PARAMETER",
            McapiStatus::ErrQueueFull => "MCAPI_ERR_MEM_LIMIT",
            McapiStatus::ErrQueueEmpty => "MCAPI_ERR_QUEUE_EMPTY",
            McapiStatus::Timeout => "MCAPI_TIMEOUT",
            McapiStatus::ErrChanConnected => "MCAPI_ERR_CHAN_CONNECTED",
            McapiStatus::ErrChanInvalid => "MCAPI_ERR_CHAN_INVALID",
            McapiStatus::ErrChanType => "MCAPI_ERR_CHAN_TYPE",
            McapiStatus::ErrChanClosed => "MCAPI_ERR_CHAN_CLOSED",
            McapiStatus::ErrScalarSize => "MCAPI_ERR_SCL_SIZE",
            McapiStatus::ErrPktLimit => "MCAPI_ERR_PKT_LIMIT",
            McapiStatus::ErrTransmission => "MCAPI_ERR_TRANSMISSION",
        }
    }
}

/// Error wrapper for non-success statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McapiError(pub McapiStatus);

impl std::fmt::Display for McapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.spec_name())
    }
}

impl std::error::Error for McapiError {}

/// Crate-wide result alias.
pub type McapiResult<T> = Result<T, McapiError>;

pub(crate) fn ensure(cond: bool, status: McapiStatus) -> McapiResult<()> {
    if cond {
        Ok(())
    } else {
        Err(McapiError(status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(McapiStatus::Success.spec_name(), "MCAPI_SUCCESS");
        assert_eq!(
            McapiError(McapiStatus::Timeout).to_string(),
            "MCAPI_TIMEOUT"
        );
    }

    #[test]
    fn ensure_gates() {
        assert!(ensure(true, McapiStatus::ErrParameter).is_ok());
        assert_eq!(
            ensure(false, McapiStatus::ErrChanType).unwrap_err().0,
            McapiStatus::ErrChanType
        );
    }
}
