//! Cross-process packet-channel transport ("the wire").
//!
//! MCAPI is specified for *closely distributed* systems — cores and OS
//! processes that do not share one address space.  The in-process
//! registry (`crate::registry`) models one interconnect inside a
//! single process; this module extends a packet channel across a real
//! process boundary by pumping packets over a Unix-domain socket, the
//! way a production MCAPI implementation pumps them over a mailbox or
//! RapidIO driver.
//!
//! A [`WireChan`] is one *duplex* link.  Each direction is a genuine
//! MCAPI packet channel ([`crate::pktchan`]) between two private
//! endpoints, with a pump thread moving packets between the channel and
//! the socket:
//!
//! ```text
//!   app ──PktTx──▶ [ep queue] ──pump──▶ socket ──▶ peer pump ──PktTx──▶ [ep queue] ──PktRx──▶ peer app
//! ```
//!
//! The MCAPI semantics therefore hold end-to-end: sends observe the
//! bounded endpoint queue (packets ahead of a slow socket exert
//! backpressure), receives drain in FIFO order, and when the process on
//! the other side dies — or closes — the receiver drains what was
//! delivered and then observes `MCAPI_ERR_CHAN_CLOSED`, exactly the
//! failure a [`crate::pktchan::PktRx`] reports for an in-process close.
//! That typed close is what a supervisor keys its failure detection on.
//!
//! On-socket framing is a `u32` big-endian length prefix per packet
//! (bounded by [`MAX_WIRE_PKT`]); packet boundaries are preserved.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::pktchan::{self, PktRx, PktTx};
use crate::registry::{Endpoint, McapiDomain};
use crate::status::{McapiResult, McapiStatus};

/// Upper bound on one wire packet's payload, protecting either side from
/// hostile or corrupt length prefixes.
pub const MAX_WIRE_PKT: usize = 1 << 20;

/// Receive-queue bound of the wire endpoints (packets buffered between
/// the application and the socket before sends block).
pub const WIRE_QUEUE_CAPACITY: usize = 64;

/// Distinguishes the private domains minted for wire links (diagnostic
/// only; each link owns a fresh registry, so ids never collide).
static WIRE_DOMAIN_SEQ: AtomicU32 = AtomicU32::new(0x5731_0000);

/// Listening side of a wire: accepts peer processes connecting to a
/// Unix-socket path and hands each back as a [`WireChan`].
pub struct WireListener {
    listener: UnixListener,
}

impl WireListener {
    /// Bind `path` (an existing stale socket file is replaced).
    pub fn bind(path: &Path) -> std::io::Result<WireListener> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(WireListener { listener })
    }

    /// Accept one peer, waiting up to `timeout` (`MCAPI_TIMEOUT` if no
    /// peer connects in time).
    pub fn accept(&self, timeout: Duration) -> McapiResult<WireChan> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    return WireChan::from_stream(stream)
                        .map_err(|_| crate::McapiError(McapiStatus::ErrTransmission));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(crate::McapiError(McapiStatus::Timeout));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return Err(crate::McapiError(McapiStatus::ErrTransmission)),
            }
        }
    }
}

/// One duplex cross-process packet link (see module docs).
///
/// `send` and `recv*` may be called from different threads concurrently
/// (the underlying endpoints synchronise internally); sharing one
/// `WireChan` behind an `Arc` between a dispatcher and a supervisor is
/// the intended shape.
pub struct WireChan {
    /// `Some` until [`WireChan::close`] consumes it for a graceful
    /// flush-then-FIN.
    tx: Option<PktTx>,
    rx: PktRx,
    /// The pump-side receive endpoint of the outbound channel; deleted
    /// on socket failure so blocked senders fail instead of hanging.
    out_pump_ep: Endpoint,
    stream: UnixStream,
}

impl WireChan {
    /// Connect to a [`WireListener`] at `path`, retrying until `timeout`
    /// (the listener may not have bound yet — e.g. a worker racing its
    /// router).
    pub fn connect(path: &Path, timeout: Duration) -> McapiResult<WireChan> {
        let deadline = Instant::now() + timeout;
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    return WireChan::from_stream(stream)
                        .map_err(|_| crate::McapiError(McapiStatus::ErrTransmission));
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return Err(crate::McapiError(McapiStatus::Timeout)),
            }
        }
    }

    /// Build a wire link over an already-connected stream (one side of
    /// `UnixStream::pair()` works too — useful in tests).
    pub fn from_stream(stream: UnixStream) -> std::io::Result<WireChan> {
        stream.set_nonblocking(false)?;
        let dom = McapiDomain::new(WIRE_DOMAIN_SEQ.fetch_add(1, Ordering::Relaxed));
        let out_node = dom.initialize(0).expect("fresh domain");
        let in_node = dom.initialize(1).expect("fresh domain");
        let mk = |node: &crate::registry::McapiNode, port| {
            node.create_endpoint_with_capacity(port, WIRE_QUEUE_CAPACITY)
                .expect("fresh endpoint")
        };
        // Outbound: app sends into a channel whose receiver is the pump.
        let out_app_ep = mk(&out_node, 0);
        let out_pump_ep = mk(&out_node, 1);
        let (tx, out_pump_rx) = pktchan::connect(&out_app_ep, &out_pump_ep).expect("fresh pair");
        // Inbound: the pump sends into a channel whose receiver is the app.
        let in_pump_ep = mk(&in_node, 0);
        let in_app_ep = mk(&in_node, 1);
        let (in_pump_tx, rx) = pktchan::connect(&in_pump_ep, &in_app_ep).expect("fresh pair");

        let out_stream = stream.try_clone()?;
        let kill_ep = out_pump_ep.clone();
        std::thread::Builder::new()
            .name("mcapi-wire-out".into())
            .spawn(move || outbound_pump(out_pump_rx, out_stream, kill_ep))?;
        let in_stream = stream.try_clone()?;
        std::thread::Builder::new()
            .name("mcapi-wire-in".into())
            .spawn(move || inbound_pump(in_pump_tx, in_stream))?;

        Ok(WireChan {
            tx: Some(tx),
            rx,
            out_pump_ep,
            stream,
        })
    }

    /// Send one packet (blocking while the outbound endpoint queue is
    /// full).  `MCAPI_ERR_CHAN_CLOSED` / `MCAPI_ERR_ENDP_INVALID` mean
    /// the peer — or the socket under it — is gone.
    pub fn send(&self, pkt: &[u8]) -> McapiResult<()> {
        if pkt.len() > MAX_WIRE_PKT {
            return Err(crate::McapiError(McapiStatus::ErrPktLimit));
        }
        match &self.tx {
            Some(tx) => tx.send(pkt),
            None => Err(crate::McapiError(McapiStatus::ErrChanClosed)),
        }
    }

    /// Receive the next packet, blocking.
    pub fn recv(&self) -> McapiResult<Vec<u8>> {
        self.rx.recv()
    }

    /// Receive with a bound; `MCAPI_TIMEOUT` if nothing arrives in time,
    /// `MCAPI_ERR_CHAN_CLOSED` once the peer is gone and the queue is
    /// drained.
    pub fn recv_timeout(&self, timeout: Duration) -> McapiResult<Vec<u8>> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive (`MCAPI_ERR_QUEUE_EMPTY` when idle).
    pub fn try_recv(&self) -> McapiResult<Vec<u8>> {
        self.rx.try_recv()
    }

    /// Tear the link down: packets already queued outbound are still
    /// flushed to the socket, then the write side closes so the peer
    /// drains and observes `MCAPI_ERR_CHAN_CLOSED`.
    pub fn close(mut self) {
        // Closing the app's sender lets the outbound pump drain the
        // queue, then observe the close and FIN the socket.
        if let Some(tx) = self.tx.take() {
            tx.close();
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Read);
    }
}

impl Drop for WireChan {
    fn drop(&mut self) {
        // A graceful `close` already handed teardown to the pumps (the
        // outbound pump flushes then FINs); don't race it.
        if self.tx.is_none() {
            return;
        }
        // Unblock both pumps; queued-but-unsent packets are dropped
        // (callers wanting flush-then-close use `close`).
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.out_pump_ep.clone().delete();
    }
}

/// Move packets from the outbound channel onto the socket.
fn outbound_pump(rx: PktRx, mut stream: UnixStream, kill_ep: Endpoint) {
    loop {
        match rx.recv() {
            Ok(pkt) => {
                let len = (pkt.len() as u32).to_be_bytes();
                if stream.write_all(&len).is_err() || stream.write_all(&pkt).is_err() {
                    // Socket dead: delete the pump endpoint so blocked
                    // and future sends fail typed instead of hanging.
                    kill_ep.delete();
                    return;
                }
            }
            // App closed its sender (graceful) or the endpoint was
            // deleted: flush is done either way; FIN the write side.
            Err(_) => {
                let _ = stream.shutdown(std::net::Shutdown::Write);
                return;
            }
        }
    }
}

/// Move packets from the socket into the inbound channel.
fn inbound_pump(tx: PktTx, mut stream: UnixStream) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            // Peer closed or died: the app drains, then sees the typed
            // channel close.
            tx.close();
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_WIRE_PKT {
            tx.close();
            return;
        }
        let mut pkt = vec![0u8; len];
        if stream.read_exact(&mut pkt).is_err() {
            tx.close();
            return;
        }
        if tx.send(&pkt).is_err() {
            // App dropped its receiver; stop reading so the peer blocks
            // on socket backpressure rather than a black hole.
            let _ = stream.shutdown(std::net::Shutdown::Read);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (WireChan, WireChan) {
        let (a, b) = UnixStream::pair().unwrap();
        (
            WireChan::from_stream(a).unwrap(),
            WireChan::from_stream(b).unwrap(),
        )
    }

    #[test]
    fn roundtrip_fifo_both_directions() {
        let (a, b) = pair();
        for i in 0..100u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(
                b.recv_timeout(Duration::from_secs(5)).unwrap(),
                i.to_be_bytes()
            );
        }
        b.send(b"pong").unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap(), b"pong");
    }

    #[test]
    fn close_drains_then_reports_chan_closed() {
        let (a, b) = pair();
        a.send(b"last words").unwrap();
        a.close();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"last words"
        );
        let err = b.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.0, McapiStatus::ErrChanClosed);
    }

    #[test]
    fn dropped_peer_reports_chan_closed() {
        let (a, b) = pair();
        drop(a);
        let err = b.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.0, McapiStatus::ErrChanClosed);
    }

    #[test]
    fn large_packets_survive() {
        let (a, b) = pair();
        let big: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        a.send(&big).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap(), big);
        assert_eq!(
            a.send(&vec![0u8; MAX_WIRE_PKT + 1]).unwrap_err().0,
            McapiStatus::ErrPktLimit
        );
    }

    #[test]
    fn listener_accept_and_connect() {
        let path =
            std::env::temp_dir().join(format!("mcapi-wire-test-{}.sock", std::process::id()));
        let listener = WireListener::bind(&path).unwrap();
        let p2 = path.clone();
        let peer = std::thread::spawn(move || {
            let c = WireChan::connect(&p2, Duration::from_secs(5)).unwrap();
            c.send(b"hello").unwrap();
            c.recv_timeout(Duration::from_secs(5)).unwrap()
        });
        let server_side = listener.accept(Duration::from_secs(5)).unwrap();
        assert_eq!(
            server_side.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"hello"
        );
        server_side.send(b"welcome").unwrap();
        assert_eq!(peer.join().unwrap(), b"welcome");
        let _ = std::fs::remove_file(&path);
    }
}
