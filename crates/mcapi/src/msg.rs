//! Connectionless messages (`mcapi_msg_*`).
//!
//! Datagram semantics: any unconnected endpoint can send to any other by
//! address; deliveries carry a priority (0 = most urgent) and drain in
//! priority order, FIFO within a priority.  Bounded receive queues give
//! backpressure: blocking sends wait for space, non-blocking sends report
//! `MCAPI_ERR_MEM_LIMIT`.

use std::time::Duration;

use crate::registry::{Endpoint, EndpointAddr, Item};
use crate::status::{ensure, McapiResult, McapiStatus};
use crate::MCAPI_MAX_PRIORITY;

impl Endpoint {
    fn check_unconnected(&self) -> McapiResult<()> {
        ensure(!self.is_connected(), McapiStatus::ErrChanConnected)
    }

    /// `mcapi_msg_send` — blocking send to `dest` with `priority`.
    pub fn msg_send(&self, dest: EndpointAddr, data: &[u8], priority: u8) -> McapiResult<()> {
        self.msg_send_timeout(dest, data, priority, None)
    }

    /// Blocking send bounded by `timeout` (`None` = wait forever).
    pub fn msg_send_timeout(
        &self,
        dest: EndpointAddr,
        data: &[u8],
        priority: u8,
        timeout: Option<Duration>,
    ) -> McapiResult<()> {
        self.check_live()?;
        self.check_unconnected()?;
        ensure(priority <= MCAPI_MAX_PRIORITY, McapiStatus::ErrParameter)?;
        let target = self.domain.lookup(dest)?;
        ensure(target.chan.lock().is_none(), McapiStatus::ErrChanConnected)?;
        Endpoint::deliver(
            &target,
            Item::Msg {
                data: data.to_vec(),
                prio: priority,
            },
            timeout,
        )
    }

    /// `mcapi_msg_send_i`-style non-blocking send: fails with
    /// `MCAPI_ERR_MEM_LIMIT` when the destination queue is full.
    pub fn try_msg_send(&self, dest: EndpointAddr, data: &[u8], priority: u8) -> McapiResult<()> {
        self.check_live()?;
        self.check_unconnected()?;
        ensure(priority <= MCAPI_MAX_PRIORITY, McapiStatus::ErrParameter)?;
        let target = self.domain.lookup(dest)?;
        ensure(target.chan.lock().is_none(), McapiStatus::ErrChanConnected)?;
        Endpoint::try_deliver(
            &target,
            Item::Msg {
                data: data.to_vec(),
                prio: priority,
            },
        )
    }

    /// `mcapi_msg_recv` — blocking receive; returns `(data, priority)`.
    pub fn msg_recv(&self) -> McapiResult<(Vec<u8>, u8)> {
        self.msg_recv_inner(None)
    }

    /// Blocking receive bounded by `timeout`.
    pub fn msg_recv_timeout(&self, timeout: Duration) -> McapiResult<(Vec<u8>, u8)> {
        self.msg_recv_inner(Some(timeout))
    }

    /// `mcapi_msg_recv_i`-style non-blocking receive
    /// (`MCAPI_ERR_QUEUE_EMPTY` when nothing is waiting).
    pub fn try_msg_recv(&self) -> McapiResult<(Vec<u8>, u8)> {
        self.check_unconnected()?;
        self.try_take(accept_msg, convert_msg)
    }

    fn msg_recv_inner(&self, timeout: Option<Duration>) -> McapiResult<(Vec<u8>, u8)> {
        self.check_unconnected()?;
        self.take_next(timeout, accept_msg, convert_msg)
    }

    /// `mcapi_msg_available` — queued message count.
    pub fn msg_available(&self) -> usize {
        self.queued()
    }
}

fn accept_msg(item: &Item) -> McapiResult<()> {
    match item {
        Item::Msg { .. } => Ok(()),
        _ => Err(crate::McapiError(McapiStatus::ErrChanType)),
    }
}

fn convert_msg(item: Item) -> (Vec<u8>, u8) {
    match item {
        Item::Msg { data, prio } => (data, prio),
        _ => unreachable!("accept_msg filtered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McapiDomain;

    fn pair() -> (crate::McapiDomain, Endpoint, Endpoint) {
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        (dom, a, b)
    }

    #[test]
    fn roundtrip_preserves_bytes_and_priority() {
        let (_d, a, b) = pair();
        a.msg_send(b.addr(), b"hello", 3).unwrap();
        let (data, prio) = b.msg_recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(data, b"hello");
        assert_eq!(prio, 3);
    }

    #[test]
    fn priority_order_beats_arrival_order() {
        let (_d, a, b) = pair();
        a.msg_send(b.addr(), b"low", 7).unwrap();
        a.msg_send(b.addr(), b"mid", 3).unwrap();
        a.msg_send(b.addr(), b"urgent", 0).unwrap();
        assert_eq!(b.msg_recv().unwrap().0, b"urgent");
        assert_eq!(b.msg_recv().unwrap().0, b"mid");
        assert_eq!(b.msg_recv().unwrap().0, b"low");
    }

    #[test]
    fn fifo_within_priority() {
        let (_d, a, b) = pair();
        for i in 0..10u8 {
            a.msg_send(b.addr(), &[i], 2).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.msg_recv().unwrap().0, vec![i]);
        }
    }

    #[test]
    fn invalid_priority_and_unknown_destination() {
        let (_d, a, b) = pair();
        assert_eq!(
            a.msg_send(b.addr(), b"x", 8).unwrap_err().0,
            McapiStatus::ErrParameter
        );
        assert_eq!(
            a.msg_send(EndpointAddr { node: 9, port: 9 }, b"x", 0)
                .unwrap_err()
                .0,
            McapiStatus::ErrEndpointInvalid
        );
    }

    #[test]
    fn backpressure_blocks_then_times_out() {
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom
            .initialize(1)
            .unwrap()
            .create_endpoint_with_capacity(1, 2)
            .unwrap();
        a.msg_send(b.addr(), b"1", 0).unwrap();
        a.msg_send(b.addr(), b"2", 0).unwrap();
        assert_eq!(
            a.try_msg_send(b.addr(), b"3", 0).unwrap_err().0,
            McapiStatus::ErrQueueFull
        );
        assert_eq!(
            a.msg_send_timeout(b.addr(), b"3", 0, Some(Duration::from_millis(10)))
                .unwrap_err()
                .0,
            McapiStatus::Timeout
        );
        // Receiver drains one; a blocked sender proceeds.
        let a2 = a.clone();
        let dest = b.addr();
        let h = std::thread::spawn(move || a2.msg_send(dest, b"3", 0));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.msg_recv().unwrap().0, b"1");
        h.join().unwrap().unwrap();
        assert_eq!(b.msg_recv().unwrap().0, b"2");
        assert_eq!(b.msg_recv().unwrap().0, b"3");
    }

    #[test]
    fn recv_timeout_and_try_recv() {
        let (_d, _a, b) = pair();
        assert_eq!(
            b.msg_recv_timeout(Duration::from_millis(5)).unwrap_err().0,
            McapiStatus::Timeout
        );
        assert_eq!(b.try_msg_recv().unwrap_err().0, McapiStatus::ErrQueueEmpty);
    }

    #[test]
    fn concurrent_senders_deliver_everything() {
        let dom = McapiDomain::new(1);
        let rx = dom
            .initialize(99)
            .unwrap()
            .create_endpoint_with_capacity(1, 512)
            .unwrap();
        let handles: Vec<_> = (0..4u32)
            .map(|n| {
                let tx = dom.initialize(n).unwrap().create_endpoint(1).unwrap();
                let dest = rx.addr();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.msg_send(dest, &(n * 1000 + i).to_le_bytes(), (n % 8) as u8)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Ok((d, _)) = b_try(&rx) {
            got.push(u32::from_le_bytes(d.try_into().unwrap()));
        }
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..4)
            .flat_map(|n| (0..100).map(move |i| n * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    fn b_try(ep: &Endpoint) -> McapiResult<(Vec<u8>, u8)> {
        ep.try_msg_recv()
    }

    #[test]
    fn message_count_is_visible() {
        let (_d, a, b) = pair();
        assert_eq!(b.msg_available(), 0);
        a.msg_send(b.addr(), b"x", 0).unwrap();
        a.msg_send(b.addr(), b"y", 0).unwrap();
        assert_eq!(b.msg_available(), 2);
    }
}
