//! Domains, nodes, endpoints, and the shared delivery machinery.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mca_sync::{Condvar, Mutex as PlMutex, RwLock};

use crate::status::{ensure, McapiResult, McapiStatus};
use crate::{DEFAULT_QUEUE_CAPACITY, MCAPI_MAX_PRIORITY};

/// A fully qualified endpoint address within a domain
/// (`mcapi_endpoint_t` identity: node + port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointAddr {
    /// Owning node id within the domain.
    pub node: u32,
    /// Port number on that node (unique per node).
    pub port: u32,
}

/// One queued delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Item {
    /// Connectionless message with priority (0 = most urgent).
    Msg { data: Vec<u8>, prio: u8 },
    /// Packet-channel payload.
    Packet(Vec<u8>),
    /// Scalar-channel word with its size in bytes (1/2/4/8).
    Scalar { bits: u64, size: u8 },
}

/// What a connected endpoint is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChanKind {
    Packet,
    Scalar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChanRole {
    Sender,
    Receiver,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ChanState {
    pub kind: ChanKind,
    pub role: ChanRole,
    /// The other end's address (spec-visible via `*_peer` queries).
    pub peer: EndpointAddr,
}

impl ChanState {
    /// The connected peer's address.
    pub(crate) fn peer(&self) -> EndpointAddr {
        self.peer
    }
}

pub(crate) struct Queues {
    by_prio: Vec<VecDeque<Item>>,
    pub len: usize,
}

impl Queues {
    fn new() -> Self {
        Queues {
            by_prio: (0..=MCAPI_MAX_PRIORITY as usize)
                .map(|_| VecDeque::new())
                .collect(),
            len: 0,
        }
    }

    fn push(&mut self, item: Item) {
        let p = match &item {
            Item::Msg { prio, .. } => *prio as usize,
            // Channel traffic is strict FIFO: one lane.
            Item::Packet(_) | Item::Scalar { .. } => 0,
        };
        self.by_prio[p].push_back(item);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Item> {
        for q in self.by_prio.iter_mut() {
            if let Some(i) = q.pop_front() {
                self.len -= 1;
                return Some(i);
            }
        }
        None
    }

    fn peek(&self) -> Option<&Item> {
        self.by_prio.iter().find_map(|q| q.front())
    }
}

pub(crate) struct EpInner {
    pub addr: EndpointAddr,
    pub queue: PlMutex<Queues>,
    /// Receivers wait here for deliveries; senders wait here for space.
    pub cv: Condvar,
    pub capacity: usize,
    pub chan: PlMutex<Option<ChanState>>,
    /// Set when the channel peer closed (drain-then-fail semantics).
    pub peer_closed: AtomicBool,
    pub deleted: AtomicBool,
}

struct DomainInner {
    id: u32,
    nodes: RwLock<HashMap<u32, ()>>,
    endpoints: RwLock<HashMap<(u32, u32), Arc<EpInner>>>,
}

/// An MCAPI domain: the registry one simulated interconnect shares.
#[derive(Clone)]
pub struct McapiDomain {
    inner: Arc<DomainInner>,
}

impl McapiDomain {
    /// Create a fresh domain with the given id.
    pub fn new(id: u32) -> Self {
        McapiDomain {
            inner: Arc::new(DomainInner {
                id,
                nodes: RwLock::new(HashMap::new()),
                endpoints: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Domain id.
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// `mcapi_initialize` — register a node.
    pub fn initialize(&self, node: u32) -> McapiResult<McapiNode> {
        let mut nodes = self.inner.nodes.write();
        ensure(!nodes.contains_key(&node), McapiStatus::ErrNodeInitFailed)?;
        nodes.insert(node, ());
        Ok(McapiNode {
            domain: self.clone(),
            id: node,
        })
    }

    /// Look up an endpoint by address (`mcapi_endpoint_get`).
    pub fn get_endpoint(&self, addr: EndpointAddr) -> McapiResult<Endpoint> {
        let inner = self
            .inner
            .endpoints
            .read()
            .get(&(addr.node, addr.port))
            .cloned()
            .ok_or(crate::McapiError(McapiStatus::ErrEndpointInvalid))?;
        ensure(
            !inner.deleted.load(Ordering::Acquire),
            McapiStatus::ErrEndpointInvalid,
        )?;
        Ok(Endpoint {
            domain: self.clone(),
            inner,
        })
    }

    pub(crate) fn lookup(&self, addr: EndpointAddr) -> McapiResult<Arc<EpInner>> {
        let inner = self
            .inner
            .endpoints
            .read()
            .get(&(addr.node, addr.port))
            .cloned()
            .ok_or(crate::McapiError(McapiStatus::ErrEndpointInvalid))?;
        ensure(
            !inner.deleted.load(Ordering::Acquire),
            McapiStatus::ErrEndpointInvalid,
        )?;
        Ok(inner)
    }
}

impl std::fmt::Debug for McapiDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McapiDomain")
            .field("id", &self.inner.id)
            .field("endpoints", &self.inner.endpoints.read().len())
            .finish()
    }
}

/// A registered MCAPI node.
#[derive(Debug)]
pub struct McapiNode {
    domain: McapiDomain,
    id: u32,
}

impl McapiNode {
    /// Node id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// `mcapi_endpoint_create` — claim `port` on this node with the default
    /// queue capacity.
    pub fn create_endpoint(&self, port: u32) -> McapiResult<Endpoint> {
        self.create_endpoint_with_capacity(port, DEFAULT_QUEUE_CAPACITY)
    }

    /// Endpoint with an explicit receive-queue bound (the
    /// `MCAPI_MAX_QUEUE_ELEMENTS` attribute).
    pub fn create_endpoint_with_capacity(
        &self,
        port: u32,
        capacity: usize,
    ) -> McapiResult<Endpoint> {
        ensure(capacity > 0, McapiStatus::ErrParameter)?;
        let addr = EndpointAddr {
            node: self.id,
            port,
        };
        let inner = Arc::new(EpInner {
            addr,
            queue: PlMutex::new(Queues::new()),
            cv: Condvar::new(),
            capacity,
            chan: PlMutex::new(None),
            peer_closed: AtomicBool::new(false),
            deleted: AtomicBool::new(false),
        });
        let mut eps = self.domain.inner.endpoints.write();
        ensure(
            !eps.contains_key(&(addr.node, addr.port)),
            McapiStatus::ErrEndpointExists,
        )?;
        eps.insert((addr.node, addr.port), Arc::clone(&inner));
        Ok(Endpoint {
            domain: self.domain.clone(),
            inner,
        })
    }

    /// `mcapi_finalize` — deregister the node.  Its endpoints are deleted.
    pub fn finalize(self) {
        self.domain.inner.nodes.write().remove(&self.id);
        let mut eps = self.domain.inner.endpoints.write();
        eps.retain(|(node, _), ep| {
            if *node == self.id {
                ep.deleted.store(true, Ordering::Release);
                ep.cv.notify_all();
                false
            } else {
                true
            }
        });
    }
}

/// A live endpoint handle.  Message operations live in [`crate::msg`];
/// channel operations in [`crate::pktchan`] / [`crate::sclchan`].
#[derive(Clone)]
pub struct Endpoint {
    pub(crate) domain: McapiDomain,
    pub(crate) inner: Arc<EpInner>,
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> EndpointAddr {
        self.inner.addr
    }

    /// Deliveries waiting in the receive queue.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len
    }

    /// The receive-queue bound (`MCAPI_MAX_QUEUE_ELEMENTS` attribute).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Free queue slots right now.
    pub fn free_slots(&self) -> usize {
        self.inner.capacity.saturating_sub(self.queued())
    }

    /// Whether this endpoint is bound to a channel.
    pub fn is_connected(&self) -> bool {
        self.inner.chan.lock().is_some()
    }

    /// The connected peer's address, if this endpoint is channel-bound
    /// (`mcapi_*chan_get_peer`-style query).
    pub fn peer(&self) -> Option<EndpointAddr> {
        self.inner.chan.lock().map(|c| c.peer())
    }

    /// `mcapi_endpoint_delete`.  Pending deliveries are dropped; blocked
    /// peers wake with `MCAPI_ERR_ENDP_INVALID`.
    pub fn delete(self) {
        self.inner.deleted.store(true, Ordering::Release);
        self.domain
            .inner
            .endpoints
            .write()
            .remove(&(self.inner.addr.node, self.inner.addr.port));
        self.inner.cv.notify_all();
    }

    pub(crate) fn check_live(&self) -> McapiResult<()> {
        ensure(
            !self.inner.deleted.load(Ordering::Acquire),
            McapiStatus::ErrEndpointInvalid,
        )
    }

    /// Deliver `item` into `dest`'s queue, blocking while full (bounded by
    /// `timeout`; `None` = forever).
    pub(crate) fn deliver(
        dest: &Arc<EpInner>,
        item: Item,
        timeout: Option<Duration>,
    ) -> McapiResult<()> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut q = dest.queue.lock();
        while q.len >= dest.capacity {
            ensure(
                !dest.deleted.load(Ordering::Acquire),
                McapiStatus::ErrEndpointInvalid,
            )?;
            match deadline {
                None => dest.cv.wait(&mut q),
                Some(d) => {
                    if dest.cv.wait_until(&mut q, d).timed_out() {
                        ensure(q.len < dest.capacity, McapiStatus::Timeout)?;
                        break;
                    }
                }
            }
        }
        ensure(
            !dest.deleted.load(Ordering::Acquire),
            McapiStatus::ErrEndpointInvalid,
        )?;
        q.push(item);
        drop(q);
        dest.cv.notify_all();
        Ok(())
    }

    /// Try to deliver without blocking (`ErrQueueFull` when at capacity).
    pub(crate) fn try_deliver(dest: &Arc<EpInner>, item: Item) -> McapiResult<()> {
        ensure(
            !dest.deleted.load(Ordering::Acquire),
            McapiStatus::ErrEndpointInvalid,
        )?;
        let mut q = dest.queue.lock();
        ensure(q.len < dest.capacity, McapiStatus::ErrQueueFull)?;
        q.push(item);
        drop(q);
        dest.cv.notify_all();
        Ok(())
    }

    /// Pop the next delivery, waiting up to `timeout` (`None` = forever).
    /// `accept` filters/validates the head item *without* consuming it, so
    /// type mismatches leave the queue intact.
    pub(crate) fn take_next<T>(
        &self,
        timeout: Option<Duration>,
        accept: impl Fn(&Item) -> McapiResult<()>,
        convert: impl FnOnce(Item) -> T,
    ) -> McapiResult<T> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut q = self.inner.queue.lock();
        loop {
            self.check_live()?;
            if let Some(head) = q.peek() {
                accept(head)?;
                let item = q.pop().expect("peeked head exists");
                drop(q);
                // A sender may be waiting for space.
                self.inner.cv.notify_all();
                return Ok(convert(item));
            }
            if self.inner.peer_closed.load(Ordering::Acquire) {
                return Err(crate::McapiError(McapiStatus::ErrChanClosed));
            }
            match deadline {
                None => self.inner.cv.wait(&mut q),
                Some(d) => {
                    if self.inner.cv.wait_until(&mut q, d).timed_out() {
                        ensure(q.peek().is_some(), McapiStatus::Timeout)?;
                    }
                }
            }
        }
    }

    /// Pop without blocking (`ErrQueueEmpty` if nothing is queued).
    pub(crate) fn try_take<T>(
        &self,
        accept: impl Fn(&Item) -> McapiResult<()>,
        convert: impl FnOnce(Item) -> T,
    ) -> McapiResult<T> {
        self.check_live()?;
        let mut q = self.inner.queue.lock();
        match q.peek() {
            Some(head) => {
                accept(head)?;
                let item = q.pop().expect("peeked head exists");
                drop(q);
                self.inner.cv.notify_all();
                Ok(convert(item))
            }
            None if self.inner.peer_closed.load(Ordering::Acquire) => {
                Err(crate::McapiError(McapiStatus::ErrChanClosed))
            }
            None => Err(crate::McapiError(McapiStatus::ErrQueueEmpty)),
        }
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.inner.addr.node)
            .field("port", &self.inner.addr.port)
            .field("queued", &self.queued())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_endpoint_registration() {
        let dom = McapiDomain::new(3);
        let n = dom.initialize(5).unwrap();
        assert_eq!(
            dom.initialize(5).unwrap_err().0,
            McapiStatus::ErrNodeInitFailed
        );
        let ep = n.create_endpoint(1).unwrap();
        assert_eq!(ep.addr(), EndpointAddr { node: 5, port: 1 });
        assert_eq!(
            n.create_endpoint(1).unwrap_err().0,
            McapiStatus::ErrEndpointExists
        );
        let found = dom.get_endpoint(EndpointAddr { node: 5, port: 1 }).unwrap();
        assert_eq!(found.addr(), ep.addr());
        assert_eq!(
            dom.get_endpoint(EndpointAddr { node: 5, port: 99 })
                .unwrap_err()
                .0,
            McapiStatus::ErrEndpointInvalid
        );
    }

    #[test]
    fn finalize_deletes_node_endpoints() {
        let dom = McapiDomain::new(1);
        let n = dom.initialize(1).unwrap();
        let _ep = n.create_endpoint(1).unwrap();
        n.finalize();
        assert_eq!(
            dom.get_endpoint(EndpointAddr { node: 1, port: 1 })
                .unwrap_err()
                .0,
            McapiStatus::ErrEndpointInvalid
        );
        // The node id is reusable afterwards.
        dom.initialize(1).unwrap();
    }

    #[test]
    fn queue_priorities_order_pops() {
        let mut q = Queues::new();
        q.push(Item::Msg {
            data: vec![3],
            prio: 3,
        });
        q.push(Item::Msg {
            data: vec![1],
            prio: 1,
        });
        q.push(Item::Msg {
            data: vec![2],
            prio: 1,
        });
        assert_eq!(
            q.pop(),
            Some(Item::Msg {
                data: vec![1],
                prio: 1
            })
        );
        assert_eq!(
            q.pop(),
            Some(Item::Msg {
                data: vec![2],
                prio: 1
            }),
            "FIFO within a priority"
        );
        assert_eq!(
            q.pop(),
            Some(Item::Msg {
                data: vec![3],
                prio: 3
            })
        );
        assert_eq!(q.pop(), None);
        assert_eq!(q.len, 0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let dom = McapiDomain::new(1);
        let n = dom.initialize(1).unwrap();
        assert_eq!(
            n.create_endpoint_with_capacity(1, 0).unwrap_err().0,
            McapiStatus::ErrParameter
        );
    }

    #[test]
    fn capacity_and_peer_queries() {
        let dom = McapiDomain::new(1);
        let n = dom.initialize(1).unwrap();
        let ep = n.create_endpoint_with_capacity(1, 5).unwrap();
        assert_eq!(ep.capacity(), 5);
        assert_eq!(ep.free_slots(), 5);
        assert_eq!(ep.peer(), None, "unconnected endpoint has no peer");
        let rx = dom.initialize(2).unwrap().create_endpoint(1).unwrap();
        let _c = crate::pktchan::connect(&ep, &rx).unwrap();
        assert_eq!(ep.peer(), Some(rx.addr()));
        assert_eq!(rx.peer(), Some(ep.addr()));
    }

    #[test]
    fn delete_wakes_blocked_receiver() {
        let dom = McapiDomain::new(1);
        let n = dom.initialize(1).unwrap();
        let ep = n.create_endpoint(1).unwrap();
        let ep2 = ep.clone();
        let h = std::thread::spawn(move || {
            ep2.take_next(Some(Duration::from_secs(5)), |_| Ok(()), |i| i)
                .unwrap_err()
                .0
        });
        std::thread::sleep(Duration::from_millis(30));
        ep.delete();
        assert_eq!(h.join().unwrap(), McapiStatus::ErrEndpointInvalid);
    }
}
