//! Non-blocking operation handles (`mcapi_request_t`, `mcapi_test`,
//! `mcapi_wait`, `mcapi_cancel`).
//!
//! MCAPI's `_i` operation variants return immediately with a *request*
//! that the caller later tests or waits on.  Here the deferred operations
//! are receive-side (sends either fit the destination queue or report
//! `MCAPI_ERR_MEM_LIMIT` synchronously, as in shared-memory reference
//! implementations): a [`RecvRequest`] polls its endpoint without blocking
//! until a matching delivery arrives.

use std::time::{Duration, Instant};

use crate::registry::{Endpoint, Item};
use crate::status::{McapiResult, McapiStatus};
use crate::McapiError;

type AcceptFn = Box<dyn Fn(&Item) -> McapiResult<()> + Send>;
type ConvertFn<T> = Box<dyn Fn(Item) -> T + Send>;

/// State of a pending non-blocking receive.
enum State<T> {
    Pending,
    Done(T),
    Cancelled,
}

/// A pending non-blocking receive (`mcapi_msg_recv_i` and friends).
pub struct RecvRequest<T> {
    ep: Endpoint,
    accept: AcceptFn,
    convert: ConvertFn<T>,
    state: State<T>,
}

impl<T> std::fmt::Debug for RecvRequest<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state {
            State::Pending => "pending",
            State::Done(_) => "done",
            State::Cancelled => "cancelled",
        };
        f.debug_struct("RecvRequest")
            .field("ep", &self.ep.addr())
            .field("state", &state)
            .finish()
    }
}

impl<T> RecvRequest<T> {
    pub(crate) fn new(
        ep: Endpoint,
        accept: impl Fn(&Item) -> McapiResult<()> + Send + 'static,
        convert: impl Fn(Item) -> T + Send + 'static,
    ) -> Self {
        RecvRequest {
            ep,
            accept: Box::new(accept),
            convert: Box::new(convert),
            state: State::Pending,
        }
    }

    /// `mcapi_test`: poll once; `Ok(true)` when the result is ready,
    /// `Ok(false)` while still pending.  Type-mismatch or endpoint errors
    /// surface immediately.
    pub fn test(&mut self) -> McapiResult<bool> {
        match &self.state {
            State::Done(_) => return Ok(true),
            State::Cancelled => return Err(McapiError(McapiStatus::ErrParameter)),
            State::Pending => {}
        }
        match self.ep.try_take(&*self.accept, &*self.convert) {
            Ok(v) => {
                self.state = State::Done(v);
                Ok(true)
            }
            Err(McapiError(McapiStatus::ErrQueueEmpty)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// `mcapi_wait`: poll until ready or `timeout` expires; consumes the
    /// request and yields the received value.
    pub fn wait(mut self, timeout: Duration) -> McapiResult<T> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.test()? {
                match std::mem::replace(&mut self.state, State::Cancelled) {
                    State::Done(v) => return Ok(v),
                    _ => unreachable!("test() reported ready"),
                }
            }
            if Instant::now() >= deadline {
                return Err(McapiError(McapiStatus::Timeout));
            }
            std::thread::yield_now();
        }
    }

    /// `mcapi_cancel`: abandon the operation.  A value already captured by
    /// a successful [`RecvRequest::test`] is dropped (the delivery is
    /// consumed, matching the spec's "cancel after completion has no
    /// effect on the data").
    pub fn cancel(mut self) {
        self.state = State::Cancelled;
    }
}

impl Endpoint {
    /// `mcapi_msg_recv_i`: non-blocking message receive returning a
    /// request handle.
    pub fn msg_recv_i(&self) -> McapiResult<RecvRequest<(Vec<u8>, u8)>> {
        crate::status::ensure(!self.is_connected(), McapiStatus::ErrChanConnected)?;
        Ok(RecvRequest::new(
            self.clone(),
            |item| match item {
                Item::Msg { .. } => Ok(()),
                _ => Err(McapiError(McapiStatus::ErrChanType)),
            },
            |item| match item {
                Item::Msg { data, prio } => (data, prio),
                _ => unreachable!("filtered by accept"),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McapiDomain;

    fn pair() -> (Endpoint, Endpoint) {
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        (a, b)
    }

    #[test]
    fn test_polls_until_delivery() {
        let (a, b) = pair();
        let mut req = b.msg_recv_i().unwrap();
        assert!(!req.test().unwrap(), "nothing queued yet");
        a.msg_send(b.addr(), b"late", 2).unwrap();
        assert!(req.test().unwrap());
        let (data, prio) = req.wait(Duration::from_secs(1)).unwrap();
        assert_eq!(data, b"late");
        assert_eq!(prio, 2);
    }

    #[test]
    fn wait_blocks_across_threads() {
        let (a, b) = pair();
        let req = b.msg_recv_i().unwrap();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            a.msg_send_timeout(
                crate::EndpointAddr { node: 1, port: 1 },
                b"ping",
                0,
                Some(Duration::from_secs(1)),
            )
            .unwrap();
        });
        let (data, _) = req.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(data, b"ping");
        sender.join().unwrap();
    }

    #[test]
    fn wait_times_out() {
        let (_a, b) = pair();
        let req = b.msg_recv_i().unwrap();
        assert_eq!(
            req.wait(Duration::from_millis(10)).unwrap_err().0,
            McapiStatus::Timeout
        );
    }

    #[test]
    fn cancel_consumes_nothing_pending() {
        let (a, b) = pair();
        let req = b.msg_recv_i().unwrap();
        req.cancel();
        // A later message is still receivable by a fresh request.
        a.msg_send(b.addr(), b"x", 0).unwrap();
        let mut r2 = b.msg_recv_i().unwrap();
        assert!(r2.test().unwrap());
    }

    #[test]
    fn connected_endpoint_rejects_request() {
        let dom = McapiDomain::new(1);
        let tx = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        let _c = crate::pktchan::connect(&tx, &rx).unwrap();
        assert_eq!(
            rx.msg_recv_i().unwrap_err().0,
            McapiStatus::ErrChanConnected
        );
    }
}
