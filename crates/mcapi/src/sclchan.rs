//! Connected scalar channels (`mcapi_sclchan_*`).
//!
//! The cheapest MCAPI transport: a FIFO of bare 8/16/32/64-bit words, used
//! for doorbells, sequence numbers and tiny control words between cores.
//! The receive size must match the send size — a mismatch is
//! `MCAPI_ERR_SCL_SIZE` and leaves the word queued (the spec makes the
//! pairing a protocol contract).

use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::registry::{ChanKind, ChanRole, ChanState, Endpoint, Item};
use crate::status::{ensure, McapiResult, McapiStatus};

impl std::fmt::Debug for SclTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SclTx")
            .field("ep", &self.ep.addr())
            .finish()
    }
}

/// Sending half of a scalar channel.
pub struct SclTx {
    ep: Endpoint,
    peer: Endpoint,
}

impl std::fmt::Debug for SclRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SclRx")
            .field("ep", &self.ep.addr())
            .finish()
    }
}

/// Receiving half of a scalar channel.
pub struct SclRx {
    ep: Endpoint,
    peer: Endpoint,
}

/// Bind `tx → rx` as a scalar channel (see
/// [`crate::pktchan::connect`] for the shared preconditions).
pub fn connect(tx: &Endpoint, rx: &Endpoint) -> McapiResult<(SclTx, SclRx)> {
    tx.check_live()?;
    rx.check_live()?;
    ensure(
        tx.queued() == 0 && rx.queued() == 0,
        McapiStatus::ErrChanInvalid,
    )?;
    let mut tc = tx.inner.chan.lock();
    let mut rc = rx.inner.chan.lock();
    ensure(tc.is_none() && rc.is_none(), McapiStatus::ErrChanConnected)?;
    *tc = Some(ChanState {
        kind: ChanKind::Scalar,
        role: ChanRole::Sender,
        peer: rx.addr(),
    });
    *rc = Some(ChanState {
        kind: ChanKind::Scalar,
        role: ChanRole::Receiver,
        peer: tx.addr(),
    });
    drop(tc);
    drop(rc);
    Ok((
        SclTx {
            ep: tx.clone(),
            peer: rx.clone(),
        },
        SclRx {
            ep: rx.clone(),
            peer: tx.clone(),
        },
    ))
}

impl SclTx {
    fn check_open(&self) -> McapiResult<()> {
        self.ep.check_live()?;
        ensure(
            !self.ep.inner.peer_closed.load(Ordering::Acquire),
            McapiStatus::ErrChanClosed,
        )?;
        let c = self.ep.inner.chan.lock();
        match *c {
            Some(ChanState {
                kind: ChanKind::Scalar,
                role: ChanRole::Sender,
                ..
            }) => Ok(()),
            _ => Err(crate::McapiError(McapiStatus::ErrChanInvalid)),
        }
    }

    fn send_bits(&self, bits: u64, size: u8) -> McapiResult<()> {
        self.check_open()?;
        Endpoint::deliver(&self.peer.inner, Item::Scalar { bits, size }, None)
    }

    /// `mcapi_sclchan_send_uint8`.
    pub fn send_u8(&self, v: u8) -> McapiResult<()> {
        self.send_bits(v as u64, 1)
    }

    /// `mcapi_sclchan_send_uint16`.
    pub fn send_u16(&self, v: u16) -> McapiResult<()> {
        self.send_bits(v as u64, 2)
    }

    /// `mcapi_sclchan_send_uint32`.
    pub fn send_u32(&self, v: u32) -> McapiResult<()> {
        self.send_bits(v as u64, 4)
    }

    /// `mcapi_sclchan_send_uint64`.
    pub fn send_u64(&self, v: u64) -> McapiResult<()> {
        self.send_bits(v, 8)
    }

    /// Close the sending half.
    pub fn close(self) {
        *self.ep.inner.chan.lock() = None;
        self.peer.inner.peer_closed.store(true, Ordering::Release);
        self.peer.inner.cv.notify_all();
    }
}

impl SclRx {
    fn check_open(&self) -> McapiResult<()> {
        self.ep.check_live()?;
        let c = self.ep.inner.chan.lock();
        match *c {
            Some(ChanState {
                kind: ChanKind::Scalar,
                role: ChanRole::Receiver,
                ..
            }) => Ok(()),
            _ => Err(crate::McapiError(McapiStatus::ErrChanInvalid)),
        }
    }

    fn recv_bits(&self, size: u8, timeout: Option<Duration>) -> McapiResult<u64> {
        self.check_open()?;
        self.ep.take_next(
            timeout,
            |item| match item {
                Item::Scalar { size: s, .. } if *s == size => Ok(()),
                Item::Scalar { .. } => Err(crate::McapiError(McapiStatus::ErrScalarSize)),
                _ => Err(crate::McapiError(McapiStatus::ErrChanType)),
            },
            |item| match item {
                Item::Scalar { bits, .. } => bits,
                _ => unreachable!("filtered"),
            },
        )
    }

    /// `mcapi_sclchan_recv_uint8` (blocking; `timeout` bounds the wait).
    pub fn recv_u8(&self, timeout: Option<Duration>) -> McapiResult<u8> {
        Ok(self.recv_bits(1, timeout)? as u8)
    }

    /// `mcapi_sclchan_recv_uint16`.
    pub fn recv_u16(&self, timeout: Option<Duration>) -> McapiResult<u16> {
        Ok(self.recv_bits(2, timeout)? as u16)
    }

    /// `mcapi_sclchan_recv_uint32`.
    pub fn recv_u32(&self, timeout: Option<Duration>) -> McapiResult<u32> {
        Ok(self.recv_bits(4, timeout)? as u32)
    }

    /// `mcapi_sclchan_recv_uint64`.
    pub fn recv_u64(&self, timeout: Option<Duration>) -> McapiResult<u64> {
        self.recv_bits(8, timeout)
    }

    /// Scalars waiting (`mcapi_sclchan_available`).
    pub fn available(&self) -> usize {
        self.ep.queued()
    }

    /// Close the receiving half.
    pub fn close(self) {
        *self.ep.inner.chan.lock() = None;
        self.peer.inner.peer_closed.store(true, Ordering::Release);
        self.ep.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McapiDomain;

    fn channel() -> (SclTx, SclRx) {
        let dom = McapiDomain::new(1);
        let tx = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        connect(&tx, &rx).unwrap()
    }

    #[test]
    fn all_widths_roundtrip() {
        let (tx, rx) = channel();
        tx.send_u8(0xAB).unwrap();
        tx.send_u16(0xBEEF).unwrap();
        tx.send_u32(0xDEAD_BEEF).unwrap();
        tx.send_u64(u64::MAX - 1).unwrap();
        let t = Some(Duration::from_secs(1));
        assert_eq!(rx.recv_u8(t).unwrap(), 0xAB);
        assert_eq!(rx.recv_u16(t).unwrap(), 0xBEEF);
        assert_eq!(rx.recv_u32(t).unwrap(), 0xDEAD_BEEF);
        assert_eq!(rx.recv_u64(t).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn size_mismatch_reports_and_preserves() {
        let (tx, rx) = channel();
        tx.send_u32(7).unwrap();
        assert_eq!(
            rx.recv_u8(Some(Duration::from_millis(10))).unwrap_err().0,
            McapiStatus::ErrScalarSize
        );
        // The word is still there for a correctly sized receive.
        assert_eq!(rx.recv_u32(Some(Duration::from_secs(1))).unwrap(), 7);
    }

    #[test]
    fn doorbell_pattern_across_threads() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || {
            let mut acc = 0u64;
            for _ in 0..100 {
                acc += rx.recv_u64(Some(Duration::from_secs(5))).unwrap();
            }
            acc
        });
        for i in 0..100u64 {
            tx.send_u64(i).unwrap();
        }
        assert_eq!(h.join().unwrap(), 4950);
    }

    #[test]
    fn scalar_and_packet_channels_do_not_mix() {
        let dom = McapiDomain::new(1);
        let tx = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let rx = dom.initialize(1).unwrap().create_endpoint(1).unwrap();
        let (_stx, _srx) = connect(&tx, &rx).unwrap();
        // A packet connect on the same endpoints must fail.
        assert_eq!(
            crate::pktchan::connect(&tx, &rx).unwrap_err().0,
            McapiStatus::ErrChanConnected
        );
    }

    #[test]
    fn close_propagates() {
        let (tx, rx) = channel();
        tx.send_u8(1).unwrap();
        tx.close();
        assert_eq!(rx.recv_u8(None).unwrap(), 1);
        assert_eq!(rx.recv_u8(None).unwrap_err().0, McapiStatus::ErrChanClosed);
    }
}
