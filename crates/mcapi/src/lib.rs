//! # mca-mcapi — the Multicore Communications API
//!
//! MCAPI is the MCA's message-passing standard for *closely distributed*
//! embedded systems (paper §2B): lightweight communication and
//! synchronization between cores, partitions, or host-and-accelerator, with
//! three communication modes:
//!
//! 1. **Connectionless messages** ([`msg`]) — datagrams between endpoints,
//!    with per-message priorities;
//! 2. **Packet channels** ([`pktchan`]) — connected, unidirectional FIFO
//!    streams of variable-size packets;
//! 3. **Scalar channels** ([`sclchan`]) — connected FIFO streams of 8/16/32/
//!    64-bit scalars, the cheapest path for doorbells and small control
//!    words.
//!
//! The paper limits its implementation work to MRAPI but describes MCAPI and
//! plans it for the hypervisor/heterogeneous future work (§4A, §7); this
//! crate implements it so those experiments are runnable (the
//! `heterogeneous_offload` example and the MCAPI ablation bench).
//!
//! Addressing follows the spec: an endpoint is `(domain, node, port)`;
//! endpoints are created by their owning node and looked up by address.
//! Everything lives in a [`McapiDomain`] registry (one per simulated
//! interconnect).
//!
//! ```
//! use mca_mcapi::{McapiDomain, EndpointAddr};
//!
//! let dom = McapiDomain::new(1);
//! let host = dom.initialize(0).unwrap();
//! let dsp = dom.initialize(1).unwrap();
//!
//! let tx = host.create_endpoint(10).unwrap();
//! let rx = dsp.create_endpoint(20).unwrap();
//!
//! tx.msg_send(EndpointAddr { node: 1, port: 20 }, b"halt", 0).unwrap();
//! let (data, _prio) = rx.msg_recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(&data[..], b"halt");
//! ```

#![warn(missing_docs)]

pub mod msg;
pub mod pktchan;
pub mod request;
pub mod sclchan;
pub mod status;
pub mod wire;

mod registry;

pub use registry::{Endpoint, EndpointAddr, McapiDomain, McapiNode};
pub use request::RecvRequest;
pub use status::{McapiError, McapiStatus};
pub use wire::{WireChan, WireListener};

/// Default bound on an endpoint's receive queue (messages), per the spec's
/// `MCAPI_MAX_QUEUE_ELEMENTS` attribute.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Lowest-urgency message priority (0 is most urgent, like the reference
/// implementation).
pub const MCAPI_MAX_PRIORITY: u8 = 7;
