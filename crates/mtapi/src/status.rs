//! MTAPI status vocabulary.

/// Status codes this implementation can emit (`mtapi_status_t` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MtapiStatus {
    /// Operation completed (`MTAPI_SUCCESS`).
    Success,
    /// Node already initialized (`MTAPI_ERR_NODE_INITIALIZED`).
    ErrNodeInitialized,
    /// No action registered for the job (`MTAPI_ERR_JOB_INVALID`).
    ErrJobInvalid,
    /// Job already has an action (`MTAPI_ERR_ACTION_EXISTS`).
    ErrActionExists,
    /// The action panicked while executing (`MTAPI_ERR_ACTION_FAILED`).
    ErrActionFailed,
    /// Timed wait expired (`MTAPI_TIMEOUT`).
    Timeout,
    /// Task was cancelled before running (`MTAPI_ERR_TASK_CANCELLED`).
    ErrTaskCancelled,
    /// Invalid parameter (`MTAPI_ERR_PARAMETER`).
    ErrParameter,
    /// Queue was deleted (`MTAPI_ERR_QUEUE_INVALID`).
    ErrQueueInvalid,
    /// Runtime is shutting down (`MTAPI_ERR_NODE_NOTINIT`).
    ErrShutdown,
}

impl MtapiStatus {
    /// Spec-style identifier.
    pub fn spec_name(self) -> &'static str {
        match self {
            MtapiStatus::Success => "MTAPI_SUCCESS",
            MtapiStatus::ErrNodeInitialized => "MTAPI_ERR_NODE_INITIALIZED",
            MtapiStatus::ErrJobInvalid => "MTAPI_ERR_JOB_INVALID",
            MtapiStatus::ErrActionExists => "MTAPI_ERR_ACTION_EXISTS",
            MtapiStatus::ErrActionFailed => "MTAPI_ERR_ACTION_FAILED",
            MtapiStatus::Timeout => "MTAPI_TIMEOUT",
            MtapiStatus::ErrTaskCancelled => "MTAPI_ERR_TASK_CANCELLED",
            MtapiStatus::ErrParameter => "MTAPI_ERR_PARAMETER",
            MtapiStatus::ErrQueueInvalid => "MTAPI_ERR_QUEUE_INVALID",
            MtapiStatus::ErrShutdown => "MTAPI_ERR_NODE_NOTINIT",
        }
    }
}

/// Error wrapper for non-success statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtapiError(pub MtapiStatus);

impl std::fmt::Display for MtapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.spec_name())
    }
}

impl std::error::Error for MtapiError {}

/// Crate-wide result alias.
pub type MtapiResult<T> = Result<T, MtapiError>;

pub(crate) fn ensure(cond: bool, status: MtapiStatus) -> MtapiResult<()> {
    if cond {
        Ok(())
    } else {
        Err(MtapiError(status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(MtapiStatus::Success.spec_name(), "MTAPI_SUCCESS");
        assert_eq!(
            MtapiError(MtapiStatus::Timeout).to_string(),
            "MTAPI_TIMEOUT"
        );
    }
}
