//! # mca-mtapi — the Multicore Task Management API
//!
//! MTAPI is the MCA's task-management standard: "complete support of task
//! life-cycle, with optimization of task synchronization, scheduling, and
//! load balancing" (paper §2B).  The paper names MTAPI as future work
//! (§7) — this crate implements it so the task-level experiments are
//! runnable, mirroring the shape of Siemens' open-source EMB² MTAPI
//! implementation the paper cites:
//!
//! * **Jobs** — abstract units of work identified by a job id;
//! * **Actions** — concrete implementations attached to a job (a function
//!   from input bytes to output bytes here; hardware actions on real
//!   systems);
//! * **Tasks** — one execution of a job: started, optionally grouped,
//!   waited on ([`Task::wait`]), cancellable before it runs;
//! * **Groups** — fork/join sets with `wait_all`;
//! * **Queues** — strictly ordered task streams to one job (at most one
//!   task from a queue in flight at a time);
//! * a **work-stealing scheduler** over a fixed worker pool with
//!   per-priority injectors (0 = most urgent).
//!
//! ```
//! use mca_mtapi::Mtapi;
//!
//! let mt = Mtapi::initialize(1, 0, 2).unwrap();
//! mt.create_action(7, |input| {
//!     let x = u64::from_le_bytes(input.try_into().unwrap());
//!     (x * x).to_le_bytes().to_vec()
//! }).unwrap();
//!
//! let job = mt.job(7).unwrap();
//! let task = job.start(9u64.to_le_bytes().to_vec()).unwrap();
//! let out = task.wait(None).unwrap();
//! assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 81);
//! ```

#![warn(missing_docs)]

pub mod runtime;
pub mod status;

pub use runtime::{Group, Job, Mtapi, Queue, Task, TaskState};
pub use status::{MtapiError, MtapiStatus};

/// Number of task priority levels (0 = most urgent).
pub const MTAPI_PRIORITIES: usize = 4;
