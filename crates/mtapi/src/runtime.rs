//! The MTAPI runtime: jobs, actions, tasks, groups, queues, scheduler.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mca_sync::deque::{Injector, Steal};
use mca_sync::{Condvar, Mutex as PlMutex, RwLock};

use crate::status::{ensure, MtapiResult, MtapiStatus};
use crate::{MtapiError, MTAPI_PRIORITIES};

type ActionFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Where a task is in its life-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Queued, not yet claimed by a worker.
    Pending,
    /// A worker is executing the action.
    Running,
    /// Completed; the result is available.
    Done,
    /// Cancelled before it ran.
    Cancelled,
    /// The action panicked.
    Failed,
}

struct TaskInner {
    state: PlMutex<(TaskState, Option<Vec<u8>>)>,
    cv: Condvar,
    action: ActionFn,
    input: PlMutex<Option<Vec<u8>>>,
    group: Option<Arc<GroupInner>>,
    queue: Option<Arc<QueueInner>>,
    priority: u8,
}

impl TaskInner {
    fn finish(&self, state: TaskState, result: Option<Vec<u8>>) {
        {
            let mut st = self.state.lock();
            *st = (state, result);
        }
        self.cv.notify_all();
        if let Some(g) = &self.group {
            g.task_done();
        }
    }
}

/// A handle to one started task (`mtapi_task_hndl_t`).
#[derive(Clone)]
pub struct Task {
    inner: Arc<TaskInner>,
    rt: Arc<RtInner>,
}

impl Task {
    /// Current life-cycle state.
    pub fn state(&self) -> TaskState {
        self.inner.state.lock().0
    }

    /// `mtapi_task_wait` — block until the task finishes (bounded by
    /// `timeout`; `None` = forever) and return the action's output.
    ///
    /// While waiting, the caller lends itself to the scheduler (helping
    /// execute queued tasks), so waiting inside an action cannot deadlock
    /// the pool.
    pub fn wait(&self, timeout: Option<Duration>) -> MtapiResult<Vec<u8>> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            {
                let mut st = self.inner.state.lock();
                match st.0 {
                    TaskState::Done => return Ok(st.1.take().unwrap_or_default()),
                    TaskState::Cancelled => return Err(MtapiError(MtapiStatus::ErrTaskCancelled)),
                    TaskState::Failed => return Err(MtapiError(MtapiStatus::ErrActionFailed)),
                    TaskState::Pending | TaskState::Running => {
                        // Help the pool before sleeping.
                        drop(st);
                        if self.rt.run_one_task() {
                            continue;
                        }
                        st = self.inner.state.lock();
                        if matches!(st.0, TaskState::Pending | TaskState::Running) {
                            match deadline {
                                None => {
                                    self.inner.cv.wait_for(&mut st, Duration::from_millis(1));
                                }
                                Some(d) => {
                                    if self.inner.cv.wait_until(&mut st, d).timed_out()
                                        && matches!(st.0, TaskState::Pending | TaskState::Running)
                                    {
                                        return Err(MtapiError(MtapiStatus::Timeout));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// `mtapi_task_cancel` — best-effort: succeeds only while the task is
    /// still pending.
    pub fn cancel(&self) -> MtapiResult<()> {
        let mut st = self.inner.state.lock();
        ensure(st.0 == TaskState::Pending, MtapiStatus::ErrParameter)?;
        *st = (TaskState::Cancelled, None);
        drop(st);
        self.inner.cv.notify_all();
        if let Some(g) = &self.inner.group {
            g.task_done();
        }
        if let Some(q) = &self.inner.queue {
            q.advance(&self.rt);
        }
        Ok(())
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("state", &self.state())
            .finish()
    }
}

struct GroupInner {
    outstanding: AtomicUsize,
    lock: PlMutex<()>,
    cv: Condvar,
}

impl GroupInner {
    fn task_done(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }
}

/// A fork/join task group (`mtapi_group_hndl_t`).
#[derive(Clone)]
pub struct Group {
    inner: Arc<GroupInner>,
    rt: Arc<RtInner>,
}

impl Group {
    /// Tasks started in this group and not yet finished.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Acquire)
    }

    /// `mtapi_group_wait_all` — block until every task in the group has
    /// finished (helping the scheduler meanwhile).
    pub fn wait_all(&self, timeout: Option<Duration>) -> MtapiResult<()> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        while self.inner.outstanding.load(Ordering::Acquire) > 0 {
            if self.rt.run_one_task() {
                continue;
            }
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    return Err(MtapiError(MtapiStatus::Timeout));
                }
            }
            let mut g = self.inner.lock.lock();
            if self.inner.outstanding.load(Ordering::Acquire) == 0 {
                break;
            }
            self.inner.cv.wait_for(&mut g, Duration::from_millis(1));
        }
        Ok(())
    }
}

impl std::fmt::Debug for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Group")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

struct QueueInner {
    job: u32,
    pending: PlMutex<VecDeque<Arc<TaskInner>>>,
    in_flight: AtomicBool,
    deleted: AtomicBool,
}

impl QueueInner {
    /// Called when a queue task finishes: dispatch the next, if any.
    fn advance(&self, rt: &Arc<RtInner>) {
        let next = {
            let mut p = self.pending.lock();
            match p.pop_front() {
                Some(t) => Some(t),
                None => {
                    self.in_flight.store(false, Ordering::Release);
                    None
                }
            }
        };
        if let Some(t) = next {
            rt.inject(t);
        }
    }
}

/// A strictly ordered task queue to one job (`mtapi_queue_hndl_t`).
#[derive(Clone)]
pub struct Queue {
    inner: Arc<QueueInner>,
    rt: Arc<RtInner>,
}

impl Queue {
    /// `mtapi_task_enqueue` — run the job on `input`, after every earlier
    /// task from this queue has finished.
    pub fn enqueue(&self, input: Vec<u8>) -> MtapiResult<Task> {
        ensure(
            !self.inner.deleted.load(Ordering::Acquire),
            MtapiStatus::ErrQueueInvalid,
        )?;
        let action = self.rt.action_for(self.inner.job)?;
        let task = Arc::new(TaskInner {
            state: PlMutex::new((TaskState::Pending, None)),
            cv: Condvar::new(),
            action,
            input: PlMutex::new(Some(input)),
            group: None,
            queue: Some(Arc::clone(&self.inner)),
            priority: 0,
        });
        let dispatch_now = !self.inner.in_flight.swap(true, Ordering::AcqRel);
        if dispatch_now {
            self.rt.inject(Arc::clone(&task));
        } else {
            self.inner.pending.lock().push_back(Arc::clone(&task));
            // Re-check: the in-flight task may have finished while we
            // queued, leaving nobody to advance us.
            if !self.inner.in_flight.swap(true, Ordering::AcqRel) {
                self.inner.advance(&self.rt);
            }
        }
        Ok(Task {
            inner: task,
            rt: Arc::clone(&self.rt),
        })
    }

    /// `mtapi_queue_delete` — later enqueues fail; queued tasks still run.
    pub fn delete(self) {
        self.inner.deleted.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue")
            .field("job", &self.inner.job)
            .finish()
    }
}

/// A job handle (`mtapi_job_hndl_t`): the door for starting tasks.
#[derive(Clone)]
pub struct Job {
    id: u32,
    rt: Arc<RtInner>,
}

impl Job {
    /// `mtapi_task_start` at default priority.
    pub fn start(&self, input: Vec<u8>) -> MtapiResult<Task> {
        self.start_prio(input, 1, None)
    }

    /// Start in a group (for `wait_all`).
    pub fn start_in_group(&self, group: &Group, input: Vec<u8>) -> MtapiResult<Task> {
        self.start_prio(input, 1, Some(group))
    }

    /// Start with an explicit priority (0 = most urgent).
    pub fn start_prio(
        &self,
        input: Vec<u8>,
        priority: u8,
        group: Option<&Group>,
    ) -> MtapiResult<Task> {
        ensure(
            (priority as usize) < MTAPI_PRIORITIES,
            MtapiStatus::ErrParameter,
        )?;
        let action = self.rt.action_for(self.id)?;
        if let Some(g) = group {
            g.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        }
        let task = Arc::new(TaskInner {
            state: PlMutex::new((TaskState::Pending, None)),
            cv: Condvar::new(),
            action,
            input: PlMutex::new(Some(input)),
            group: group.map(|g| Arc::clone(&g.inner)),
            queue: None,
            priority,
        });
        self.rt.inject(Arc::clone(&task));
        Ok(Task {
            inner: task,
            rt: Arc::clone(&self.rt),
        })
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish()
    }
}

struct RtInner {
    #[allow(dead_code)]
    domain: u32,
    #[allow(dead_code)]
    node: u32,
    actions: RwLock<HashMap<u32, ActionFn>>,
    injectors: Vec<Injector<Arc<TaskInner>>>,
    idle_lock: PlMutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    executed: AtomicUsize,
}

impl RtInner {
    fn action_for(&self, job: u32) -> MtapiResult<ActionFn> {
        ensure(
            !self.shutdown.load(Ordering::Acquire),
            MtapiStatus::ErrShutdown,
        )?;
        self.actions
            .read()
            .get(&job)
            .cloned()
            .ok_or(MtapiError(MtapiStatus::ErrJobInvalid))
    }

    fn inject(&self, task: Arc<TaskInner>) {
        self.injectors[task.priority as usize].push(task);
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    fn next_task(&self) -> Option<Arc<TaskInner>> {
        for inj in &self.injectors {
            loop {
                match inj.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Claim and execute one queued task; `false` if none was available.
    fn run_one_task(self: &Arc<Self>) -> bool {
        let Some(task) = self.next_task() else {
            return false;
        };
        // Claim: pending → running (a cancelled task is skipped).
        {
            let mut st = task.state.lock();
            if st.0 != TaskState::Pending {
                return true;
            }
            st.0 = TaskState::Running;
        }
        let input = task.input.lock().take().unwrap_or_default();
        let action = Arc::clone(&task.action);
        let result = catch_unwind(AssertUnwindSafe(|| action(&input)));
        match result {
            Ok(out) => task.finish(TaskState::Done, Some(out)),
            Err(_) => task.finish(TaskState::Failed, None),
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(q) = &task.queue {
            q.advance(self);
        }
        true
    }

    fn worker_loop(self: Arc<Self>) {
        while !self.shutdown.load(Ordering::Acquire) {
            if self.run_one_task() {
                continue;
            }
            let mut g = self.idle_lock.lock();
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            self.idle_cv.wait_for(&mut g, Duration::from_millis(2));
        }
    }
}

/// The MTAPI node runtime: owns the worker pool and the job/action table.
pub struct Mtapi {
    inner: Arc<RtInner>,
    workers: PlMutex<Vec<thread::JoinHandle<()>>>,
}

impl Mtapi {
    /// `mtapi_initialize` — start a runtime with `workers` pool threads.
    pub fn initialize(domain: u32, node: u32, workers: usize) -> MtapiResult<Self> {
        ensure(workers > 0, MtapiStatus::ErrParameter)?;
        let inner = Arc::new(RtInner {
            domain,
            node,
            actions: RwLock::new(HashMap::new()),
            injectors: (0..MTAPI_PRIORITIES).map(|_| Injector::new()).collect(),
            idle_lock: PlMutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let rt = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("mtapi-worker-{i}"))
                    .spawn(move || rt.worker_loop())
                    .expect("worker spawn")
            })
            .collect();
        Ok(Mtapi {
            inner,
            workers: PlMutex::new(handles),
        })
    }

    /// `mtapi_action_create` — attach an implementation to `job_id`.
    pub fn create_action(
        &self,
        job_id: u32,
        f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> MtapiResult<()> {
        let mut actions = self.inner.actions.write();
        ensure(!actions.contains_key(&job_id), MtapiStatus::ErrActionExists)?;
        actions.insert(job_id, Arc::new(f));
        Ok(())
    }

    /// `mtapi_job_get` — handle for starting tasks on `job_id`.
    pub fn job(&self, job_id: u32) -> MtapiResult<Job> {
        ensure(
            self.inner.actions.read().contains_key(&job_id),
            MtapiStatus::ErrJobInvalid,
        )?;
        Ok(Job {
            id: job_id,
            rt: Arc::clone(&self.inner),
        })
    }

    /// `mtapi_group_create`.
    pub fn create_group(&self) -> Group {
        Group {
            inner: Arc::new(GroupInner {
                outstanding: AtomicUsize::new(0),
                lock: PlMutex::new(()),
                cv: Condvar::new(),
            }),
            rt: Arc::clone(&self.inner),
        }
    }

    /// `mtapi_queue_create` — an ordered queue feeding `job_id`.
    pub fn create_queue(&self, job_id: u32) -> MtapiResult<Queue> {
        ensure(
            self.inner.actions.read().contains_key(&job_id),
            MtapiStatus::ErrJobInvalid,
        )?;
        Ok(Queue {
            inner: Arc::new(QueueInner {
                job: job_id,
                pending: PlMutex::new(VecDeque::new()),
                in_flight: AtomicBool::new(false),
                deleted: AtomicBool::new(false),
            }),
            rt: Arc::clone(&self.inner),
        })
    }

    /// Total tasks executed (diagnostics).
    pub fn tasks_executed(&self) -> usize {
        self.inner.executed.load(Ordering::Relaxed)
    }
}

impl Drop for Mtapi {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.idle_lock.lock();
            self.inner.idle_cv.notify_all();
        }
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Mtapi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mtapi")
            .field("actions", &self.inner.actions.read().len())
            .field("executed", &self.tasks_executed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_runtime(workers: usize) -> Mtapi {
        let mt = Mtapi::initialize(1, 0, workers).unwrap();
        mt.create_action(1, |input| {
            let x = u64::from_le_bytes(input.try_into().unwrap());
            (x * x).to_le_bytes().to_vec()
        })
        .unwrap();
        mt
    }

    fn as_u64(v: Vec<u8>) -> u64 {
        u64::from_le_bytes(v.try_into().unwrap())
    }

    #[test]
    fn task_lifecycle_to_done() {
        let mt = square_runtime(2);
        let t = mt
            .job(1)
            .unwrap()
            .start(5u64.to_le_bytes().to_vec())
            .unwrap();
        assert_eq!(as_u64(t.wait(None).unwrap()), 25);
        assert_eq!(t.state(), TaskState::Done);
    }

    #[test]
    fn unknown_job_and_duplicate_action() {
        let mt = square_runtime(1);
        assert_eq!(mt.job(99).unwrap_err().0, MtapiStatus::ErrJobInvalid);
        assert_eq!(
            mt.create_action(1, |_| vec![]).unwrap_err().0,
            MtapiStatus::ErrActionExists
        );
    }

    #[test]
    fn many_tasks_all_complete() {
        let mt = square_runtime(4);
        let job = mt.job(1).unwrap();
        let tasks: Vec<Task> = (0..200u64)
            .map(|i| job.start(i.to_le_bytes().to_vec()).unwrap())
            .collect();
        for (i, t) in tasks.into_iter().enumerate() {
            assert_eq!(as_u64(t.wait(None).unwrap()), (i * i) as u64);
        }
        assert_eq!(mt.tasks_executed(), 200);
    }

    #[test]
    fn group_wait_all_joins_everything() {
        let mt = square_runtime(3);
        let job = mt.job(1).unwrap();
        let g = mt.create_group();
        for i in 0..50u64 {
            job.start_in_group(&g, i.to_le_bytes().to_vec()).unwrap();
        }
        g.wait_all(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(g.outstanding(), 0);
        assert_eq!(mt.tasks_executed(), 50);
    }

    #[test]
    fn queue_preserves_order() {
        let mt = Mtapi::initialize(1, 0, 4).unwrap();
        let log = Arc::new(PlMutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        mt.create_action(2, move |input| {
            let x = u64::from_le_bytes(input.try_into().unwrap());
            l2.lock().push(x);
            vec![]
        })
        .unwrap();
        let q = mt.create_queue(2).unwrap();
        let tasks: Vec<Task> = (0..100u64)
            .map(|i| q.enqueue(i.to_le_bytes().to_vec()).unwrap())
            .collect();
        for t in tasks {
            t.wait(Some(Duration::from_secs(10))).unwrap();
        }
        assert_eq!(
            *log.lock(),
            (0..100).collect::<Vec<u64>>(),
            "strict queue order"
        );
    }

    #[test]
    fn queues_do_not_serialize_each_other() {
        let mt = Mtapi::initialize(1, 0, 2).unwrap();
        mt.create_action(3, |i| i.to_vec()).unwrap();
        let qa = mt.create_queue(3).unwrap();
        let qb = mt.create_queue(3).unwrap();
        let ta: Vec<Task> = (0..20).map(|i| qa.enqueue(vec![i]).unwrap()).collect();
        let tb: Vec<Task> = (0..20).map(|i| qb.enqueue(vec![i]).unwrap()).collect();
        for t in ta.into_iter().chain(tb) {
            t.wait(Some(Duration::from_secs(10))).unwrap();
        }
        assert_eq!(mt.tasks_executed(), 40);
    }

    #[test]
    fn cancel_pending_task() {
        // Single worker busy with a long task: the second is cancellable.
        let mt = Mtapi::initialize(1, 0, 1).unwrap();
        mt.create_action(4, |input| {
            if input == b"slow" {
                thread::sleep(Duration::from_millis(150));
            }
            vec![1]
        })
        .unwrap();
        let job = mt.job(4).unwrap();
        let slow = job.start(b"slow".to_vec()).unwrap();
        thread::sleep(Duration::from_millis(20)); // let the worker claim it
        let victim = job.start(b"fast".to_vec()).unwrap();
        victim.cancel().unwrap();
        assert_eq!(
            victim.wait(None).unwrap_err().0,
            MtapiStatus::ErrTaskCancelled
        );
        slow.wait(None).unwrap();
        assert_eq!(
            victim.cancel().unwrap_err().0,
            MtapiStatus::ErrParameter,
            "already cancelled"
        );
    }

    #[test]
    fn panicking_action_reports_failure() {
        let mt = Mtapi::initialize(1, 0, 2).unwrap();
        mt.create_action(5, |_| panic!("bad action")).unwrap();
        let t = mt.job(5).unwrap().start(vec![]).unwrap();
        assert_eq!(t.wait(None).unwrap_err().0, MtapiStatus::ErrActionFailed);
        // The pool survives.
        mt.create_action(6, |_| vec![9]).unwrap();
        assert_eq!(
            mt.job(6)
                .unwrap()
                .start(vec![])
                .unwrap()
                .wait(None)
                .unwrap(),
            vec![9]
        );
    }

    #[test]
    fn priorities_prefer_urgent_tasks() {
        // One worker, saturated; then enqueue low and urgent: urgent runs
        // first once the worker frees up.
        let mt = Mtapi::initialize(1, 0, 1).unwrap();
        let log = Arc::new(PlMutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        mt.create_action(7, move |input| {
            if input == b"block" {
                thread::sleep(Duration::from_millis(100));
            } else {
                l2.lock().push(input[0]);
            }
            vec![]
        })
        .unwrap();
        let job = mt.job(7).unwrap();
        let blocker = job.start(b"block".to_vec()).unwrap();
        thread::sleep(Duration::from_millis(20));
        let low = job.start_prio(vec![2], 3, None).unwrap();
        let urgent = job.start_prio(vec![1], 0, None).unwrap();
        blocker.wait(None).unwrap();
        low.wait(None).unwrap();
        urgent.wait(None).unwrap();
        assert_eq!(*log.lock(), vec![1, 2], "priority 0 before priority 3");
    }

    #[test]
    fn deleted_queue_rejects_enqueue() {
        let mt = square_runtime(1);
        let q = mt.create_queue(1).unwrap();
        let q2 = q.clone();
        q.delete();
        assert_eq!(
            q2.enqueue(vec![0; 8]).unwrap_err().0,
            MtapiStatus::ErrQueueInvalid
        );
    }

    #[test]
    fn timeout_on_wait() {
        let mt = Mtapi::initialize(1, 0, 1).unwrap();
        mt.create_action(8, |_| {
            thread::sleep(Duration::from_millis(200));
            vec![]
        })
        .unwrap();
        let t = mt.job(8).unwrap().start(vec![]).unwrap();
        // Let the pool worker claim the slow task first — otherwise the
        // waiting thread would "help" by running it inline and never time
        // out.
        while t.state() == TaskState::Pending {
            thread::yield_now();
        }
        assert_eq!(
            t.wait(Some(Duration::from_millis(20))).unwrap_err().0,
            MtapiStatus::Timeout
        );
        t.wait(None).unwrap();
    }

    #[test]
    fn zero_workers_rejected() {
        assert_eq!(
            Mtapi::initialize(1, 0, 0).unwrap_err().0,
            MtapiStatus::ErrParameter
        );
    }
}
