//! End-to-end server tests over real TCP: admission control and
//! backpressure, graceful drain, malformed-frame handling, and response
//! routing under concurrent clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mca_sync::SmallRng;
use romp::{BackendKind, Runtime};
use romp_epcc::Construct;
use romp_npb::{Class, NpbKernel};
use romp_serve::{
    Client, ClientError, ErrorCode, JobLimits, JobSpec, Response, ServeConfig, Server,
    ServerHandle, SubmitOptions, SubmitOutcome,
};

fn start_native(cfg: ServeConfig) -> ServerHandle {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    Server::start("127.0.0.1:0", cfg, rt).unwrap()
}

fn tiny_job() -> JobSpec {
    JobSpec::Epcc {
        construct: Construct::Barrier,
        threads: 2,
        inner_reps: 2,
    }
}

/// A slower job, used to hold the dispatcher busy while the queue fills.
fn chunky_job() -> JobSpec {
    JobSpec::Npb {
        kernel: NpbKernel::Ep,
        class: Class::S,
        threads: 2,
    }
}

#[test]
fn submit_poll_fetch_roundtrip() {
    let handle = start_native(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    let (job, rejections) = c
        .submit_with_retry(&tiny_job(), Duration::from_secs(10))
        .unwrap()
        .expect("server not draining");
    assert_eq!(rejections, 0, "empty queue admits immediately");
    let out = c.wait_result(job, Duration::from_secs(30)).unwrap();
    assert!(out.ok, "{}", out.detail);
    // Fetch consumed the entry.
    match c.poll(job) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownJob,
            ..
        }) => {}
        other => panic!("fetched job still visible: {other:?}"),
    }
    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.accepted, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.dropped, 0);
}

/// A full queue must answer a well-formed `Rejected { retry_after_ms }`
/// immediately — not hang, not grow, not drop the connection — and later
/// submissions must succeed once the queue drains.
#[test]
fn full_queue_rejects_with_retry_after() {
    let handle = start_native(ServeConfig {
        queue_cap: 2,
        limits: JobLimits::default(),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    // Flood with slow jobs until a rejection arrives; the dispatcher can
    // pop at most one job at a time, so cap+2 submissions must overflow.
    let mut accepted = Vec::new();
    let mut saw_rejection = false;
    for _ in 0..64 {
        match c.submit(&chunky_job()).unwrap() {
            SubmitOutcome::Accepted(id) => accepted.push(id),
            SubmitOutcome::Rejected { retry_after_ms } => {
                assert!(retry_after_ms >= 1, "retry-after is a usable hint");
                assert!(retry_after_ms <= 10_000, "retry-after is bounded");
                saw_rejection = true;
                break;
            }
            SubmitOutcome::Draining => panic!("not draining"),
            SubmitOutcome::ShedDeadline { .. } => panic!("shedding is off by default"),
        }
    }
    assert!(saw_rejection, "a 2-slot queue must overflow under flood");
    // Every accepted job still completes and is fetchable.
    for id in &accepted {
        let out = c.wait_result(*id, Duration::from_secs(60)).unwrap();
        assert!(out.ok, "{}", out.detail);
    }
    // With the queue drained, admission works again.
    let again = c
        .submit_with_retry(&tiny_job(), Duration::from_secs(10))
        .unwrap();
    assert!(again.is_some());
    c.shutdown().unwrap();
    let report = handle.join();
    assert!(report.rejected >= 1);
    assert_eq!(report.dropped, 0);
}

/// Shutdown mid-stream: jobs accepted before the drain all complete; new
/// submissions are refused with the `Draining` error code.
#[test]
fn drain_completes_accepted_jobs_and_refuses_new_ones() {
    let handle = start_native(ServeConfig {
        queue_cap: 32,
        limits: JobLimits::default(),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    let mut ids = Vec::new();
    for _ in 0..8 {
        if let SubmitOutcome::Accepted(id) = c.submit(&tiny_job()).unwrap() {
            ids.push(id);
        }
    }
    assert!(!ids.is_empty());
    let _outstanding = c.shutdown().unwrap();
    // Draining: no new work.
    match c.submit(&tiny_job()).unwrap() {
        SubmitOutcome::Draining => {}
        other => panic!("drain must refuse submissions, got {other:?}"),
    }
    // But every accepted job still completes and is fetchable.
    for id in ids {
        let out = c.wait_result(id, Duration::from_secs(60)).unwrap();
        assert!(out.ok, "{}", out.detail);
    }
    let report = handle.join();
    assert_eq!(report.dropped, 0, "graceful drain drops nothing");
    assert_eq!(report.completed, report.accepted);
}

/// Garbage bytes must get a typed error response (or a clean close),
/// never a panic, and must not damage service for well-formed clients.
#[test]
fn malformed_frames_are_rejected_without_harm() {
    let handle = start_native(ServeConfig::default());

    // 1. A hostile length prefix (larger than MAX_FRAME).
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).ok(); // server answers once, then closes
    drop(s);

    // 2. A well-framed body with an unknown opcode.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.write_all(&1u32.to_be_bytes()).unwrap();
    s.write_all(&[0x7E]).unwrap();
    match client_from(s) {
        Ok(Response::Error { code, .. }) => {
            assert!(matches!(code, ErrorCode::BadFrame | ErrorCode::BadPayload))
        }
        Ok(other) => panic!("expected error response, got {other:?}"),
        Err(e) => panic!("server must answer a framed unknown opcode: {e}"),
    }

    // 3. A truncated frame (length says 16, body delivers 3, then EOF).
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.write_all(&16u32.to_be_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    drop(s); // server sees UnexpectedEof and just closes

    // The server is still healthy for a real client.
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    let (job, _) = c
        .submit_with_retry(&tiny_job(), Duration::from_secs(10))
        .unwrap()
        .unwrap();
    assert!(c.wait_result(job, Duration::from_secs(30)).unwrap().ok);
    c.shutdown().unwrap();
    let report = handle.join();
    assert!(report.proto_errors >= 2, "bad frames were counted");
    assert_eq!(report.dropped, 0);
}

/// Property: `Cancel` raced against every point in a job's lifecycle —
/// still queued behind a backed-up dispatcher, mid-dispatch, running,
/// already complete, already fetched — always leaves the job with
/// exactly one terminal outcome and perfect drain accounting.  Seeded,
/// so a failure reproduces.
#[test]
fn cancel_raced_against_every_job_state_settles_exactly_once() {
    let handle = start_native(ServeConfig {
        // A 4-slot queue plus slow-ish jobs keeps a healthy population of
        // *queued* jobs for cancels to race.
        queue_cap: 4,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    let mut rng = SmallRng::seed_from_u64(0x5EED_CA9C);
    let specs = [tiny_job(), chunky_job()];

    let mut accepted: Vec<u64> = Vec::new();
    let mut cancels = 0u64;
    for r in 0..48u64 {
        let spec = specs[rng.gen_index(0, specs.len())];
        let opts = SubmitOptions {
            deadline_ms: if rng.gen_index(0, 4) == 0 { 5_000 } else { 0 },
            idem_key: r + 1,
            affinity: r % 3,
            priority: (r % 3) as u8,
        };
        match c.submit_opts(&spec, opts).unwrap() {
            SubmitOutcome::Accepted(id) => {
                accepted.push(id);
                // Cancel a random earlier-or-current job at a random
                // moment: depending on the draw this races admission,
                // dispatch, execution, or completion.
                if rng.gen_index(0, 3) == 0 {
                    let victim = accepted[rng.gen_index(0, accepted.len())];
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0, 500)));
                    c.cancel(victim).unwrap();
                    cancels += 1;
                    // Sometimes cancel the same victim again: must stay
                    // acknowledged, never flip a terminal state.
                    if rng.gen_index(0, 4) == 0 {
                        c.cancel(victim).unwrap();
                    }
                }
            }
            SubmitOutcome::Rejected { .. } => {
                std::thread::sleep(Duration::from_millis(2));
            }
            SubmitOutcome::Draining => panic!("not draining"),
            SubmitOutcome::ShedDeadline { .. } => panic!("shedding is off by default"),
        }
    }
    assert!(cancels > 0, "the seed must actually exercise cancellation");

    // Every accepted job reaches exactly one terminal outcome, and a
    // fetched job is gone (cancel afterwards is UnknownJob).
    for id in &accepted {
        let out = c.wait_result(*id, Duration::from_secs(60)).unwrap();
        if !out.ok {
            assert!(
                out.detail.contains("cancel")
                    || out.detail.contains("deadline")
                    || !out.detail.is_empty(),
                "losing outcome carries a reason: {out:?}"
            );
        }
        match c.cancel(*id) {
            Err(ClientError::Server {
                code: ErrorCode::UnknownJob,
                ..
            }) => {}
            other => panic!("cancel after fetch must be UnknownJob, got {other:?}"),
        }
    }

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.accepted, accepted.len() as u64, "{report:?}");
    assert_eq!(
        report.completed + report.failed + report.cancelled + report.timed_out,
        report.accepted,
        "every job settles exactly once: {report:?}"
    );
    assert_eq!(report.dropped, 0, "{report:?}");
}

/// Read one response frame off a raw stream.
fn client_from(stream: TcpStream) -> Result<Response, String> {
    let mut r = std::io::BufReader::new(stream);
    match romp_serve::protocol::read_frame(&mut r) {
        Ok(Some(body)) => Response::decode(&body).map_err(|e| e.to_string()),
        Ok(None) => Err("closed without answering".into()),
        Err(e) => Err(e.to_string()),
    }
}

/// Sixteen concurrent clients, each tagging its jobs with a distinct
/// thread count pattern: every response must route back to the client
/// that asked (no crosstalk between connections).
#[test]
fn concurrent_clients_never_see_misrouted_responses() {
    let handle = start_native(ServeConfig {
        queue_cap: 256,
        limits: JobLimits::default(),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let clients: Vec<_> = (0..16)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Distinct inner_reps per client tags the job family.
                let spec = JobSpec::Epcc {
                    construct: Construct::Barrier,
                    threads: 2,
                    inner_reps: (k + 1) as u16,
                };
                for _ in 0..6 {
                    let Some((id, _)) =
                        c.submit_with_retry(&spec, Duration::from_secs(30)).unwrap()
                    else {
                        panic!("not draining");
                    };
                    let out = c.wait_result(id, Duration::from_secs(60)).unwrap();
                    assert!(out.ok);
                    // The detail embeds the inner_reps this client asked
                    // for; a misrouted response would carry another tag.
                    assert!(
                        out.detail.contains(&format!("x{}", k + 1)),
                        "client {k} got foreign result: {}",
                        out.detail
                    );
                }
            })
        })
        .collect();
    for h in clients {
        h.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"serve.latency.total_ns\""));
    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.accepted, 96);
    assert_eq!(report.completed, 96);
    assert_eq!(report.dropped, 0);
}
