//! Reactor-focused tests: frame reassembly at arbitrary split points,
//! short-write preservation, garbage resilience, protocol pipelining with
//! server-push `await` results, and the multi-reactor configuration.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mca_sync::SmallRng;
use romp::{BackendKind, Runtime};
use romp_epcc::Construct;
use romp_serve::reactor::{Fill, Flush, RecvBuf, SendBuf};
use romp_serve::{
    Client, ClientError, ErrorCode, JobSpec, Request, Response, ServeConfig, Server, ServerHandle,
};

fn start_native(cfg: ServeConfig) -> ServerHandle {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    Server::start("127.0.0.1:0", cfg, rt).unwrap()
}

fn tiny_job() -> JobSpec {
    JobSpec::Epcc {
        construct: Construct::Barrier,
        threads: 2,
        inner_reps: 2,
    }
}

/// A representative request of each shape, for stream-building.
fn sample_request(rng: &mut SmallRng) -> Request {
    match rng.gen_index(0, 6) {
        0 => Request::Submit {
            spec: tiny_job(),
            deadline_ms: rng.next_u64() as u32 % 1000,
            idem_key: rng.next_u64(),
            affinity: rng.next_u64(),
            priority: (rng.next_u64() % 3) as u8,
        },
        1 => Request::Poll {
            job: rng.next_u64() % 100,
        },
        2 => Request::Fetch {
            job: rng.next_u64() % 100,
        },
        3 => Request::Await {
            job: rng.next_u64() % 100,
        },
        4 => Request::Ping,
        _ => Request::Stats,
    }
}

/// Property: for any chunking of the byte stream — including one byte at
/// a time — the reassembled frame sequence is exactly the sent sequence.
#[test]
fn recv_buf_reassembles_across_arbitrary_split_points() {
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0000 + seed);
        let requests: Vec<Request> = (0..64).map(|_| sample_request(&mut rng)).collect();
        let mut wire = Vec::new();
        for r in &requests {
            wire.extend_from_slice(&r.encode());
        }
        // Seed 0 degenerates to strict byte-at-a-time; the rest use
        // random chunk sizes from 1 to 16 bytes.
        let mut rb = RecvBuf::new();
        let mut decoded = Vec::new();
        let mut at = 0usize;
        while at < wire.len() {
            let step = if seed == 0 {
                1
            } else {
                rng.gen_index(1, 17).min(wire.len() - at)
            };
            rb.extend(&wire[at..at + step]);
            at += step;
            while let Some(body) = rb.next_frame().expect("well-formed stream") {
                decoded.push(Request::decode(&body).expect("round trip"));
            }
        }
        assert_eq!(rb.pending(), 0, "no residue after a whole stream");
        assert_eq!(decoded, requests, "seed {seed}");
    }
}

/// A writer that accepts only a few bytes per call and interleaves
/// `WouldBlock`, i.e. the worst legal behaviour of a non-blocking socket.
struct TrickleSink {
    rng: SmallRng,
    got: Vec<u8>,
}

impl Write for TrickleSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.rng.gen_index(0, 4) == 0 {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = self.rng.gen_index(1, 8).min(buf.len());
        self.got.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Property: short writes and spurious `WouldBlock` never lose, reorder,
/// or duplicate bytes in the send buffer.
#[test]
fn send_buf_survives_short_writes() {
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(0xbeef ^ seed);
        let mut expected = Vec::new();
        let mut sb = SendBuf::new();
        let mut sink = TrickleSink {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(2654435761)),
            got: Vec::new(),
        };
        for _ in 0..40 {
            let frame = sample_request(&mut rng).encode();
            expected.extend_from_slice(&frame);
            sb.queue(&frame);
            // Interleave partial flushes with queueing.
            if rng.gen_index(0, 2) == 0 {
                let _ = sb.flush_to(&mut sink).unwrap();
            }
        }
        loop {
            match sb.flush_to(&mut sink).unwrap() {
                Flush::Drained => break,
                Flush::Blocked => continue,
            }
        }
        assert!(sb.is_empty());
        assert_eq!(sink.got, expected, "seed {seed}");
    }
}

/// Garbage bytes must never panic the decoder: every outcome is either a
/// decoded (possibly meaningless) frame or a typed protocol error.
#[test]
fn garbage_input_never_panics_decoder() {
    for seed in 0..50u64 {
        let mut rng = SmallRng::seed_from_u64(0xda7a ^ seed);
        let mut rb = RecvBuf::new();
        'stream: for _ in 0..200 {
            let n = rng.gen_index(1, 64);
            let chunk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            rb.extend(&chunk);
            loop {
                match rb.next_frame() {
                    Ok(Some(body)) => {
                        // A frame that happened to parse; decoding may
                        // fail but must not panic.
                        let _ = Request::decode(&body);
                    }
                    Ok(None) => break,
                    Err(_) => break 'stream, // stream out of sync: drop conn
                }
            }
        }
    }
}

/// A live server fed raw garbage answers with a typed error (or closes)
/// and never panics; a fresh client still gets service afterwards.
#[test]
fn garbage_over_tcp_is_survivable() {
    let handle = start_native(ServeConfig::default());
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0x6a5b ^ seed);
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = rng.gen_index(5, 300);
        let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = s.write_all(&junk);
        let _ = s.flush();
        // Server either answers BadFrame then closes, or just closes;
        // read to EOF without asserting which.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }
    // Sanity: service is still healthy.
    let mut c = Client::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    let job = match c.submit(&tiny_job()).unwrap() {
        romp_serve::SubmitOutcome::Accepted(job) => job,
        other => panic!("unexpected: {other:?}"),
    };
    let out = c.wait_result(job, Duration::from_secs(30)).unwrap();
    assert!(out.ok, "{}", out.detail);
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0);
}

/// The tentpole behaviour: many in-flight submit+await pairs on a single
/// connection, results pushed by the server as jobs finish.
#[test]
fn pipelined_awaits_on_one_connection() {
    let handle = start_native(ServeConfig {
        queue_cap: 64,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    const N: usize = 16;
    let mut pending: Vec<u64> = Vec::new();
    let mut results = 0usize;
    for _ in 0..N {
        c.send(&Request::Submit {
            spec: tiny_job(),
            deadline_ms: 0,
            idem_key: 0,
            affinity: 0,
            priority: 0,
        })
        .unwrap();
        // Submission answers are request-ordered; results interleave.
        let job = loop {
            match c.recv().unwrap() {
                Response::JobResult {
                    job, ok, detail, ..
                } => {
                    assert!(pending.contains(&job), "unsolicited result {job}");
                    assert!(ok, "{detail}");
                    results += 1;
                }
                Response::Accepted { job } => break job,
                other => panic!("unexpected submit answer: {other:?}"),
            }
        };
        pending.push(job);
        c.send(&Request::Await { job }).unwrap();
    }
    while results < N {
        match c.recv().unwrap() {
            Response::JobResult {
                job, ok, detail, ..
            } => {
                assert!(pending.contains(&job), "unsolicited result {job}");
                assert!(ok, "{detail}");
                results += 1;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0, "drain loses nothing");
}

/// EOF with more frames buffered than one decode pass handles (the
/// 4096-frame fairness cap) must still answer every request before
/// closing: the close contract is "buffered frames are handled", not
/// "whatever the first pass got to".
#[test]
fn eof_after_deep_pipeline_answers_every_buffered_frame() {
    let handle = start_native(ServeConfig::default());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    const N: usize = 4200; // > the per-pass fairness bound of 4096
    let ping = Request::Ping.encode();
    let mut wire = Vec::with_capacity(ping.len() * N);
    for _ in 0..N {
        wire.extend_from_slice(&ping);
    }
    s.write_all(&wire).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rb = RecvBuf::new();
    let mut got = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        while let Some(body) = rb.next_frame().unwrap() {
            match Response::decode(&body).unwrap() {
                Response::Pong => got += 1,
                other => panic!("unexpected answer to ping: {other:?}"),
            }
        }
        let n = s.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        rb.extend(&buf[..n]);
    }
    assert_eq!(got, N, "every pipelined frame answered before the close");
    let mut c = Client::connect(handle.addr()).unwrap();
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0);
}

/// A write-backpressured connection whose peer then only *reads* must
/// still get every buffered request decoded: once flushing drains the
/// write buffer below the cap, the reactor re-passes on its own — under
/// edge triggering no further epoll event will announce the bytes
/// already sitting in rbuf.
#[test]
fn backpressure_deferral_resumes_without_new_input() {
    let handle = start_native(ServeConfig::default());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Burst enough requests that the staged responses overrun the
    // 256 KiB write cap while later frames are still undecoded, then
    // send nothing further and just read.
    const N: usize = 6000;
    let stats = Request::Stats.encode();
    let mut wire = Vec::with_capacity(stats.len() * N);
    for _ in 0..N {
        wire.extend_from_slice(&stats);
    }
    s.write_all(&wire).unwrap();
    // Let the server quiesce in the deferred state (write buffer capped,
    // undecoded frames buffered, no events pending) before draining, so
    // resumption can only come from the reactor's own re-pass.
    std::thread::sleep(Duration::from_millis(300));
    let mut rb = RecvBuf::new();
    let mut got = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    while got < N {
        while let Some(body) = rb.next_frame().unwrap() {
            match Response::decode(&body).unwrap() {
                Response::Stats { .. } => got += 1,
                other => panic!("unexpected answer to stats: {other:?}"),
            }
        }
        if got >= N {
            break;
        }
        let n = s.read(&mut buf).unwrap();
        assert_ne!(n, 0, "server closed early after {got}/{N} responses");
        rb.extend(&buf[..n]);
    }
    drop(s);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0);
}

/// `await` on a job the server never issued answers `UnknownJob`, and a
/// second `await` of a consumed result does too (the entry is gone).
#[test]
fn await_unknown_and_consumed_jobs() {
    let handle = start_native(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.await_result(0xdead_beef) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownJob,
            ..
        }) => {}
        other => panic!("await of unknown job: {other:?}"),
    }
    let job = match c.submit(&tiny_job()).unwrap() {
        romp_serve::SubmitOutcome::Accepted(job) => job,
        other => panic!("unexpected: {other:?}"),
    };
    let out = c.await_result(job).unwrap();
    assert!(out.ok, "{}", out.detail);
    match c.await_result(job) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownJob,
            ..
        }) => {}
        other => panic!("await after consumption: {other:?}"),
    }
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0);
}

/// The `reactors: 2` configuration serves multiple connections and
/// drains cleanly — accepts round-robin across poll loops, completions
/// broadcast to all of them.
#[test]
fn multi_reactor_smoke() {
    let handle = start_native(ServeConfig {
        reactors: 2,
        queue_cap: 32,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr.as_str()).unwrap();
                for _ in 0..3 {
                    let (job, _) = c
                        .submit_with_retry(&tiny_job(), Duration::from_secs(30))
                        .unwrap()
                        .expect("not draining");
                    let out = c.await_result(job).unwrap();
                    assert!(out.ok, "{}", out.detail);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let mut c = Client::connect(handle.addr()).unwrap();
    c.shutdown().unwrap();
    assert_eq!(
        handle.join().dropped,
        0,
        "multi-reactor drain loses nothing"
    );
}

/// The reactor metrics show up in the stats JSON.
#[test]
fn reactor_metrics_in_stats() {
    let handle = start_native(ServeConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();
    let job = match c.submit(&tiny_job()).unwrap() {
        romp_serve::SubmitOutcome::Accepted(job) => job,
        other => panic!("unexpected: {other:?}"),
    };
    let out = c.await_result(job).unwrap();
    assert!(out.ok);
    let stats = c.stats().unwrap();
    for key in [
        "serve.reactor.wakeups",
        "serve.reactor.events_per_wakeup",
        "serve.reactor.batch_size",
        "serve.reactor.connections",
        "serve.req.await",
    ] {
        assert!(stats.contains(key), "stats missing {key}: {stats}");
    }
    c.shutdown().unwrap();
    assert_eq!(handle.join().dropped, 0);
}

/// `Fill` is exercised against a reader that returns partial chunks.
struct TrickleSource {
    data: Vec<u8>,
    at: usize,
    rng: SmallRng,
}

impl Read for TrickleSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.at >= self.data.len() {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = self
            .rng
            .gen_index(1, 5)
            .min(buf.len())
            .min(self.data.len() - self.at);
        buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

/// `fill_from` keeps reading until `WouldBlock` and decodes everything
/// that arrived, regardless of how the transport fragments it.
#[test]
fn fill_from_reads_until_wouldblock() {
    let mut rng = SmallRng::seed_from_u64(77);
    let requests: Vec<Request> = (0..32).map(|_| sample_request(&mut rng)).collect();
    let mut wire = Vec::new();
    for r in &requests {
        wire.extend_from_slice(&r.encode());
    }
    let mut src = TrickleSource {
        data: wire,
        at: 0,
        rng: SmallRng::seed_from_u64(78),
    };
    let mut rb = RecvBuf::new();
    assert!(matches!(rb.fill_from(&mut src).unwrap(), Fill::WouldBlock));
    let mut decoded = Vec::new();
    while let Some(body) = rb.next_frame().unwrap() {
        decoded.push(Request::decode(&body).unwrap());
    }
    assert_eq!(decoded, requests);
}
