//! Hermetic epoll/eventfd bindings.
//!
//! The workspace invariant is `std`-only (`--offline`, no registry
//! crates), so the readiness syscalls the reactor needs are declared
//! directly as `extern "C"` against the platform libc — the same pattern
//! `mca-platform::vtime` uses for `clock_gettime`.  Ownership and
//! closing ride on `std::os::fd::OwnedFd`, so no `close(2)` declaration
//! is needed, and the eventfd is read/written through `std::fs::File`
//! (`&File` implements `Read`/`Write`, which is what lets the dispatcher
//! and watchdog raise the wakeup from their own threads).

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness (`EPOLLIN`).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never subscribed.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never subscribed.
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write side (`EPOLLRDHUP`).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`).
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;

/// `O_CLOEXEC` / `EPOLL_CLOEXEC` / `EFD_CLOEXEC` share one value.
const CLOEXEC: i32 = 0o2000000;
/// `O_NONBLOCK` / `EFD_NONBLOCK`.
const NONBLOCK: i32 = 0o4000;

/// `struct epoll_event` as the kernel ABI defines it.  On x86-64 glibc
/// declares it packed (`__EPOLL_PACKED`), giving the 12-byte layout the
/// kernel expects; other 64-bit targets use the natural 16-byte layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned token (the reactor stores connection tokens here).
    pub data: u64,
}

impl EpollEvent {
    pub(crate) fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(rc: i32) -> io::Result<i32> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub(crate) fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Register `fd` for `events`, tagging its readiness with `token`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: ev is a valid epoll_event for the duration of the call.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) })?;
        Ok(())
    }

    /// Deregister `fd` (best-effort: closing the fd also removes it).
    pub(crate) fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent::zeroed();
        // SAFETY: a zeroed event is valid (ignored by EPOLL_CTL_DEL).
        let _ = unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Block for readiness; fills `events` and returns how many fired.
    /// A signal interruption reports zero events rather than an error.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the events pointer/len describe a live, writable slice.
        let rc = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        match cvt(rc) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// An owned eventfd: the cross-thread wakeup the dispatcher, watchdog and
/// drain path use to reach a reactor parked in `epoll_wait`.
pub(crate) struct EventFd {
    file: File,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub(crate) fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, CLOEXEC | NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we now own.
        Ok(EventFd {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    pub(crate) fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Wake the owner.  Safe from any thread; a saturated counter
    /// (`WouldBlock`) still leaves the fd readable, which is all we need.
    pub(crate) fn raise(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Consume pending wakeups so the next `raise` re-arms the edge.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        while matches!((&self.file).read(&mut buf), Ok(8)) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_raise_wakes_epoll_and_drain_rearms() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 7, EPOLLIN | EPOLLET).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing raised: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.raise();
        ev.raise();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, bits) = (events[0].data, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLIN, 0);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained");
        // The edge re-arms after a drain.
        ev.raise();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
    }
}
