//! Per-connection buffers: incremental frame decode and short-write
//! handling.
//!
//! Under edge-triggered readiness the reactor sees *bytes*, not frames:
//! a read may deliver half a length prefix, three frames and a tail, or
//! one byte.  [`RecvBuf`] accumulates whatever arrives and yields
//! complete frame bodies as they materialize, enforcing the same
//! [`MAX_FRAME`] bound as the blocking reader did — a hostile prefix is a
//! typed [`ProtoError`], never a panic or an unbounded allocation.
//! [`SendBuf`] is the mirror image for writes: responses are queued as
//! encoded frames and flushed as far as the socket allows; a short write
//! leaves the tail buffered for the next `EPOLLOUT` edge.
//!
//! Both types are deliberately transport-agnostic (`impl Read` /
//! `impl Write`), which is what lets the property tests drive them one
//! byte at a time and through deliberately short-writing sinks.

use std::io::{self, Read, Write};

use crate::protocol::{ProtoError, MAX_FRAME};

/// How much a single `read` call may pull (per loop iteration); the fill
/// loop keeps going until the socket runs dry, so this bounds only the
/// chunk size, not the total.
const READ_CHUNK: usize = 16 * 1024;

/// Compact the buffer once this many consumed bytes accumulate at the
/// front (amortized: memmove cost is paid once per ~64KiB consumed).
const COMPACT_AT: usize = 64 * 1024;

/// What a [`RecvBuf::fill_from`] pass observed at the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// The transport ran dry (`WouldBlock`): all currently-available
    /// bytes are buffered; wait for the next readiness edge.
    WouldBlock,
    /// The peer closed its write side (EOF).  Bytes read before the EOF
    /// are buffered and should still be decoded.
    Eof,
}

/// Growable receive buffer with incremental length-prefixed frame decode.
#[derive(Debug, Default)]
pub struct RecvBuf {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed (compacted lazily).
    start: usize,
}

impl RecvBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        RecvBuf::default()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Append raw bytes (the test-side entry point; production bytes
    /// arrive via [`RecvBuf::fill_from`]).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Read from `r` until it runs dry (`WouldBlock`) or reports EOF,
    /// buffering everything.  `Interrupted` is retried; other transport
    /// errors propagate.  On a blocking transport this returns only at
    /// EOF — the reactor always hands in non-blocking sockets.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<Fill> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match r.read(&mut chunk) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Fill::WouldBlock),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pop the next complete frame body, if one is buffered.
    ///
    /// * `Ok(Some(body))` — a complete frame (length prefix stripped);
    /// * `Ok(None)` — the buffer holds only a partial frame so far;
    /// * `Err` — a length prefix the protocol forbids (zero or over
    ///   [`MAX_FRAME`]): the stream is out of sync and the connection
    ///   must be dropped after one `BadFrame` answer, matching the
    ///   blocking reader's contract.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(ProtoError::EmptyFrame);
        }
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized(len));
        }
        if avail.len() < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        let body = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        self.maybe_compact();
        Ok(Some(body))
    }

    fn maybe_compact(&mut self) {
        if self.start >= COMPACT_AT || self.start == self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// What a [`SendBuf::flush_to`] pass achieved at the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flush {
    /// Everything queued has been written.
    Drained,
    /// The transport refused more bytes (`WouldBlock`); the rest stays
    /// buffered for the next writability edge.
    Blocked,
}

/// Growable send buffer that survives short writes.
#[derive(Debug, Default)]
pub struct SendBuf {
    buf: Vec<u8>,
    start: usize,
}

impl SendBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        SendBuf::default()
    }

    /// Bytes queued but not yet written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Queue an encoded frame behind whatever is already pending.
    pub fn queue(&mut self, frame: &[u8]) {
        self.buf.extend_from_slice(frame);
    }

    /// Write as much as `w` will take.  Short writes advance the cursor
    /// and keep going; `WouldBlock` stops the pass with the tail intact;
    /// `Interrupted` is retried; a zero-length write is reported as
    /// `WriteZero` (the peer is gone); other errors propagate.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<Flush> {
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0")),
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(Flush::Blocked);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(Flush::Drained)
    }

    fn compact(&mut self) {
        if self.start >= COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn byte_at_a_time_decode_yields_each_frame_exactly_once() {
        let bodies: Vec<Vec<u8>> = vec![vec![1], vec![2, 3, 4], vec![5; 300]];
        let mut stream = Vec::new();
        for b in &bodies {
            stream.extend_from_slice(&frame(b));
        }
        let mut rb = RecvBuf::new();
        let mut seen = Vec::new();
        for &byte in &stream {
            rb.extend(&[byte]);
            while let Some(body) = rb.next_frame().unwrap() {
                seen.push(body);
            }
        }
        assert_eq!(seen, bodies);
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn hostile_prefixes_are_typed_errors() {
        let mut rb = RecvBuf::new();
        rb.extend(&0u32.to_be_bytes());
        assert_eq!(rb.next_frame(), Err(ProtoError::EmptyFrame));
        let mut rb = RecvBuf::new();
        rb.extend(&((MAX_FRAME as u32) + 1).to_be_bytes());
        assert!(matches!(rb.next_frame(), Err(ProtoError::Oversized(_))));
    }

    /// A sink that accepts at most one byte per write, then blocks every
    /// other call — the worst-case short-write transport.
    struct TrickleSink {
        out: Vec<u8>,
        parity: bool,
    }

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.parity = !self.parity;
            if self.parity {
                self.out.push(buf[0]);
                Ok(1)
            } else {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_preserve_the_byte_stream() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut sb = SendBuf::new();
        sb.queue(&frame(&payload));
        let mut sink = TrickleSink {
            out: Vec::new(),
            parity: false,
        };
        let mut blocked = 0;
        loop {
            match sb.flush_to(&mut sink).unwrap() {
                Flush::Drained => break,
                Flush::Blocked => blocked += 1,
            }
        }
        assert!(blocked > 0, "the trickle sink must have blocked");
        assert_eq!(sink.out, frame(&payload));
        assert!(sb.is_empty());
    }
}
