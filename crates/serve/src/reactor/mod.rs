//! The event-driven connection front-end (DESIGN.md §5.9).
//!
//! One reactor thread (optionally several, round-robining accepted
//! connections) owns every socket: a single `epoll` instance watches the
//! listener, an eventfd wakeup, and all connections in edge-triggered
//! mode.  Per connection, a [`RecvBuf`]/[`SendBuf`] pair turns the byte
//! stream back into frames and absorbs short writes, so one thread
//! multiplexes 64+ pipelined clients without a single blocking call —
//! connection threads no longer exist to thrash the compute pool.
//!
//! The per-connection decode/route/backpressure *logic* lives in
//! [`crate::session`] (shared with the `romp-sim` deterministic
//! simulator, which drives the same [`Session`] state machine from
//! virtual-time events); this module owns what is socket-specific:
//! epoll registration, readiness edges, accept round-robin, the
//! completion mailboxes, and the flush/close lifecycle.
//!
//! Three flows meet here:
//!
//! * **Requests** — readable sockets are drained to `WouldBlock`, every
//!   complete frame is decoded, and all `Submit`s seen in one wakeup are
//!   admitted as **one batch** (one queue lock, one dispatcher wakeup).
//!   Sync requests (`Poll`, `Fetch`, `Stats`, …) answer in request order;
//!   `Await` parks until its job finishes.
//! * **Completions** — the dispatcher/watchdog push finished job ids into
//!   each reactor's mailbox and raise its eventfd; the reactor answers
//!   the parked `Await`s in completion order.
//! * **Backpressure** — a connection whose write buffer exceeds the
//!   write-buffer cap (256 KiB) is not read or decoded until it drains,
//!   so a slow reader stalls itself, not the server.

mod conn;
mod sys;

pub use conn::{Fill, Flush, RecvBuf, SendBuf};

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mca_sync::Mutex;

use crate::protocol::{ErrorCode, Response};
use crate::queue::QueuedJob;
use crate::server::Shared;
use crate::session::{route_frames, AwaitDisposition, PendingResp, ServeCore, Session, WBUF_LIMIT};
use sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// A reactor's cross-thread inbox: new connections (from the accepting
/// reactor) and finished job ids (from the dispatcher and watchdog), each
/// delivery paired with an eventfd raise so a reactor parked in
/// `epoll_wait` notices immediately.
pub(crate) struct Mailbox {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<u64>>,
    wake: EventFd,
}

impl Mailbox {
    pub(crate) fn new() -> io::Result<Mailbox> {
        Ok(Mailbox {
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }

    /// Tell this reactor that `job` reached a terminal state.
    pub(crate) fn notify_completion(&self, job: u64) {
        self.completions.lock().push(job);
        self.wake.raise();
    }

    /// Wake the reactor with nothing attached (shutdown nudge).
    pub(crate) fn wake(&self) {
        self.wake.raise();
    }

    fn deliver(&self, stream: TcpStream) {
        self.inbox.lock().push(stream);
        self.wake.raise();
    }
}

/// One connection's reactor-side state: the socket, its epoll readiness
/// edges, and the transport-independent [`Session`].
struct Conn {
    stream: TcpStream,
    sess: Session,
    /// Readiness flags: set by epoll edges, cleared on `WouldBlock`.
    readable: bool,
    writable: bool,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    index: usize,
    ep: Epoll,
    /// Only reactor 0 holds the listener; it round-robins accepts.
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// job id → tokens of connections with a parked `Await` on it.
    parked: HashMap<u64, Vec<u64>>,
    next_token: u64,
    rr: usize,
}

impl Reactor {
    /// Build a reactor's epoll set up-front so `Server::start` can fail
    /// loudly instead of a thread dying silently.
    pub(crate) fn new(
        shared: Arc<Shared>,
        index: usize,
        listener: Option<TcpListener>,
    ) -> io::Result<Reactor> {
        let ep = Epoll::new()?;
        ep.add(
            shared.mailboxes[index].wake.raw(),
            TOKEN_WAKE,
            EPOLLIN | EPOLLET,
        )?;
        if let Some(l) = &listener {
            use std::os::fd::AsRawFd;
            l.set_nonblocking(true)?;
            ep.add(l.as_raw_fd(), TOKEN_LISTENER, EPOLLIN | EPOLLET)?;
        }
        Ok(Reactor {
            shared,
            index,
            ep,
            listener,
            conns: HashMap::new(),
            parked: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            rr: 0,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 256];
        let mut wait_failures = 0u32;
        loop {
            let n = match self.ep.wait(&mut events, -1) {
                Ok(n) => {
                    wait_failures = 0;
                    n
                }
                Err(e) => {
                    // Unexpected (`wait` already absorbs EINTR): back off
                    // so a persistent error (EBADF, …) cannot hot-spin
                    // the thread, and give up on the reactor if it never
                    // clears — a dead poll loop is better than a pegged
                    // core that serves nothing either way.
                    wait_failures += 1;
                    if wait_failures == 1 {
                        eprintln!("romp-serve: reactor {}: epoll_wait: {e}", self.index);
                    }
                    if wait_failures >= 100 {
                        eprintln!(
                            "romp-serve: reactor {}: epoll_wait keeps failing; abandoning poll loop",
                            self.index
                        );
                        self.wind_down();
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    0
                }
            };
            let m = &self.shared.metrics;
            m.reactor_wakeups.incr();
            m.reactor_events.record(n as u64);
            let mut accept_ready = false;
            for ev in events.iter().take(n) {
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => self.shared.mailboxes[self.index].wake.drain(),
                    t => {
                        if let Some(c) = self.conns.get_mut(&t) {
                            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                                c.readable = true;
                            }
                            if bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                                c.writable = true;
                            }
                        }
                    }
                }
            }
            // Read the stop flag *before* draining completions: every
            // completion is notified before `join` sets the flag, so a
            // stopping iteration is guaranteed to see the full set.
            let stopping = self.shared.stopped.load(Ordering::Acquire);
            self.drain_completions();
            self.drain_inbox();
            if accept_ready {
                self.accept_all();
            }
            loop {
                let worked = self.service_pass();
                self.flush_conns();
                // Flushing can lift a backpressure deferral, and under
                // edge triggering no event will ever re-announce the
                // bytes already sitting in that connection's rbuf — so
                // keep passing while any deferred connection can now
                // make progress, not merely while the last pass worked.
                if !worked && !self.deferral_serviceable() {
                    break;
                }
            }
            self.sweep_closed();
            if stopping {
                self.wind_down();
                return;
            }
        }
    }

    /// A deferred connection whose write buffer has drained below the
    /// cap can decode buffered frames without any further epoll event;
    /// `run` must re-pass for it rather than park in `epoll_wait`.
    fn deferral_serviceable(&self) -> bool {
        self.conns.values().any(|c| {
            c.sess.decode_deferred
                && !c.sess.closed
                && !c.sess.close_after_flush
                && c.sess.wbuf.pending() < WBUF_LIMIT
        })
    }

    /// Answer parked `Await`s for jobs the dispatcher reported finished.
    /// The first live waiter consumes the outcome exactly like a `Fetch`;
    /// later waiters observe `UnknownJob`; dead connections are skipped
    /// without consuming anything.
    fn drain_completions(&mut self) {
        let done = std::mem::take(&mut *self.shared.mailboxes[self.index].completions.lock());
        for job in done {
            let Some(waiters) = self.parked.remove(&job) else {
                continue;
            };
            let mut still_parked = Vec::new();
            for token in waiters {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if conn.sess.closed {
                    continue;
                }
                match self.shared.try_complete_await(job) {
                    AwaitDisposition::Ready(resp) => conn.sess.wbuf.queue(&resp.encode()),
                    // Raced a re-submit of the same id? Impossible (ids are
                    // unique), but a spurious notification re-parks safely.
                    AwaitDisposition::Pending => still_parked.push(token),
                }
            }
            if !still_parked.is_empty() {
                self.parked.insert(job, still_parked);
            }
        }
    }

    fn drain_inbox(&mut self) {
        let incoming = std::mem::take(&mut *self.shared.mailboxes[self.index].inbox.lock());
        for stream in incoming {
            self.register(stream);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        use std::os::fd::AsRawFd;
        // Nagle off: a response frame must leave now, not after a
        // delayed-ACK round trip (the 1-client p99 cliff).
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .ep
            .add(
                stream.as_raw_fd(),
                token,
                EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP,
            )
            .is_err()
        {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                sess: Session::new(),
                // Optimistic: data may predate registration; the first
                // service pass finds out via WouldBlock.
                readable: true,
                writable: true,
            },
        );
        self.shared
            .metrics
            .reactor_conns
            .set(self.conns.len() as u64);
    }

    fn accept_all(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let n = self.shared.mailboxes.len();
                    let target = self.rr % n;
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.index {
                        self.register(stream);
                    } else {
                        self.shared.mailboxes[target].deliver(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// One pass over every serviceable connection: read to `WouldBlock`,
    /// decode every complete frame, stage responses, admit all `Submit`s
    /// as one batch.  Returns whether any connection was serviced (the
    /// caller re-passes until quiescent, since flushing can lift the
    /// backpressure deferral).
    fn service_pass(&mut self) -> bool {
        let shared = &self.shared;
        let conns = &mut self.conns;
        let parked = &mut self.parked;
        let mut batch: Vec<QueuedJob> = Vec::new();
        let mut staged: Vec<(u64, Vec<PendingResp>)> = Vec::new();
        let mut worked = false;
        for (&token, conn) in conns.iter_mut() {
            if conn.sess.closed || conn.sess.close_after_flush {
                continue;
            }
            if conn.sess.backpressured() {
                // Backpressure: leave the socket unread; revisit when the
                // peer drains responses.
                if conn.readable || conn.sess.rbuf.pending() > 0 {
                    conn.sess.decode_deferred = true;
                }
                continue;
            }
            if !conn.readable && !conn.sess.decode_deferred {
                continue;
            }
            worked = true;
            conn.sess.decode_deferred = false;
            if conn.readable {
                match conn.sess.rbuf.fill_from(&mut conn.stream) {
                    Ok(Fill::WouldBlock) => conn.readable = false,
                    Ok(Fill::Eof) => {
                        conn.readable = false;
                        conn.sess.eof = true;
                    }
                    Err(_) => {
                        conn.sess.closed = true;
                        continue;
                    }
                }
            }
            let mut parked_jobs = Vec::new();
            let out = route_frames(&**shared, &mut conn.sess, &mut batch, &mut parked_jobs);
            for job in parked_jobs {
                parked.entry(job).or_default().push(token);
            }
            // Clean close on EOF (or truncated tail, dropped silently,
            // same as the blocking reader's mid-frame-EOF contract) —
            // only once decoding is quiescent; see `Session`.
            conn.sess.arm_close_if_quiescent();
            if !out.is_empty() {
                staged.push((token, out));
            }
        }
        if !batch.is_empty() {
            shared.metrics.reactor_batch.record(batch.len() as u64);
        }
        let mut slots: Vec<Option<Response>> =
            shared.admit_batch(batch).into_iter().map(Some).collect();
        for (token, pending) in staged {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            for p in pending {
                let resp = match p {
                    PendingResp::Ready(r) => r,
                    PendingResp::Submit(i) => slots[i].take().expect("submit slot filled once"),
                };
                conn.sess.wbuf.queue(&resp.encode());
            }
        }
        worked
    }

    fn flush_conns(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.sess.closed {
                continue;
            }
            if conn.writable && !conn.sess.wbuf.is_empty() {
                match conn.sess.wbuf.flush_to(&mut conn.stream) {
                    Ok(Flush::Drained) => {}
                    Ok(Flush::Blocked) => conn.writable = false,
                    Err(_) => conn.sess.closed = true,
                }
            }
            if conn.sess.close_after_flush && conn.sess.wbuf.is_empty() {
                conn.sess.closed = true;
            }
        }
    }

    fn sweep_closed(&mut self) {
        use std::os::fd::AsRawFd;
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.sess.closed)
            .map(|(&t, _)| t)
            .collect();
        if dead.is_empty() {
            return;
        }
        for token in dead {
            if let Some(conn) = self.conns.remove(&token) {
                self.ep.del(conn.stream.as_raw_fd());
            }
        }
        self.shared
            .metrics
            .reactor_conns
            .set(self.conns.len() as u64);
    }

    /// Shutdown: every job is terminal and every completion has been
    /// drained (see the flag-read ordering in `run`), so any still-parked
    /// `Await` lost a race to a `Fetch` on another connection — answer it
    /// rather than leave the client hanging, then flush what we can
    /// (bounded: sockets are non-blocking and peers may be gone).
    fn wind_down(&mut self) {
        let parked = std::mem::take(&mut self.parked);
        for (job, waiters) in parked {
            for token in waiters {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if conn.sess.closed {
                    continue;
                }
                let resp = match self.shared.try_complete_await(job) {
                    AwaitDisposition::Ready(r) => r,
                    AwaitDisposition::Pending => Response::Error {
                        code: ErrorCode::UnknownJob,
                        msg: format!("job {job}: server stopped"),
                    },
                };
                conn.sess.wbuf.queue(&resp.encode());
            }
        }
        for _ in 0..100 {
            self.flush_conns();
            if self
                .conns
                .values()
                .all(|c| c.sess.closed || c.sess.wbuf.is_empty())
            {
                break;
            }
            // Writability may need a moment; we are off the epoll loop.
            for c in self.conns.values_mut() {
                c.writable = true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.metrics.reactor_conns.set(0);
    }
}
