//! Job lifecycle state machine, factored out of the reactor/dispatcher.
//!
//! [`JobTable`] owns everything about a job *except* its execution: the
//! id allocator, the per-job state record, the idempotency (dedup) map,
//! deadline/cancellation bookkeeping, and the watchdog sweep that turns
//! elapsed time into state transitions.  It is deliberately free of I/O
//! and threads so the same code runs under the production epoll server
//! (real clock, many threads) and under `romp-sim` (virtual clock, one
//! thread) — the simulator finds bugs here, and the fixes ship to prod.
//!
//! Timekeeping goes through [`mca_platform::Clock`]: a `JobTable` built
//! with `Clock::real()` reads `CLOCK_MONOTONIC`; one built from a
//! `VirtualClock` advances only when the simulation scheduler says so.
//!
//! ## Idempotency window
//!
//! The dedup map is *bounded* (PR 7): at most [`DedupConfig::cap`]
//! terminal entries are retained, and a terminal job's key is evicted
//! [`DedupConfig::ttl_ns`] after it completes even below the cap.  Keys
//! of live (queued/running) jobs are never evicted, so the map size is
//! bounded by `cap + live jobs`.  An evicted key makes a later retry of
//! the same submission look new — that is the documented trade-off for
//! a bounded-memory server, mirrored from the paper's bounded-resource
//! MRAPI design where `mrapi_resources_get` trees are fixed-size.
//!
//! ## The admission race this table fixes
//!
//! The previous implementation inserted the idempotency key *before*
//! queue admission.  A duplicate arriving in that window was answered
//! `Accepted { existing-id }`; if admission then failed (queue full)
//! the staged job and its key were deleted — leaving the duplicate
//! client holding a job id that no longer existed (`UnknownJob`
//! forever, a lost job).  `romp-sim` reproduces this with a cancel-storm
//! seed (see `crates/sim/tests/regression_idem_race.rs`).  The fix:
//! the idempotency entry records whether the job was *admitted*; duplicates of
//! a still-pending entry are answered `Rejected { retry_after_ms }`
//! (retryable — the original may yet be refused), and only admitted
//! entries short-circuit to `Accepted`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use mca_platform::Clock;
use mca_sync::Mutex;
use romp::{CancelReason, CancelToken};

use crate::job::{JobLimits, JobOutcome, JobSpec, JobState};
use crate::queue::QueuedJob;

/// Bounds on the idempotency/dedup map (satellite of PR 7).
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Maximum number of *terminal* entries retained for dedup.
    pub cap: usize,
    /// How long a terminal, unfetched job (and its idem key) is kept.
    pub ttl_ns: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            cap: 4096,
            ttl_ns: 60_000_000_000,
        }
    }
}

/// One idempotency-map entry: the job a key maps to, and whether that
/// job made it past queue admission (see module docs for why).
#[derive(Debug, Clone, Copy)]
struct IdemEntry {
    job: u64,
    admitted: bool,
}

/// Everything the server remembers about one job.
#[derive(Debug)]
struct JobEntry {
    state: JobState,
    outcome: Option<JobOutcome>,
    submitted_ns: u64,
    cancel: CancelToken,
    deadline_ns: Option<u64>,
    cancel_requested_ns: Option<u64>,
    /// Runtime activity counter observed at the last watchdog check.
    activity_at_check: Option<u64>,
    /// Virtual/real time since which no activity progress was seen.
    stalled_since_ns: Option<u64>,
    escalated: bool,
    idem_key: u64,
    /// When the job reached a terminal state (drives TTL eviction).
    terminal_at_ns: Option<u64>,
}

/// Why [`JobTable::stage`] refused a submission.
#[derive(Debug)]
pub enum StageRefusal {
    /// The spec failed validation against the server's limits.
    Invalid(&'static str),
    /// Idempotent duplicate of an already-admitted job: answer
    /// `Accepted` with the original id.
    IdemAdmitted(u64),
    /// Duplicate of a staged-but-not-yet-admitted submission: the
    /// original may still be refused, so the duplicate must be told to
    /// retry rather than handed an id that could evaporate.
    IdemPending,
}

/// Result of [`JobTable::consume`] (the `Fetch` path).
#[derive(Debug)]
pub enum Consumed {
    /// The job was terminal; its outcome is handed over exactly once
    /// and the entry (plus idem key) is gone.
    Result(JobState, JobOutcome),
    /// The job exists but is not terminal yet.
    NotReady(JobState),
    /// No such job.
    Unknown,
}

/// Result of [`JobTable::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// No such job.
    Unknown,
    /// The job was still queued: it is now `Cancelled` (terminal) and
    /// the dispatcher will skip it on pop.
    KilledQueued,
    /// The job was running: its token fired, state is `Cancelling`,
    /// and the watchdog is now responsible for escalation.
    Cancelling,
    /// The job was already terminal (or already cancelling); nothing
    /// changed.  Carries the observed state.
    Unchanged(JobState),
}

/// Timing facts stamped by [`JobTable::finish`], for latency metrics.
#[derive(Debug, Clone, Copy)]
pub struct FinishStamp {
    /// Submit-to-terminal wall time in (possibly virtual) ns.
    pub total_ns: u64,
    /// Cancel-request-to-terminal latency, when a cancel was involved.
    pub cancel_latency_ns: Option<u64>,
}

/// What one watchdog sweep decided (the caller applies side effects:
/// metrics, completion broadcasts, backend poisoning).
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Queued jobs killed because their deadline passed (sorted).
    pub deadline_killed: Vec<u64>,
    /// Running jobs whose deadline fired this sweep (token -> Deadline).
    pub deadline_fired_running: u64,
    /// At most one job per sweep selected for backend escalation
    /// (lowest id among stalled cancelling jobs, for determinism).
    pub escalate: Option<u64>,
    /// Dedup map size after maintenance.
    pub dedup_size: u64,
    /// Idem keys evicted this sweep (TTL + cap overflow).
    pub dedup_evicted: u64,
}

/// The job lifecycle table shared by the production server and the
/// deterministic simulator.  See the module docs.
pub struct JobTable {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    idem: Mutex<HashMap<u64, IdemEntry>>,
    next_id: AtomicU64,
    clock: Clock,
    dedup: DedupConfig,
    evictions: AtomicU64,
    idem_pending_hits: AtomicU64,
    retractions: AtomicU64,
    double_terminal: AtomicU64,
}

impl JobTable {
    /// Build a table reading time from `clock`.
    pub fn new(clock: Clock, dedup: DedupConfig) -> Self {
        JobTable {
            jobs: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            clock,
            dedup,
            evictions: AtomicU64::new(0),
            idem_pending_hits: AtomicU64::new(0),
            retractions: AtomicU64::new(0),
            double_terminal: AtomicU64::new(0),
        }
    }

    /// The clock this table stamps timestamps from.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Times a staged-then-refused submission was retracted.
    pub fn retractions(&self) -> u64 {
        self.retractions.load(Ordering::Relaxed)
    }

    /// Times a duplicate hit a pending (not yet admitted) entry.
    pub fn idem_pending_hits(&self) -> u64 {
        self.idem_pending_hits.load(Ordering::Relaxed)
    }

    /// Times a terminal transition was attempted on an already-terminal
    /// job.  Invariant: must stay 0; `romp-sim` asserts it.
    pub fn double_terminal(&self) -> u64 {
        self.double_terminal.load(Ordering::Relaxed)
    }

    /// Total idem keys evicted by TTL/cap since start.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current dedup-map size.
    pub fn dedup_size(&self) -> usize {
        self.idem.lock().len()
    }

    /// Jobs currently tracked (any state, including unfetched terminal).
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// True when no jobs are tracked.
    pub fn is_empty(&self) -> bool {
        self.jobs.lock().is_empty()
    }

    /// Jobs in a non-terminal state (queued/running/cancelling).
    pub fn live_jobs(&self) -> usize {
        self.jobs
            .lock()
            .values()
            .filter(|e| !e.state.terminal())
            .count()
    }

    /// Validate a submission and stage a [`QueuedJob`] for admission.
    ///
    /// On success the job exists in the table (state `Queued`) and, if
    /// `idem_key != 0`, the dedup map maps the key to it with
    /// `admitted = false`.  The caller MUST then either push the job
    /// into the queue and call [`confirm_admitted`](Self::confirm_admitted),
    /// or call [`retract`](Self::retract) if admission failed.
    #[allow(clippy::too_many_arguments)] // mirrors the Submit wire frame
    pub fn stage(
        &self,
        spec: JobSpec,
        deadline_ms: u32,
        default_deadline_ms: u32,
        limits: &JobLimits,
        idem_key: u64,
        affinity: u64,
        priority: u8,
    ) -> Result<QueuedJob, StageRefusal> {
        if let Err(msg) = spec.validate(limits) {
            return Err(StageRefusal::Invalid(msg));
        }
        if idem_key != 0 {
            if let Some(entry) = self.idem.lock().get(&idem_key) {
                if entry.admitted {
                    return Err(StageRefusal::IdemAdmitted(entry.job));
                }
                self.idem_pending_hits.fetch_add(1, Ordering::Relaxed);
                return Err(StageRefusal::IdemPending);
            }
        }
        let now = self.clock.now_ns();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let effective_deadline = if deadline_ms > 0 {
            deadline_ms
        } else {
            default_deadline_ms
        };
        let deadline_ns =
            (effective_deadline > 0).then(|| now + u64::from(effective_deadline) * 1_000_000);
        let cancel = CancelToken::new();
        self.jobs.lock().insert(
            id,
            JobEntry {
                state: JobState::Queued,
                outcome: None,
                submitted_ns: now,
                cancel: cancel.clone(),
                deadline_ns,
                cancel_requested_ns: None,
                activity_at_check: None,
                stalled_since_ns: None,
                escalated: false,
                idem_key,
                terminal_at_ns: None,
            },
        );
        if idem_key != 0 {
            self.idem.lock().insert(
                idem_key,
                IdemEntry {
                    job: id,
                    admitted: false,
                },
            );
        }
        Ok(QueuedJob {
            id,
            spec,
            enqueued_ns: now,
            cancel,
            deadline_ns,
            affinity,
            priority,
        })
    }

    /// Flip the staged jobs' idem entries to `admitted` after a
    /// successful queue push.  Duplicates arriving from here on are
    /// answered `Accepted` with the original id.
    pub fn confirm_admitted(&self, ids: &[u64]) {
        let keys: Vec<u64> = {
            let jobs = self.jobs.lock();
            ids.iter()
                .filter_map(|id| jobs.get(id).map(|e| e.idem_key).filter(|&k| k != 0))
                .collect()
        };
        if keys.is_empty() {
            return;
        }
        let mut idem = self.idem.lock();
        for key in keys {
            if let Some(entry) = idem.get_mut(&key) {
                entry.admitted = true;
            }
        }
    }

    /// Undo [`stage`](Self::stage) after the queue refused the job:
    /// remove the entry and (if the key still points at it) the idem
    /// mapping, so a retry is a fresh submission.
    pub fn retract(&self, id: u64) {
        let removed = self.jobs.lock().remove(&id);
        if let Some(entry) = removed {
            if entry.idem_key != 0 {
                let mut idem = self.idem.lock();
                if idem.get(&entry.idem_key).is_some_and(|e| e.job == id) {
                    idem.remove(&entry.idem_key);
                }
            }
            self.retractions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observe a job's state without consuming anything.
    pub fn poll(&self, id: u64) -> Option<JobState> {
        self.jobs.lock().get(&id).map(|e| e.state)
    }

    /// Fetch-and-forget: hand the outcome over exactly once.
    pub fn consume(&self, id: u64) -> Consumed {
        let mut jobs = self.jobs.lock();
        match jobs.get(&id) {
            None => Consumed::Unknown,
            Some(e) if !e.state.terminal() => Consumed::NotReady(e.state),
            Some(_) => {
                let entry = jobs.remove(&id).expect("checked above");
                drop(jobs);
                if entry.idem_key != 0 {
                    let mut idem = self.idem.lock();
                    if idem.get(&entry.idem_key).is_some_and(|e| e.job == id) {
                        idem.remove(&entry.idem_key);
                    }
                }
                let outcome = entry.outcome.unwrap_or(JobOutcome {
                    ok: false,
                    wall_us: 0,
                    detail: String::from("terminal without outcome"),
                });
                Consumed::Result(entry.state, outcome)
            }
        }
    }

    /// Request cancellation of a job (client `Cancel` or drain).
    ///
    /// `activity_now` is the runtime activity counter at call time; it
    /// seeds the watchdog's progress detection for running jobs.
    pub fn cancel(&self, id: u64, activity_now: u64) -> CancelOutcome {
        let now = self.clock.now_ns();
        let mut jobs = self.jobs.lock();
        let Some(entry) = jobs.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        match entry.state {
            JobState::Queued => {
                entry.cancel.cancel();
                self.set_terminal(
                    entry,
                    JobState::Cancelled,
                    JobOutcome {
                        ok: false,
                        wall_us: 0,
                        detail: String::from("cancelled while queued"),
                    },
                    now,
                );
                CancelOutcome::KilledQueued
            }
            JobState::Running => {
                entry.cancel.cancel();
                entry.state = JobState::Cancelling;
                entry.cancel_requested_ns = Some(now);
                entry.stalled_since_ns = Some(now);
                entry.activity_at_check = Some(activity_now);
                CancelOutcome::Cancelling
            }
            other => CancelOutcome::Unchanged(other),
        }
    }

    /// Dispatcher claim: `Queued -> Running`.  Returns false when the
    /// job was cancelled/killed while waiting (the dispatcher skips it).
    pub fn begin_run(&self, id: u64) -> bool {
        let mut jobs = self.jobs.lock();
        match jobs.get_mut(&id) {
            Some(e) if e.state == JobState::Queued => {
                e.state = JobState::Running;
                true
            }
            _ => false,
        }
    }

    /// Record a job's terminal state and outcome.  Returns timing facts
    /// for metrics, or `None` if the job vanished or was already
    /// terminal (the latter bumps the `double_terminal` invariant
    /// counter — `romp-sim` asserts it stays 0).
    pub fn finish(&self, id: u64, state: JobState, outcome: JobOutcome) -> Option<FinishStamp> {
        debug_assert!(state.terminal());
        let now = self.clock.now_ns();
        let mut jobs = self.jobs.lock();
        let entry = jobs.get_mut(&id)?;
        if !self.set_terminal(entry, state, outcome, now) {
            return None;
        }
        Some(FinishStamp {
            total_ns: now.saturating_sub(entry.submitted_ns),
            cancel_latency_ns: entry.cancel_requested_ns.map(|t| now.saturating_sub(t)),
        })
    }

    /// One watchdog pass: deadline enforcement, cancel-escalation
    /// selection, and dedup-map maintenance.  Pure decision + state
    /// transition; the caller applies side effects (completion
    /// broadcasts, metrics, backend poisoning).
    ///
    /// Deterministic by construction: map iteration feeds sorted
    /// collections, so the report is identical for identical state
    /// regardless of `HashMap` iteration order.
    pub fn sweep(&self, activity: u64, grace_ns: u64) -> SweepReport {
        let now = self.clock.now_ns();
        let mut report = SweepReport::default();
        let mut escalate: Option<u64> = None;
        let mut expired: Vec<u64> = Vec::new();
        {
            let mut jobs = self.jobs.lock();
            for (&id, entry) in jobs.iter_mut() {
                match entry.state {
                    JobState::Queued if entry.deadline_ns.is_some_and(|d| now >= d) => {
                        entry.cancel.cancel_deadline();
                        self.set_terminal(
                            entry,
                            JobState::TimedOut,
                            JobOutcome {
                                ok: false,
                                wall_us: 0,
                                detail: String::from("deadline exceeded while queued"),
                            },
                            now,
                        );
                        report.deadline_killed.push(id);
                    }
                    JobState::Running
                        if entry.deadline_ns.is_some_and(|d| now >= d)
                            && entry.cancel.cancel_deadline() =>
                    {
                        entry.state = JobState::Cancelling;
                        entry.cancel_requested_ns = Some(now);
                        entry.stalled_since_ns = Some(now);
                        entry.activity_at_check = Some(activity);
                        report.deadline_fired_running += 1;
                    }
                    JobState::Cancelling if !entry.escalated => {
                        if entry.activity_at_check != Some(activity) {
                            // The runtime made progress since we last
                            // looked: the job may yet unwind on its own.
                            entry.activity_at_check = Some(activity);
                            entry.stalled_since_ns = Some(now);
                        } else if entry
                            .stalled_since_ns
                            .is_some_and(|t| now.saturating_sub(t) >= grace_ns)
                        {
                            escalate = Some(escalate.map_or(id, |cur| cur.min(id)));
                        }
                    }
                    _ => {}
                }
                if entry
                    .terminal_at_ns
                    .is_some_and(|t| now.saturating_sub(t) >= self.dedup.ttl_ns.max(1))
                {
                    expired.push(id);
                }
            }
            if let Some(id) = escalate {
                if let Some(e) = jobs.get_mut(&id) {
                    e.escalated = true;
                }
            }
            for &id in &expired {
                jobs.remove(&id);
            }
        }
        report.deadline_killed.sort_unstable();
        report.escalate = escalate;
        self.maintain_dedup(&mut report);
        report
    }

    /// Evict idem keys whose job is gone (TTL above, fetch, retract
    /// races) and, past the cap, the oldest-terminal keys first.
    fn maintain_dedup(&self, report: &mut SweepReport) {
        let snapshot: Vec<(u64, u64)> = self.idem.lock().iter().map(|(&k, e)| (k, e.job)).collect();
        if snapshot.is_empty() {
            return;
        }
        let mut stale: Vec<u64> = Vec::new();
        let mut terminal_backed: Vec<(u64, u64, u64)> = Vec::new(); // (terminal_at, job, key)
        {
            let jobs = self.jobs.lock();
            for &(key, job) in &snapshot {
                match jobs.get(&job) {
                    None => stale.push(key),
                    Some(e) => {
                        if let Some(t) = e.terminal_at_ns {
                            terminal_backed.push((t, job, key));
                        }
                    }
                }
            }
        }
        stale.sort_unstable();
        terminal_backed.sort_unstable();
        let mut evicted = 0u64;
        let mut evicted_jobs: Vec<u64> = Vec::new();
        {
            let mut idem = self.idem.lock();
            for key in stale {
                if idem.remove(&key).is_some() {
                    evicted += 1;
                }
            }
            let cap = self.dedup.cap.max(1);
            let mut excess = idem.len().saturating_sub(cap);
            for &(_, job, key) in &terminal_backed {
                if excess == 0 {
                    break;
                }
                if idem.remove(&key).is_some() {
                    evicted += 1;
                    excess -= 1;
                    evicted_jobs.push(job);
                }
            }
            report.dedup_size = idem.len() as u64;
        }
        if !evicted_jobs.is_empty() {
            // A cap-evicted key's terminal job record goes too: keeping
            // it would let the entry outlive its dedup purpose and
            // leak until TTL.  Fetch after eviction reports UnknownJob,
            // same as fetch after TTL.
            let mut jobs = self.jobs.lock();
            for job in evicted_jobs {
                jobs.remove(&job);
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        report.dedup_evicted = evicted;
    }

    /// Terminal transition guard; returns false (and counts) if the
    /// entry was already terminal.
    fn set_terminal(
        &self,
        entry: &mut JobEntry,
        state: JobState,
        outcome: JobOutcome,
        now_ns: u64,
    ) -> bool {
        if entry.state.terminal() {
            self.double_terminal.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        entry.state = state;
        entry.outcome = Some(outcome);
        entry.terminal_at_ns = Some(now_ns);
        true
    }
}

/// Map a finished job's cancel-token state and raw outcome to its
/// terminal state: a fired token outranks whatever the kernel returned
/// (a cancelled run's partial result must not read as success).
pub fn terminal_for(reason: Option<CancelReason>, outcome: JobOutcome) -> (JobState, JobOutcome) {
    match reason {
        Some(CancelReason::Deadline) => (
            JobState::TimedOut,
            JobOutcome {
                ok: false,
                detail: String::from("deadline exceeded"),
                ..outcome
            },
        ),
        Some(_) => (
            JobState::Cancelled,
            JobOutcome {
                ok: false,
                detail: String::from("cancelled"),
                ..outcome
            },
        ),
        None => {
            let state = if outcome.ok {
                JobState::Done
            } else {
                JobState::Failed
            };
            (state, outcome)
        }
    }
}

/// Back-pressure hint: how long a refused client should wait before
/// retrying, scaled by queue depth and the exec-time EWMA, never below
/// `floor_ms`.
///
/// The floor covers the cold start: before the first job completes the
/// EWMA is 0, and without a floor every early `Rejected` would tell a
/// whole arrival wave to retry in 1 ms — a synchronized stampede at the
/// exact moment the queue is provably full.
pub fn retry_after_hint(ewma_ns: u64, depth: usize, floor_ms: u32) -> u32 {
    let per_job_ms = ewma_ns.max(1_000_000) / 1_000_000;
    let floor = u64::from(floor_ms.max(1)).min(10_000);
    ((depth as u64 + 1) * per_job_ms).clamp(floor, 10_000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_platform::VirtualClock;

    fn spec() -> JobSpec {
        JobSpec::Epcc {
            construct: romp_epcc::Construct::Barrier,
            threads: 2,
            inner_reps: 8,
        }
    }

    fn table(clock: Clock, cap: usize, ttl_ns: u64) -> JobTable {
        JobTable::new(clock, DedupConfig { cap, ttl_ns })
    }

    #[test]
    fn pending_duplicate_is_refused_and_retraction_clears_the_key() {
        let vc = VirtualClock::new(0);
        let t = table(vc.clock(), 16, 1_000_000_000);
        let limits = JobLimits::default();
        let job = t
            .stage(spec(), 0, 0, &limits, 42, 0, 0)
            .expect("first stage");
        // Duplicate while the original is staged but not admitted:
        // must NOT be handed the original's id (the id could evaporate
        // if admission fails — the exact lost-job race this PR fixes).
        match t.stage(spec(), 0, 0, &limits, 42, 0, 0) {
            Err(StageRefusal::IdemPending) => {}
            other => panic!("expected IdemPending, got {other:?}"),
        }
        assert_eq!(t.idem_pending_hits(), 1);
        // Queue refused the original: retract.  The key is free again.
        t.retract(job.id);
        assert_eq!(t.retractions(), 1);
        assert_eq!(t.dedup_size(), 0);
        let retry = t
            .stage(spec(), 0, 0, &limits, 42, 0, 0)
            .expect("retry after retract");
        assert_ne!(retry.id, job.id);
        // After admission confirms, duplicates get the original id.
        t.confirm_admitted(&[retry.id]);
        match t.stage(spec(), 0, 0, &limits, 42, 0, 0) {
            Err(StageRefusal::IdemAdmitted(id)) => assert_eq!(id, retry.id),
            other => panic!("expected IdemAdmitted, got {other:?}"),
        }
    }

    #[test]
    fn ttl_evicts_terminal_entries_and_their_keys() {
        let vc = VirtualClock::new(0);
        let t = table(vc.clock(), 16, 1_000_000);
        let limits = JobLimits::default();
        let job = t.stage(spec(), 0, 0, &limits, 7, 0, 0).expect("stage");
        t.confirm_admitted(&[job.id]);
        assert!(t.begin_run(job.id));
        t.finish(
            job.id,
            JobState::Done,
            JobOutcome {
                ok: true,
                wall_us: 1,
                detail: String::new(),
            },
        );
        // Before TTL: key still dedups, result still fetchable.
        let r0 = t.sweep(0, 1_000_000_000);
        assert_eq!(r0.dedup_evicted, 0);
        assert_eq!(t.dedup_size(), 1);
        // After TTL: both the key and the unfetched result are gone.
        vc.advance_to(2_000_000);
        let r1 = t.sweep(0, 1_000_000_000);
        assert_eq!(r1.dedup_evicted, 1);
        assert_eq!(t.dedup_size(), 0);
        assert!(matches!(t.consume(job.id), Consumed::Unknown));
        assert!(t.is_empty());
    }

    #[test]
    fn cap_evicts_oldest_terminal_first_and_never_live_jobs() {
        let vc = VirtualClock::new(0);
        let t = table(vc.clock(), 2, u64::MAX);
        let limits = JobLimits::default();
        let mut terminal_ids = Vec::new();
        for key in 1..=3u64 {
            vc.advance_to(key * 1_000); // distinct terminal_at stamps
            let job = t.stage(spec(), 0, 0, &limits, key, 0, 0).expect("stage");
            t.confirm_admitted(&[job.id]);
            assert!(t.begin_run(job.id));
            t.finish(
                job.id,
                JobState::Done,
                JobOutcome {
                    ok: true,
                    wall_us: 1,
                    detail: String::new(),
                },
            );
            terminal_ids.push(job.id);
        }
        // One live job: its key must survive any cap pressure.
        let live = t
            .stage(spec(), 0, 0, &limits, 99, 0, 0)
            .expect("stage live");
        t.confirm_admitted(&[live.id]);
        let report = t.sweep(0, 1_000_000_000);
        // 4 keys, cap 2 -> evict 2 oldest-terminal (keys 1 and 2).
        assert_eq!(report.dedup_evicted, 2);
        assert_eq!(t.dedup_size(), 2);
        assert!(matches!(t.consume(terminal_ids[0]), Consumed::Unknown));
        assert!(matches!(t.consume(terminal_ids[1]), Consumed::Unknown));
        assert!(matches!(
            t.consume(terminal_ids[2]),
            Consumed::Result(JobState::Done, _)
        ));
        assert_eq!(t.poll(live.id), Some(JobState::Queued));
        assert_eq!(t.double_terminal(), 0);
    }

    #[test]
    fn sweep_kills_queued_past_deadline_and_escalates_lowest_stalled_id() {
        let vc = VirtualClock::new(0);
        let t = table(vc.clock(), 16, u64::MAX);
        let limits = JobLimits::default();
        let queued = t
            .stage(spec(), 1, 0, &limits, 0, 0, 0)
            .expect("stage queued");
        let run_a = t.stage(spec(), 0, 0, &limits, 0, 0, 0).expect("stage a");
        let run_b = t.stage(spec(), 0, 0, &limits, 0, 0, 0).expect("stage b");
        assert!(t.begin_run(run_a.id));
        assert!(t.begin_run(run_b.id));
        assert_eq!(t.cancel(run_a.id, 5), CancelOutcome::Cancelling);
        assert_eq!(t.cancel(run_b.id, 5), CancelOutcome::Cancelling);
        // Deadline (1 ms) passes; activity counter unchanged at 5.
        vc.advance_to(2_000_000);
        let r = t.sweep(5, 1_000_000);
        assert_eq!(r.deadline_killed, vec![queued.id]);
        assert!(queued.cancel.is_cancelled());
        // Both cancelling jobs stalled the full grace: lowest id wins.
        assert_eq!(r.escalate, Some(run_a.id.min(run_b.id)));
        // Next sweep: the escalated job is not re-picked.
        vc.advance_to(4_000_000);
        let r2 = t.sweep(5, 1_000_000);
        assert_eq!(r2.escalate, Some(run_a.id.max(run_b.id)));
    }
}
