//! # romp-serve — a job-serving front-end for the romp runtime
//!
//! The paper's thesis is that MCA standards let one resource-managed
//! runtime be shared safely across software components.  This crate is
//! the modern serving analogue of that claim: a TCP front-end that turns
//! the runtime into a small multi-tenant compute service.  Concurrent
//! clients submit jobs — the EPCC construct exercises and NPB kernels the
//! reproduction already measures — and every job executes on **one
//! persistent [`romp::Runtime`]**, drawing intra-job parallelism from its
//! work-stealing pool instead of spinning a fresh team per request.
//!
//! The moving parts:
//!
//! * [`protocol`] — a zero-dependency length-prefixed wire protocol
//!   (submit / poll / fetch / await / stats / ping / shutdown), hardened
//!   against malformed and truncated frames;
//! * [`queue`] — the bounded admission queue: a full queue answers
//!   `Rejected { retry_after_ms }` (backpressure), never blocks or grows;
//! * [`reactor`] — the event-driven connection front-end: one epoll loop
//!   (hermetic `extern "C"` bindings, no external crates) multiplexes
//!   every socket edge-triggered, decodes frames incrementally across
//!   partial reads, pipelines many in-flight requests per connection, and
//!   admits each wakeup's submissions as one batch;
//! * [`server`] — admission, idempotency, supervision (deadlines, cancel,
//!   watchdog) and the single dispatcher; graceful drain on `shutdown`
//!   completes every accepted job, quiesces the pool, and reports a
//!   [`DrainReport`];
//! * [`client`] — the blocking client used by `loadgen`, the chaos tests
//!   and the CI smoke, including the split [`Client::send`] /
//!   [`Client::recv`] halves pipelining load generators drive;
//! * [`job`] — job specs, admission limits, and execution on the shared
//!   runtime.
//!
//! Stats responses embed the PR 3 `romp-trace` metrics registry (the
//! `serve.*` counters, gauges and latency histograms) as JSON, so one
//! `stats` request exposes per-endpoint counts, queue depth, and
//! queue/exec/total latency quantiles.
//!
//! Fault tolerance rides the PR 2 machinery: a poisoned MCA backend
//! degrades the *runtime* under the service (MCA→native fallback) while
//! every accepted job still completes — the serving layer never turns a
//! backend fault into a dropped job.
//!
//! ## In-process quick start
//!
//! ```
//! use romp::{BackendKind, Runtime};
//! use romp_serve::{Client, JobSpec, Server, ServeConfig};
//! use romp_epcc::Construct;
//! use std::time::Duration;
//!
//! let rt = Runtime::with_backend(BackendKind::Native).unwrap();
//! let handle = Server::start("127.0.0.1:0", ServeConfig::default(), rt).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let spec = JobSpec::Epcc { construct: Construct::Barrier, threads: 2, inner_reps: 4 };
//! let (job, _rejections) = client
//!     .submit_with_retry(&spec, Duration::from_secs(5))
//!     .unwrap()
//!     .expect("not draining");
//! let outcome = client.wait_result(job, Duration::from_secs(30)).unwrap();
//! assert!(outcome.ok);
//!
//! client.shutdown().unwrap();
//! let report = handle.join();
//! assert_eq!(report.dropped, 0, "graceful drain loses nothing");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod lifecycle;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, SubmitOptions, SubmitOutcome};
pub use job::{DiagSpec, JobLimits, JobOutcome, JobSpec, JobState};
pub use lifecycle::{DedupConfig, JobTable};
pub use metrics::Metrics;
pub use protocol::{ErrorCode, ProtoError, Request, Response, MAX_FRAME};
pub use queue::QueuedJob;
pub use queue::{lane_name, lane_of, JobQueue, PushError, DEFAULT_LANE_WEIGHTS, LANES};
pub use server::{Dispatch, DispatchCtx, DrainReport, ServeConfig, Server, ServerHandle};
pub use session::{ServeCore, Session};
