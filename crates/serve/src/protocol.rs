//! The `romp-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 BE length  |  body (length bytes)      |
//! +----------------+---------------------------+
//!                    body[0] = opcode, rest = payload
//! ```
//!
//! The length counts the body only, must be at least 1 (the opcode) and
//! at most [`MAX_FRAME`]; anything else is a protocol error, reported as
//! a typed [`ProtoError`] — decoding never panics, whatever the bytes.
//! Integers are big-endian; strings are UTF-8 and occupy the rest of the
//! body (every message has at most one string, always last).
//!
//! The protocol is deliberately tiny — five request kinds drive the whole
//! service — and hand-rolled over `std` only, like every other byte
//! format in this workspace (no serde in the hermetic build).

use std::io::{self, Read, Write};

use romp_epcc::Construct;
use romp_npb::{Class, NpbKernel};

use crate::job::{DiagSpec, JobSpec, JobState};

/// Upper bound on a frame body, protecting the peer from hostile or
/// corrupt length prefixes.
pub const MAX_FRAME: usize = 64 * 1024;

/// A malformed frame or payload (the decoding side's typed rejection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame body was empty (no opcode byte).
    EmptyFrame,
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// The body ended before the payload a message of this opcode needs.
    Truncated {
        /// Opcode whose payload was cut short.
        opcode: u8,
    },
    /// An opcode neither side defines.
    UnknownOpcode(u8),
    /// Structurally sound frame with an out-of-range field.
    BadPayload(&'static str),
    /// Bytes left over after a fixed-size payload was fully read.
    TrailingBytes(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::EmptyFrame => write!(f, "empty frame (no opcode)"),
            ProtoError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            ProtoError::Truncated { opcode } => {
                write!(f, "truncated payload for opcode {opcode:#04x}")
            }
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ProtoError::TrailingBytes(op) => {
                write!(f, "trailing bytes after payload of opcode {op:#04x}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job for execution; answered by `Accepted`, `Rejected`
    /// (queue full — retry later) or `Error(Draining)`.
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Per-job deadline in milliseconds from admission; `0` means
        /// "use the server default" (which may itself be none).
        deadline_ms: u32,
        /// Idempotency key: a non-zero key makes resubmission safe — a
        /// second `Submit` carrying the same key returns the original
        /// job id instead of enqueueing a duplicate.  `0` disables it.
        idem_key: u64,
        /// Affinity key: a non-zero key pins the job's tasks to one
        /// runtime shard (the key hashes to a home shard; see
        /// `ShardLayout::shard_for_key`), so related jobs share caches.
        /// `0` means "no preference" and leaves placement to the
        /// spawning worker.
        affinity: u64,
        /// Dispatch priority lane: `0` = Normal (the default — clients
        /// that never set it keep their old service), `1` = Hi
        /// (latency-sensitive; overtakes queued Normal/Batch work under
        /// the weighted pick), `2` and above = Batch (background; never
        /// starved, weights guarantee a share of dispatches).
        priority: u8,
    },
    /// Ask for a job's current [`JobState`].
    Poll {
        /// Job id from `Accepted`.
        job: u64,
    },
    /// Fetch (and consume) a finished job's result.
    Fetch {
        /// Job id from `Accepted`.
        job: u64,
    },
    /// Wait for a job to finish, then fetch (and consume) its result —
    /// the pipelining primitive.  Unlike `Fetch`, a job that has not
    /// finished does **not** answer `NotReady`: the server parks the
    /// request and writes the `JobResult` when the job reaches a terminal
    /// state.  A connection may have any number of parked `Await`s; their
    /// responses arrive in *completion* order, interleaved between the
    /// (request-ordered) responses to other requests, so a pipelining
    /// client correlates them by job id.
    Await {
        /// Job id from `Accepted`.
        job: u64,
    },
    /// Request cancellation of a job.  Queued jobs become `Cancelled`
    /// immediately; running jobs move to `Cancelling` and unwind at the
    /// next cooperative checkpoint.  Answered by `Status` with the state
    /// after the request took effect (terminal jobs report their state
    /// unchanged — cancel is idempotent and never un-finishes a job).
    Cancel {
        /// Job id from `Accepted`.
        job: u64,
    },
    /// Request the server's stats snapshot (JSON).
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: no new submissions; every accepted job still
    /// runs to completion before the server exits.
    Shutdown,
    /// Operator-triggered rolling restart of the worker pool (cluster
    /// mode only).  Workers are cycled one at a time — each is drained of
    /// its in-flight jobs, exited, and respawned before the next — so no
    /// job is lost and capacity never drops by more than one worker.
    /// Answered by [`Response::Restarting`], or `Error(BadPayload)` on a
    /// single-process server (no pool to cycle).
    Restart,
}

/// Error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was malformed.
    BadFrame,
    /// The payload failed validation (limits, unknown enum value).
    BadPayload,
    /// No job with the given id (never accepted, or already fetched).
    UnknownJob,
    /// The server is draining and takes no new submissions.
    Draining,
    /// The job exists but has not finished; poll again.
    NotReady,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::BadPayload => 2,
            ErrorCode::UnknownJob => 3,
            ErrorCode::Draining => 4,
            ErrorCode::NotReady => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadPayload,
            3 => ErrorCode::UnknownJob,
            4 => ErrorCode::Draining,
            5 => ErrorCode::NotReady,
            _ => return Err(ProtoError::BadPayload("unknown error code")),
        })
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Job admitted; use the id with `Poll`/`Fetch`.
    Accepted {
        /// Server-assigned job id.
        job: u64,
    },
    /// Queue full: backpressure.  Retry after the given delay.
    Rejected {
        /// Suggested client backoff before resubmitting, milliseconds.
        retry_after_ms: u32,
    },
    /// Admission-time shed: the predicted queue wait already exceeds the
    /// job's deadline slack, so accepting it would only burn a worker on
    /// a guaranteed deadline kill.  Unlike `Rejected` this is *not* a
    /// retry hint — the job as submitted structurally cannot meet its
    /// deadline under current load; resubmit with a looser deadline, a
    /// higher priority lane, or not at all.
    ShedDeadline {
        /// The server's wait estimate that exceeded the slack, ms.
        predicted_wait_ms: u32,
    },
    /// Answer to `Poll`.
    Status {
        /// The polled job.
        job: u64,
        /// Its current state.
        state: JobState,
    },
    /// Answer to `Fetch`: the job's outcome (the entry is consumed).
    JobResult {
        /// The fetched job.
        job: u64,
        /// Whether the job's own verification passed.
        ok: bool,
        /// Execution wall time, microseconds (queue wait excluded).
        wall_us: u64,
        /// Kernel-specific detail (verification summary).
        detail: String,
    },
    /// Answer to `Stats`: the JSON snapshot.
    Stats {
        /// Stats document (see `Server` docs for the schema).
        json: String,
    },
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Shutdown`: drain has begun.
    Draining {
        /// Jobs accepted but not yet finished; all will complete.
        outstanding: u64,
    },
    /// Answer to `Restart`: the rolling restart has been scheduled.
    Restarting {
        /// Number of workers that will be cycled.
        workers: u64,
    },
    /// A typed refusal.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
}

// ---- opcodes ----

const OP_SUBMIT: u8 = 0x01;
const OP_POLL: u8 = 0x02;
const OP_FETCH: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_PING: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_CANCEL: u8 = 0x07;
const OP_AWAIT: u8 = 0x08;
const OP_RESTART: u8 = 0x09;

const OP_ACCEPTED: u8 = 0x81;
const OP_REJECTED: u8 = 0x82;
const OP_STATUS: u8 = 0x83;
const OP_JOB_RESULT: u8 = 0x84;
const OP_STATS_BODY: u8 = 0x85;
const OP_PONG: u8 = 0x86;
const OP_DRAINING: u8 = 0x87;
const OP_RESTARTING: u8 = 0x88;
const OP_SHED: u8 = 0x89;
const OP_ERROR: u8 = 0x8F;

// ---- byte cursor (decode side) ----

struct Cur<'a> {
    body: &'a [u8],
    off: usize,
    opcode: u8,
}

impl<'a> Cur<'a> {
    fn new(body: &'a [u8], opcode: u8) -> Self {
        Cur {
            body,
            off: 1,
            opcode,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.off + n > self.body.len() {
            return Err(ProtoError::Truncated {
                opcode: self.opcode,
            });
        }
        let s = &self.body[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// The rest of the body as UTF-8 (the one string field, always last).
    fn rest_str(&mut self) -> Result<String, ProtoError> {
        let rest = &self.body[self.off..];
        self.off = self.body.len();
        String::from_utf8(rest.to_vec()).map_err(|_| ProtoError::BadPayload("invalid utf-8"))
    }

    /// Assert the payload was consumed exactly.
    fn finish(self) -> Result<(), ProtoError> {
        if self.off == self.body.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.opcode))
        }
    }
}

// ---- enum <-> u8 tables ----

fn construct_to_u8(c: Construct) -> u8 {
    match c {
        Construct::Parallel => 0,
        Construct::For => 1,
        Construct::ParallelFor => 2,
        Construct::Barrier => 3,
        Construct::Single => 4,
        Construct::Critical => 5,
        Construct::Reduction => 6,
        Construct::Lock => 7,
    }
}

fn construct_from_u8(v: u8) -> Result<Construct, ProtoError> {
    Ok(match v {
        0 => Construct::Parallel,
        1 => Construct::For,
        2 => Construct::ParallelFor,
        3 => Construct::Barrier,
        4 => Construct::Single,
        5 => Construct::Critical,
        6 => Construct::Reduction,
        7 => Construct::Lock,
        _ => return Err(ProtoError::BadPayload("unknown EPCC construct")),
    })
}

fn kernel_to_u8(k: NpbKernel) -> u8 {
    match k {
        NpbKernel::Ep => 0,
        NpbKernel::Cg => 1,
        NpbKernel::Is => 2,
        NpbKernel::Mg => 3,
        NpbKernel::Ft => 4,
    }
}

fn kernel_from_u8(v: u8) -> Result<NpbKernel, ProtoError> {
    Ok(match v {
        0 => NpbKernel::Ep,
        1 => NpbKernel::Cg,
        2 => NpbKernel::Is,
        3 => NpbKernel::Mg,
        4 => NpbKernel::Ft,
        _ => return Err(ProtoError::BadPayload("unknown NPB kernel")),
    })
}

fn class_to_u8(c: Class) -> u8 {
    match c {
        Class::S => 0,
        Class::W => 1,
        Class::A => 2,
    }
}

fn class_from_u8(v: u8) -> Result<Class, ProtoError> {
    Ok(match v {
        0 => Class::S,
        1 => Class::W,
        2 => Class::A,
        _ => return Err(ProtoError::BadPayload("unknown NPB class")),
    })
}

const SPEC_EPCC: u8 = 0;
const SPEC_NPB: u8 = 1;
const SPEC_DIAG: u8 = 2;

const DIAG_PANIC: u8 = 0;
const DIAG_SPIN: u8 = 1;
const DIAG_CRITICAL_LOOP: u8 = 2;

fn encode_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    match spec {
        JobSpec::Epcc {
            construct,
            threads,
            inner_reps,
        } => {
            out.push(SPEC_EPCC);
            out.push(construct_to_u8(*construct));
            out.push(*threads);
            out.extend_from_slice(&inner_reps.to_be_bytes());
        }
        JobSpec::Npb {
            kernel,
            class,
            threads,
        } => {
            out.push(SPEC_NPB);
            out.push(kernel_to_u8(*kernel));
            out.push(class_to_u8(*class));
            out.push(*threads);
        }
        JobSpec::Diag { diag, threads } => {
            out.push(SPEC_DIAG);
            let (tag, ms) = match diag {
                DiagSpec::Panic => (DIAG_PANIC, 0u32),
                DiagSpec::Spin { ms } => (DIAG_SPIN, *ms),
                DiagSpec::CriticalLoop { ms } => (DIAG_CRITICAL_LOOP, *ms),
            };
            out.push(tag);
            out.extend_from_slice(&ms.to_be_bytes());
            out.push(*threads);
        }
    }
}

fn decode_spec(cur: &mut Cur<'_>) -> Result<JobSpec, ProtoError> {
    match cur.u8()? {
        SPEC_EPCC => Ok(JobSpec::Epcc {
            construct: construct_from_u8(cur.u8()?)?,
            threads: cur.u8()?,
            inner_reps: cur.u16()?,
        }),
        SPEC_NPB => Ok(JobSpec::Npb {
            kernel: kernel_from_u8(cur.u8()?)?,
            class: class_from_u8(cur.u8()?)?,
            threads: cur.u8()?,
        }),
        SPEC_DIAG => {
            let tag = cur.u8()?;
            let ms = cur.u32()?;
            let threads = cur.u8()?;
            let diag = match tag {
                DIAG_PANIC => DiagSpec::Panic,
                DIAG_SPIN => DiagSpec::Spin { ms },
                DIAG_CRITICAL_LOOP => DiagSpec::CriticalLoop { ms },
                _ => return Err(ProtoError::BadPayload("unknown diag tag")),
            };
            Ok(JobSpec::Diag { diag, threads })
        }
        _ => Err(ProtoError::BadPayload("unknown job-spec tag")),
    }
}

/// Encode a job spec standalone — the payload romp-cluster carries in a
/// `Dispatch` control message to a worker process.  Same byte layout as
/// the spec portion of a `Submit` frame.
pub fn spec_to_bytes(spec: &JobSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    encode_spec(&mut out, spec);
    out
}

/// Decode a standalone job spec produced by [`spec_to_bytes`].
pub fn spec_from_bytes(bytes: &[u8]) -> Result<JobSpec, ProtoError> {
    let mut cur = Cur {
        body: bytes,
        off: 0,
        opcode: 0,
    };
    let spec = decode_spec(&mut cur)?;
    cur.finish()?;
    Ok(spec)
}

impl Request {
    /// Encode as a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        match self {
            Request::Submit {
                spec,
                deadline_ms,
                idem_key,
                affinity,
                priority,
            } => {
                body.push(OP_SUBMIT);
                body.extend_from_slice(&deadline_ms.to_be_bytes());
                body.extend_from_slice(&idem_key.to_be_bytes());
                body.extend_from_slice(&affinity.to_be_bytes());
                body.push(*priority);
                encode_spec(&mut body, spec);
            }
            Request::Poll { job } => {
                body.push(OP_POLL);
                body.extend_from_slice(&job.to_be_bytes());
            }
            Request::Fetch { job } => {
                body.push(OP_FETCH);
                body.extend_from_slice(&job.to_be_bytes());
            }
            Request::Await { job } => {
                body.push(OP_AWAIT);
                body.extend_from_slice(&job.to_be_bytes());
            }
            Request::Cancel { job } => {
                body.push(OP_CANCEL);
                body.extend_from_slice(&job.to_be_bytes());
            }
            Request::Stats => body.push(OP_STATS),
            Request::Ping => body.push(OP_PING),
            Request::Shutdown => body.push(OP_SHUTDOWN),
            Request::Restart => body.push(OP_RESTART),
        }
        finish_frame(body)
    }

    /// Decode a frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let &opcode = body.first().ok_or(ProtoError::EmptyFrame)?;
        let mut cur = Cur::new(body, opcode);
        let req = match opcode {
            OP_SUBMIT => {
                let deadline_ms = cur.u32()?;
                let idem_key = cur.u64()?;
                let affinity = cur.u64()?;
                let priority = cur.u8()?;
                Request::Submit {
                    spec: decode_spec(&mut cur)?,
                    deadline_ms,
                    idem_key,
                    affinity,
                    priority,
                }
            }
            OP_POLL => Request::Poll { job: cur.u64()? },
            OP_FETCH => Request::Fetch { job: cur.u64()? },
            OP_AWAIT => Request::Await { job: cur.u64()? },
            OP_CANCEL => Request::Cancel { job: cur.u64()? },
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            OP_RESTART => Request::Restart,
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        cur.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode as a complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            Response::Accepted { job } => {
                body.push(OP_ACCEPTED);
                body.extend_from_slice(&job.to_be_bytes());
            }
            Response::Rejected { retry_after_ms } => {
                body.push(OP_REJECTED);
                body.extend_from_slice(&retry_after_ms.to_be_bytes());
            }
            Response::ShedDeadline { predicted_wait_ms } => {
                body.push(OP_SHED);
                body.extend_from_slice(&predicted_wait_ms.to_be_bytes());
            }
            Response::Status { job, state } => {
                body.push(OP_STATUS);
                body.extend_from_slice(&job.to_be_bytes());
                body.push(state.to_u8());
            }
            Response::JobResult {
                job,
                ok,
                wall_us,
                detail,
            } => {
                body.push(OP_JOB_RESULT);
                body.extend_from_slice(&job.to_be_bytes());
                body.push(u8::from(*ok));
                body.extend_from_slice(&wall_us.to_be_bytes());
                body.extend_from_slice(truncate_str(detail).as_bytes());
            }
            Response::Stats { json } => {
                body.push(OP_STATS_BODY);
                body.extend_from_slice(truncate_str(json).as_bytes());
            }
            Response::Pong => body.push(OP_PONG),
            Response::Draining { outstanding } => {
                body.push(OP_DRAINING);
                body.extend_from_slice(&outstanding.to_be_bytes());
            }
            Response::Restarting { workers } => {
                body.push(OP_RESTARTING);
                body.extend_from_slice(&workers.to_be_bytes());
            }
            Response::Error { code, msg } => {
                body.push(OP_ERROR);
                body.push(code.to_u8());
                body.extend_from_slice(truncate_str(msg).as_bytes());
            }
        }
        finish_frame(body)
    }

    /// Decode a frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let &opcode = body.first().ok_or(ProtoError::EmptyFrame)?;
        let mut cur = Cur::new(body, opcode);
        let resp = match opcode {
            OP_ACCEPTED => Response::Accepted { job: cur.u64()? },
            OP_REJECTED => Response::Rejected {
                retry_after_ms: cur.u32()?,
            },
            OP_SHED => Response::ShedDeadline {
                predicted_wait_ms: cur.u32()?,
            },
            OP_STATUS => Response::Status {
                job: cur.u64()?,
                state: JobState::from_u8(cur.u8()?)
                    .ok_or(ProtoError::BadPayload("unknown job state"))?,
            },
            OP_JOB_RESULT => Response::JobResult {
                job: cur.u64()?,
                ok: cur.u8()? != 0,
                wall_us: cur.u64()?,
                detail: cur.rest_str()?,
            },
            OP_STATS_BODY => Response::Stats {
                json: cur.rest_str()?,
            },
            OP_PONG => Response::Pong,
            OP_DRAINING => Response::Draining {
                outstanding: cur.u64()?,
            },
            OP_RESTARTING => Response::Restarting {
                workers: cur.u64()?,
            },
            OP_ERROR => Response::Error {
                code: ErrorCode::from_u8(cur.u8()?)?,
                msg: cur.rest_str()?,
            },
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        cur.finish()?;
        Ok(resp)
    }
}

/// Cap a string field so the frame stays under [`MAX_FRAME`] (fields
/// before the string never exceed 32 bytes).
fn truncate_str(s: &str) -> &str {
    let limit = MAX_FRAME - 64;
    if s.len() <= limit {
        return s;
    }
    // Back off to a char boundary.
    let mut end = limit;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn finish_frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Read one frame body from `r`.
///
/// * `Ok(Some(body))` — a complete frame;
/// * `Ok(None)` — clean EOF at a frame boundary (peer closed);
/// * `Err(FrameError::Proto)` — a hostile length prefix (oversized or
///   zero); the connection should be dropped, the stream is out of sync;
/// * `Err(FrameError::Io)` — transport error, including EOF mid-frame
///   (`UnexpectedEof`), i.e. a truncated frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first-byte read so EOF *between* frames is clean.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..]).map_err(FrameError::Io)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(FrameError::Proto(ProtoError::EmptyFrame));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Proto(ProtoError::Oversized(len)));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    Ok(Some(body))
}

/// Write one already-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// What [`read_frame`] can fail with.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including truncation mid-frame).
    Io(io::Error),
    /// A length prefix the protocol forbids.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_sync::SmallRng;

    fn arb_spec(rng: &mut SmallRng) -> JobSpec {
        match rng.next_u64() % 3 {
            0 => JobSpec::Epcc {
                construct: construct_from_u8((rng.next_u64() % 8) as u8).unwrap(),
                threads: (rng.gen_range(1, 33)) as u8,
                inner_reps: rng.gen_range(1, 4097) as u16,
            },
            1 => JobSpec::Npb {
                kernel: kernel_from_u8((rng.next_u64() % 5) as u8).unwrap(),
                class: class_from_u8((rng.next_u64() % 3) as u8).unwrap(),
                threads: (rng.gen_range(1, 33)) as u8,
            },
            _ => JobSpec::Diag {
                diag: match rng.next_u64() % 3 {
                    0 => DiagSpec::Panic,
                    1 => DiagSpec::Spin {
                        ms: rng.next_u64() as u32,
                    },
                    _ => DiagSpec::CriticalLoop {
                        ms: rng.next_u64() as u32,
                    },
                },
                threads: (rng.gen_range(1, 33)) as u8,
            },
        }
    }

    fn arb_string(rng: &mut SmallRng) -> String {
        let len = rng.gen_index(0, 64);
        (0..len)
            .map(|_| char::from_u32(rng.gen_range(0x20, 0x7F) as u32).unwrap())
            .collect()
    }

    fn arb_request(rng: &mut SmallRng) -> Request {
        match rng.next_u64() % 9 {
            0 => Request::Submit {
                spec: arb_spec(rng),
                deadline_ms: rng.next_u64() as u32,
                idem_key: rng.next_u64(),
                affinity: rng.next_u64(),
                priority: rng.next_u64() as u8,
            },
            1 => Request::Poll {
                job: rng.next_u64(),
            },
            2 => Request::Fetch {
                job: rng.next_u64(),
            },
            3 => Request::Cancel {
                job: rng.next_u64(),
            },
            4 => Request::Await {
                job: rng.next_u64(),
            },
            5 => Request::Stats,
            6 => Request::Ping,
            7 => Request::Shutdown,
            _ => Request::Restart,
        }
    }

    fn arb_response(rng: &mut SmallRng) -> Response {
        match rng.next_u64() % 10 {
            0 => Response::Accepted {
                job: rng.next_u64(),
            },
            1 => Response::Rejected {
                retry_after_ms: rng.next_u64() as u32,
            },
            2 => Response::Status {
                job: rng.next_u64(),
                state: JobState::from_u8((rng.next_u64() % 7) as u8).unwrap(),
            },
            3 => Response::JobResult {
                job: rng.next_u64(),
                ok: rng.next_u64().is_multiple_of(2),
                wall_us: rng.next_u64(),
                detail: arb_string(rng),
            },
            4 => Response::Stats {
                json: arb_string(rng),
            },
            5 => Response::Pong,
            6 => Response::Draining {
                outstanding: rng.next_u64(),
            },
            7 => Response::Error {
                code: ErrorCode::from_u8(1 + (rng.next_u64() % 5) as u8).unwrap(),
                msg: arb_string(rng),
            },
            8 => Response::ShedDeadline {
                predicted_wait_ms: rng.next_u64() as u32,
            },
            _ => Response::Restarting {
                workers: rng.next_u64(),
            },
        }
    }

    /// Strip the length prefix of an encoded frame.
    fn body(frame: &[u8]) -> &[u8] {
        &frame[4..]
    }

    #[test]
    fn request_roundtrip_property() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
        for _ in 0..2_000 {
            let req = arb_request(&mut rng);
            let frame = req.encode();
            let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len, frame.len() - 4);
            assert_eq!(Request::decode(body(&frame)), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip_property() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
        for _ in 0..2_000 {
            let resp = arb_response(&mut rng);
            let frame = resp.encode();
            assert_eq!(Response::decode(body(&frame)), Ok(resp.clone()), "{resp:?}");
        }
    }

    /// Random byte soup must produce typed errors, never a panic.
    #[test]
    fn random_bytes_never_panic_decoders() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
        for _ in 0..10_000 {
            let len = rng.gen_index(0, 40);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }

    /// Truncating any valid frame at every split point must produce a
    /// typed error (or, for a shorter valid prefix, never a panic).
    #[test]
    fn truncated_frames_yield_typed_errors() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0004);
        for _ in 0..200 {
            let req = arb_request(&mut rng);
            let frame = req.encode();
            let b = body(&frame);
            for cut in 0..b.len() {
                let _ = Request::decode(&b[..cut]);
            }
            // And through the framed reader: a cut byte stream is an
            // UnexpectedEof, not a panic or a bogus frame.
            for cut in 0..frame.len() {
                let mut r = io::Cursor::new(&frame[..cut]);
                match read_frame(&mut r) {
                    Ok(None) => assert_eq!(cut, 0, "only an empty stream is clean EOF"),
                    Ok(Some(_)) => panic!("cut {cut} of {} parsed", frame.len()),
                    Err(FrameError::Io(e)) => {
                        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof)
                    }
                    Err(FrameError::Proto(_)) => {}
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        assert_eq!(
            Request::decode(&[OP_PING, 0xAA]),
            Err(ProtoError::TrailingBytes(OP_PING))
        );
    }

    #[test]
    fn oversized_and_empty_prefixes_rejected() {
        let mut r = io::Cursor::new(((MAX_FRAME + 1) as u32).to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Proto(ProtoError::Oversized(_)))
        ));
        let mut r = io::Cursor::new(0u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Proto(ProtoError::EmptyFrame))
        ));
    }

    #[test]
    fn frame_reader_roundtrips_a_pipelined_stream() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0005);
        let reqs: Vec<Request> = (0..50).map(|_| arb_request(&mut rng)).collect();
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&r.encode());
        }
        let mut cur = io::Cursor::new(stream);
        let mut seen = Vec::new();
        while let Some(b) = read_frame(&mut cur).unwrap() {
            seen.push(Request::decode(&b).unwrap());
        }
        assert_eq!(seen, reqs);
    }

    #[test]
    fn long_strings_are_truncated_to_fit() {
        let resp = Response::Stats {
            json: "x".repeat(MAX_FRAME * 2),
        };
        let frame = resp.encode();
        assert!(frame.len() <= MAX_FRAME + 4);
        let decoded = Response::decode(body(&frame)).unwrap();
        match decoded {
            Response::Stats { json } => assert_eq!(json.len(), MAX_FRAME - 64),
            other => panic!("unexpected {other:?}"),
        }
    }
}
