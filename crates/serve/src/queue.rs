//! The admission-controlled job queue: priority lanes + EDF order.
//!
//! A bounded queue between the connection handlers (producers) and the
//! dispatcher (consumer).  Admission is a *non-blocking* `try_push`: a
//! full queue refuses immediately — the server turns the refusal into a
//! `Rejected { retry_after_ms }` response so backpressure reaches the
//! client as a retry hint instead of an ever-growing queue or a hung
//! connection.  `close()` starts the drain: producers are refused from
//! then on, while the consumer keeps popping until the queue is empty,
//! which is exactly the "no accepted job is ever dropped" guarantee.
//!
//! ## Dispatch order
//!
//! Internally the queue is **three priority lanes** (Hi / Normal /
//! Batch, selected by the submit frame's `priority` byte), each an
//! **EDF min-heap**: earliest absolute deadline first, jobs without a
//! deadline last, equal keys broken by admission order (a global
//! sequence number), so the old FIFO behavior is exactly preserved for
//! same-lane deadline-free traffic.
//!
//! Across lanes the consumer picks by **weighted credits** (default
//! Hi:4 / Normal:2 / Batch:1): each lane starts a round with credits
//! equal to its weight, the pop takes the highest-priority non-empty
//! lane that still has credits (spending one), and when every non-empty
//! lane is out of credits the round resets.  Hi traffic therefore
//! preempts the *order* but can never starve Batch: with weights
//! `[h, n, b]` a queued Batch job is dispatched within `h + n` pops
//! even under saturating Hi load.
//!
//! [`JobQueue::predicted_wait_jobs`] models that pick for admission
//! control: how many queued jobs will be served before a new arrival in
//! a given lane, accounting for the fact that a Hi job overtakes the
//! Batch backlog (a naive `depth × EWMA` estimate would shed Hi jobs
//! precisely when the lanes exist to protect them).

use std::collections::BinaryHeap;

use mca_sync::{Condvar, Mutex};
use romp::CancelToken;

use crate::job::JobSpec;

/// Number of priority lanes (Hi / Normal / Batch).
pub const LANES: usize = 3;

/// Default lane weights for the credit-based pick: Hi / Normal / Batch.
pub const DEFAULT_LANE_WEIGHTS: [u32; LANES] = [4, 2, 1];

/// Map a submit-frame `priority` byte to a lane index.
///
/// `0` is Normal (the wire default, so pre-priority clients keep their
/// old middle-of-the-road service), `1` is Hi, and everything else is
/// Batch — unknown higher bytes degrade to background service rather
/// than jumping the queue.
pub fn lane_of(priority: u8) -> usize {
    match priority {
        1 => 0,
        0 => 1,
        _ => 2,
    }
}

/// Human label for a lane index (metrics/JSON key suffix).
pub fn lane_name(lane: usize) -> &'static str {
    match lane {
        0 => "hi",
        1 => "normal",
        _ => "batch",
    }
}

/// One accepted job riding the queue.
///
/// Timestamps are nanoseconds on the server's [`mca_platform::Clock`] —
/// `CLOCK_MONOTONIC` in production, the virtual clock under `romp-sim` —
/// so the queue itself never reads a wall clock.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// When admission succeeded, clock-ns (queue-wait latency basis).
    pub enqueued_ns: u64,
    /// The job's cancel token, shared with the registry entry so a
    /// `Cancel` request or the watchdog can reach the job wherever it is.
    pub cancel: CancelToken,
    /// Absolute deadline, clock-ns (admission time + requested or default
    /// budget); `None` when the job runs unbounded.
    pub deadline_ns: Option<u64>,
    /// Affinity key from the submit frame; non-zero pins the job's tasks
    /// to one runtime shard (the dispatcher arms it around execution).
    /// `0` = no preference.
    pub affinity: u64,
    /// Priority byte from the submit frame (`0` = Normal, `1` = Hi,
    /// `2+` = Batch); selects the dispatch lane via [`lane_of`].
    pub priority: u8,
}

/// Why `try_push` refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: back off and retry.
    Full,
    /// Draining: no new work, ever.
    Closed,
}

/// What a [`JobQueue::try_push_batch`] admitted (see that method).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAdmit {
    /// How many jobs (a prefix of the batch, in order) were admitted.
    pub admitted: usize,
    /// Queue depth after the batch.
    pub depth: usize,
    /// Whether the refusals (if any) were due to the queue being closed
    /// rather than full — the caller maps those to a `Draining` error
    /// instead of a retryable `Rejected`.
    pub closed: bool,
}

/// Heap entry: EDF key (deadline-ns, `u64::MAX` when unbounded) with a
/// global admission sequence number as the FIFO tiebreak.
struct LaneEntry {
    key: u64,
    seq: u64,
    job: QueuedJob,
}

impl PartialEq for LaneEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for LaneEntry {}
impl PartialOrd for LaneEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LaneEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest deadline
        // (then the earliest admission) pops first.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

struct QueueInner {
    lanes: [BinaryHeap<LaneEntry>; LANES],
    credits: [u32; LANES],
    seq: u64,
    closed: bool,
}

impl QueueInner {
    fn len(&self) -> usize {
        self.lanes.iter().map(BinaryHeap::len).sum()
    }

    fn push(&mut self, job: QueuedJob) {
        let key = job.deadline_ns.unwrap_or(u64::MAX);
        let seq = self.seq;
        self.seq += 1;
        self.lanes[lane_of(job.priority)].push(LaneEntry { key, seq, job });
    }

    /// The weighted-credit pick (see module docs).  `weights` lives on
    /// the (immutable) queue; credits are per-round state under the lock.
    fn pop(&mut self, weights: &[u32; LANES]) -> Option<QueuedJob> {
        if self.lanes.iter().all(BinaryHeap::is_empty) {
            return None;
        }
        let lane = match (0..LANES).find(|&l| self.credits[l] > 0 && !self.lanes[l].is_empty()) {
            Some(l) => l,
            None => {
                // Every non-empty lane exhausted its round: start a new one.
                self.credits = *weights;
                (0..LANES)
                    .find(|&l| !self.lanes[l].is_empty())
                    .expect("some lane is non-empty")
            }
        };
        self.credits[lane] = self.credits[lane].saturating_sub(1);
        self.lanes[lane].pop().map(|e| e.job)
    }
}

/// The bounded MPSC job queue (see module docs).
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    cap: usize,
    weights: [u32; LANES],
}

impl JobQueue {
    /// A queue admitting at most `cap` jobs (`cap >= 1`), with the
    /// default lane weights.
    pub fn new(cap: usize) -> Self {
        Self::with_weights(cap, DEFAULT_LANE_WEIGHTS)
    }

    /// A queue with explicit Hi/Normal/Batch lane weights (each clamped
    /// to at least 1 so no lane can be configured into starvation).
    pub fn with_weights(cap: usize, weights: [u32; LANES]) -> Self {
        let weights = weights.map(|w| w.max(1));
        JobQueue {
            inner: Mutex::new(QueueInner {
                lanes: Default::default(),
                credits: weights,
                seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            weights,
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The configured Hi/Normal/Batch lane weights.
    pub fn weights(&self) -> [u32; LANES] {
        self.weights
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Jobs currently queued, per lane (Hi / Normal / Batch).
    pub fn lane_depths(&self) -> [usize; LANES] {
        let inner = self.inner.lock();
        [
            inner.lanes[0].len(),
            inner.lanes[1].len(),
            inner.lanes[2].len(),
        ]
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many queued jobs the weighted pick will serve *before* a job
    /// that enters the lane selected by `priority` right now.
    ///
    /// All `d_L` jobs already in the arrival's own lane go first (EDF
    /// within a lane is at worst FIFO for the newcomer).  Draining those
    /// `d_L + 1` jobs takes `ceil((d_L + 1) / w_L)` credit rounds, and in
    /// each round every *other* lane `M` may serve up to `w_M` of its
    /// queued jobs — but never more than it has.  The sum is the overtake
    /// bound the admission-time shed check multiplies by the service-time
    /// EWMA.
    pub fn predicted_wait_jobs(&self, priority: u8) -> u64 {
        let inner = self.inner.lock();
        let lane = lane_of(priority);
        let d_l = inner.lanes[lane].len() as u64;
        let w_l = u64::from(self.weights[lane]);
        let rounds = (d_l + 1).div_ceil(w_l);
        let mut wait = d_l;
        for m in 0..LANES {
            if m != lane {
                let d_m = inner.lanes[m].len() as u64;
                wait += d_m.min(rounds * u64::from(self.weights[m]));
            }
        }
        wait
    }

    /// Non-blocking admission.  Returns the depth *after* the push.
    pub fn try_push(&self, job: QueuedJob) -> Result<usize, PushError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.push(job);
        let depth = inner.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Batched admission: push as large a prefix of `jobs` as fits, under
    /// **one** lock acquisition and with **one** consumer wakeup — the
    /// amortization the reactor relies on when a single poll wakeup
    /// decodes many pipelined submissions.  Admission order is preserved
    /// (each admitted job takes the next global sequence number), so
    /// per-connection FIFO still holds within a lane for deadline-free
    /// traffic.  Jobs beyond the admitted prefix are dropped here; the
    /// caller still owns their ids and unwinds its own bookkeeping.
    pub fn try_push_batch(&self, jobs: Vec<QueuedJob>) -> BatchAdmit {
        let n = jobs.len();
        let mut inner = self.inner.lock();
        if inner.closed {
            return BatchAdmit {
                admitted: 0,
                depth: inner.len(),
                closed: true,
            };
        }
        let room = self.cap.saturating_sub(inner.len());
        let admitted = n.min(room);
        for job in jobs.into_iter().take(admitted) {
            inner.push(job);
        }
        let depth = inner.len();
        drop(inner);
        if admitted > 0 {
            // One consumer (the dispatcher); it drains without re-waiting
            // while the queue is non-empty, so one wakeup covers the batch.
            self.cv.notify_one();
        }
        BatchAdmit {
            admitted,
            depth,
            closed: false,
        }
    }

    /// Consumer side: block for the next job.  `None` means the queue is
    /// closed *and* fully drained — the dispatcher's exit signal.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.pop(&self.weights) {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Non-blocking consumer pop (the simulator's dispatcher model —
    /// a virtual-time event loop cannot block in `pop`).  `None` means
    /// "empty right now", with no closed/open distinction.
    pub fn try_pop(&self) -> Option<QueuedJob> {
        self.inner.lock().pop(&self.weights)
    }

    /// Begin the drain: refuse producers, let the consumer run dry.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }

    /// Whether `close()` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp_epcc::Construct;
    use std::sync::Arc;

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec::Epcc {
                construct: Construct::Barrier,
                threads: 2,
                inner_reps: 1,
            },
            enqueued_ns: 0,
            cancel: CancelToken::new(),
            deadline_ns: None,
            affinity: 0,
            priority: 0,
        }
    }

    fn job_at(id: u64, priority: u8, deadline_ns: Option<u64>) -> QueuedJob {
        QueuedJob {
            priority,
            deadline_ns,
            ..job(id)
        }
    }

    #[test]
    fn admission_refuses_when_full_without_blocking() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(job(1)), Ok(1));
        assert_eq!(q.try_push(job(2)), Ok(2));
        assert_eq!(q.try_push(job(3)).unwrap_err(), PushError::Full);
        assert_eq!(q.len(), 2, "refused push did not enqueue");
        // Draining one slot re-admits.
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.try_push(job(4)), Ok(2));
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = JobQueue::new(8);
        q.try_push(job(1)).unwrap();
        q.try_push(job(2)).unwrap();
        q.close();
        assert_eq!(q.try_push(job(3)).unwrap_err(), PushError::Closed);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none(), "drained and closed");
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn batch_admission_takes_a_prefix_and_reports_closure() {
        let q = JobQueue::new(3);
        q.try_push(job(1)).unwrap();
        let res = q.try_push_batch(vec![job(2), job(3), job(4), job(5)]);
        assert_eq!(
            res,
            BatchAdmit {
                admitted: 2,
                depth: 3,
                closed: false
            }
        );
        // Prefix order preserved; the overflow (4, 5) never enqueued.
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.is_empty());
        q.close();
        let res = q.try_push_batch(vec![job(6)]);
        assert!(res.closed);
        assert_eq!(res.admitted, 0);
    }

    #[test]
    fn fifo_order_is_preserved_under_concurrency() {
        let q = Arc::new(JobQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        while q.try_push(job(p * 1000 + i)).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut last_per_producer = [None::<u64>; 4];
        let mut total = 0;
        while let Some(j) = q.pop() {
            let p = (j.id / 1000) as usize;
            let seq = j.id % 1000;
            if let Some(prev) = last_per_producer[p] {
                assert!(seq > prev, "per-producer FIFO holds");
            }
            last_per_producer[p] = Some(seq);
            total += 1;
        }
        assert_eq!(total, 400);
    }

    #[test]
    fn edf_orders_by_deadline_within_a_lane() {
        let q = JobQueue::new(8);
        q.try_push(job_at(1, 0, None)).unwrap();
        q.try_push(job_at(2, 0, Some(900))).unwrap();
        q.try_push(job_at(3, 0, Some(100))).unwrap();
        q.try_push(job_at(4, 0, Some(500))).unwrap();
        // Earliest deadline first; the unbounded job last.
        assert_eq!(q.try_pop().unwrap().id, 3);
        assert_eq!(q.try_pop().unwrap().id, 4);
        assert_eq!(q.try_pop().unwrap().id, 2);
        assert_eq!(q.try_pop().unwrap().id, 1);
    }

    #[test]
    fn equal_deadlines_break_ties_in_admission_order() {
        let q = JobQueue::new(8);
        for id in 1..=5u64 {
            q.try_push(job_at(id, 0, Some(777))).unwrap();
        }
        for id in 1..=5u64 {
            assert_eq!(q.try_pop().unwrap().id, id, "FIFO tiebreak");
        }
    }

    #[test]
    fn hi_lane_overtakes_batch_backlog() {
        let q = JobQueue::new(16);
        for id in 1..=6u64 {
            q.try_push(job_at(id, 2, None)).unwrap();
        }
        q.try_push(job_at(100, 1, None)).unwrap();
        assert_eq!(q.lane_depths(), [1, 0, 6]);
        assert_eq!(q.try_pop().unwrap().id, 100, "Hi jumps the Batch backlog");
    }

    #[test]
    fn batch_is_never_starved_by_saturating_hi_load() {
        // Property: with weights [h, n, b], a queued Batch job is
        // dispatched within h + n pops even when the Hi lane is refilled
        // after every pop.  Sweep a few weight configurations.
        for weights in [[4, 2, 1], [1, 1, 1], [8, 3, 2]] {
            let q = JobQueue::with_weights(1024, weights);
            let k = (weights[0] + weights[1]) as usize;
            q.try_push(job_at(9999, 2, None)).unwrap();
            let mut next_hi = 1u64;
            for _ in 0..k {
                q.try_push(job_at(next_hi, 1, None)).unwrap();
                next_hi += 1;
            }
            let mut hi_dispatches = 0usize;
            loop {
                let j = q.try_pop().expect("queue never empty here");
                if j.id == 9999 {
                    break;
                }
                hi_dispatches += 1;
                assert!(
                    hi_dispatches <= k,
                    "batch job starved past {k} pops (weights {weights:?})"
                );
                // Keep the Hi lane saturated.
                q.try_push(job_at(next_hi, 1, None)).unwrap();
                next_hi += 1;
            }
        }
    }

    #[test]
    fn predicted_wait_accounts_for_lane_overtake() {
        let q = JobQueue::new(64);
        for id in 0..30u64 {
            q.try_push(job_at(id, 2, None)).unwrap();
        }
        // A Hi arrival into an empty Hi lane waits for at most one round
        // of other-lane credits, not the whole Batch backlog.
        let hi = q.predicted_wait_jobs(1);
        assert!(hi <= 3, "hi wait {hi} should ignore the batch backlog");
        // A Batch arrival waits behind its whole lane.
        let batch = q.predicted_wait_jobs(2);
        assert!(batch >= 30, "batch wait {batch} sees its own backlog");
        // Empty queue: nothing ahead regardless of lane.
        let empty = JobQueue::new(8);
        assert_eq!(empty.predicted_wait_jobs(0), 0);
        assert_eq!(empty.predicted_wait_jobs(1), 0);
        assert_eq!(empty.predicted_wait_jobs(2), 0);
    }

    #[test]
    fn lane_mapping_is_stable() {
        assert_eq!(lane_of(1), 0, "priority 1 = Hi");
        assert_eq!(lane_of(0), 1, "priority 0 = Normal (wire default)");
        assert_eq!(lane_of(2), 2, "priority 2 = Batch");
        assert_eq!(lane_of(255), 2, "unknown priorities degrade to Batch");
        assert_eq!(lane_name(0), "hi");
        assert_eq!(lane_name(1), "normal");
        assert_eq!(lane_name(2), "batch");
    }
}
