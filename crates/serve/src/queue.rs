//! The admission-controlled job queue.
//!
//! A bounded FIFO between the connection handlers (producers) and the
//! dispatcher (consumer).  Admission is a *non-blocking* `try_push`: a
//! full queue refuses immediately — the server turns the refusal into a
//! `Rejected { retry_after_ms }` response so backpressure reaches the
//! client as a retry hint instead of an ever-growing queue or a hung
//! connection.  `close()` starts the drain: producers are refused from
//! then on, while the consumer keeps popping until the queue is empty,
//! which is exactly the "no accepted job is ever dropped" guarantee.

use std::collections::VecDeque;

use mca_sync::{Condvar, Mutex};
use romp::CancelToken;

use crate::job::JobSpec;

/// One accepted job riding the queue.
///
/// Timestamps are nanoseconds on the server's [`mca_platform::Clock`] —
/// `CLOCK_MONOTONIC` in production, the virtual clock under `romp-sim` —
/// so the queue itself never reads a wall clock.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// When admission succeeded, clock-ns (queue-wait latency basis).
    pub enqueued_ns: u64,
    /// The job's cancel token, shared with the registry entry so a
    /// `Cancel` request or the watchdog can reach the job wherever it is.
    pub cancel: CancelToken,
    /// Absolute deadline, clock-ns (admission time + requested or default
    /// budget); `None` when the job runs unbounded.
    pub deadline_ns: Option<u64>,
    /// Affinity key from the submit frame; non-zero pins the job's tasks
    /// to one runtime shard (the dispatcher arms it around execution).
    /// `0` = no preference.
    pub affinity: u64,
}

/// Why `try_push` refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: back off and retry.
    Full,
    /// Draining: no new work, ever.
    Closed,
}

/// What a [`JobQueue::try_push_batch`] admitted (see that method).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAdmit {
    /// How many jobs (a prefix of the batch, in order) were admitted.
    pub admitted: usize,
    /// Queue depth after the batch.
    pub depth: usize,
    /// Whether the refusals (if any) were due to the queue being closed
    /// rather than full — the caller maps those to a `Draining` error
    /// instead of a retryable `Rejected`.
    pub closed: bool,
}

struct QueueInner {
    q: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded MPSC job queue (see module docs).
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    cap: usize,
}

impl JobQueue {
    /// A queue admitting at most `cap` jobs (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                q: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission.  Returns the depth *after* the push.
    pub fn try_push(&self, job: QueuedJob) -> Result<usize, PushError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.q.push_back(job);
        let depth = inner.q.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Batched admission: push as large a prefix of `jobs` as fits, under
    /// **one** lock acquisition and with **one** consumer wakeup — the
    /// amortization the reactor relies on when a single poll wakeup
    /// decodes many pipelined submissions.  Order is preserved (and so is
    /// per-connection FIFO, since each reactor batches in frame order).
    /// Jobs beyond the admitted prefix are dropped here; the caller still
    /// owns their ids and unwinds its own bookkeeping.
    pub fn try_push_batch(&self, jobs: Vec<QueuedJob>) -> BatchAdmit {
        let n = jobs.len();
        let mut inner = self.inner.lock();
        if inner.closed {
            return BatchAdmit {
                admitted: 0,
                depth: inner.q.len(),
                closed: true,
            };
        }
        let room = self.cap.saturating_sub(inner.q.len());
        let admitted = n.min(room);
        for job in jobs.into_iter().take(admitted) {
            inner.q.push_back(job);
        }
        let depth = inner.q.len();
        drop(inner);
        if admitted > 0 {
            // One consumer (the dispatcher); it drains without re-waiting
            // while the queue is non-empty, so one wakeup covers the batch.
            self.cv.notify_one();
        }
        BatchAdmit {
            admitted,
            depth,
            closed: false,
        }
    }

    /// Consumer side: block for the next job.  `None` means the queue is
    /// closed *and* fully drained — the dispatcher's exit signal.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.q.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Non-blocking consumer pop (the simulator's dispatcher model —
    /// a virtual-time event loop cannot block in `pop`).  `None` means
    /// "empty right now", with no closed/open distinction.
    pub fn try_pop(&self) -> Option<QueuedJob> {
        self.inner.lock().q.pop_front()
    }

    /// Begin the drain: refuse producers, let the consumer run dry.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }

    /// Whether `close()` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp_epcc::Construct;
    use std::sync::Arc;

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec::Epcc {
                construct: Construct::Barrier,
                threads: 2,
                inner_reps: 1,
            },
            enqueued_ns: 0,
            cancel: CancelToken::new(),
            deadline_ns: None,
            affinity: 0,
        }
    }

    #[test]
    fn admission_refuses_when_full_without_blocking() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(job(1)), Ok(1));
        assert_eq!(q.try_push(job(2)), Ok(2));
        assert_eq!(q.try_push(job(3)).unwrap_err(), PushError::Full);
        assert_eq!(q.len(), 2, "refused push did not enqueue");
        // Draining one slot re-admits.
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.try_push(job(4)), Ok(2));
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = JobQueue::new(8);
        q.try_push(job(1)).unwrap();
        q.try_push(job(2)).unwrap();
        q.close();
        assert_eq!(q.try_push(job(3)).unwrap_err(), PushError::Closed);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none(), "drained and closed");
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn batch_admission_takes_a_prefix_and_reports_closure() {
        let q = JobQueue::new(3);
        q.try_push(job(1)).unwrap();
        let res = q.try_push_batch(vec![job(2), job(3), job(4), job(5)]);
        assert_eq!(
            res,
            BatchAdmit {
                admitted: 2,
                depth: 3,
                closed: false
            }
        );
        // Prefix order preserved; the overflow (4, 5) never enqueued.
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.is_empty());
        q.close();
        let res = q.try_push_batch(vec![job(6)]);
        assert!(res.closed);
        assert_eq!(res.admitted, 0);
    }

    #[test]
    fn fifo_order_is_preserved_under_concurrency() {
        let q = Arc::new(JobQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        while q.try_push(job(p * 1000 + i)).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut last_per_producer = [None::<u64>; 4];
        let mut total = 0;
        while let Some(j) = q.pop() {
            let p = (j.id / 1000) as usize;
            let seq = j.id % 1000;
            if let Some(prev) = last_per_producer[p] {
                assert!(seq > prev, "per-producer FIFO holds");
            }
            last_per_producer[p] = Some(seq);
            total += 1;
        }
        assert_eq!(total, 400);
    }
}
