//! The TCP front-end and its dispatcher.
//!
//! Architecture (DESIGN.md §5.7): connection handlers are plain blocking
//! threads — they only parse frames and touch shared state, so thread-
//! per-*connection* is cheap — while all **compute** funnels through one
//! bounded queue into a single dispatcher thread that runs each job on
//! the one persistent [`Runtime`].  Intra-job parallelism comes from the
//! runtime's work-stealing pool; the server never spins up a team per
//! request, so sixteen concurrent clients contend on an admission
//! decision, not on sixteen rival thread pools.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mca_sync::Mutex;
use romp::{CancelReason, CancelToken, Runtime};
use romp_trace::{json_escape, Counter, Gauge, Histogram};

use crate::job::{execute, JobLimits, JobOutcome, JobSpec, JobState};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, ProtoError, Request, Response,
};
use crate::queue::{JobQueue, PushError, QueuedJob};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on jobs queued awaiting dispatch (admission control).
    pub queue_cap: usize,
    /// Per-job limits enforced at submission.
    pub limits: JobLimits,
    /// Deadline applied to jobs that do not request one, milliseconds
    /// from admission; `0` means unbounded (the default — supervision is
    /// strictly opt-in, so an unconfigured server behaves as before).
    pub default_deadline_ms: u32,
    /// How often the watchdog samples job wall-time and worker progress.
    pub watchdog_interval_ms: u64,
    /// How long a cancelled job may show *no* worker progress before the
    /// watchdog escalates to poisoning the backend (forcing wedged MRAPI
    /// waits onto the native fallback).
    pub escalation_grace_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
            default_deadline_ms: 0,
            watchdog_interval_ms: 5,
            escalation_grace_ms: 250,
        }
    }
}

/// Cached metric instruments (resolved once; bumped lock-free).
struct Metrics {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    invalid: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    timed_out: Arc<Counter>,
    idem_hits: Arc<Counter>,
    proto_errors: Arc<Counter>,
    req_submit: Arc<Counter>,
    req_poll: Arc<Counter>,
    req_fetch: Arc<Counter>,
    req_cancel: Arc<Counter>,
    req_stats: Arc<Counter>,
    req_ping: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_peak: Arc<Gauge>,
    lat_queue: Arc<Histogram>,
    lat_exec: Arc<Histogram>,
    lat_total: Arc<Histogram>,
    lat_handle: Arc<Histogram>,
    wd_ticks: Arc<Counter>,
    wd_deadline_fired: Arc<Counter>,
    wd_escalations: Arc<Counter>,
    wd_cancel_latency: Arc<Histogram>,
}

impl Metrics {
    fn new(rt: &Runtime) -> Self {
        let reg = rt.tracer().metrics();
        Metrics {
            accepted: reg.counter("serve.submit.accepted"),
            rejected: reg.counter("serve.submit.rejected"),
            invalid: reg.counter("serve.submit.invalid"),
            completed: reg.counter("serve.jobs.completed"),
            failed: reg.counter("serve.jobs.failed"),
            cancelled: reg.counter("serve.jobs.cancelled"),
            timed_out: reg.counter("serve.jobs.timed_out"),
            idem_hits: reg.counter("serve.submit.idem_hits"),
            proto_errors: reg.counter("serve.proto.errors"),
            req_submit: reg.counter("serve.req.submit"),
            req_poll: reg.counter("serve.req.poll"),
            req_fetch: reg.counter("serve.req.fetch"),
            req_cancel: reg.counter("serve.req.cancel"),
            req_stats: reg.counter("serve.req.stats"),
            req_ping: reg.counter("serve.req.ping"),
            queue_depth: reg.gauge("serve.queue.depth"),
            queue_peak: reg.gauge("serve.queue.peak"),
            lat_queue: reg.histogram_ns("serve.latency.queue_ns"),
            lat_exec: reg.histogram_ns("serve.latency.exec_ns"),
            lat_total: reg.histogram_ns("serve.latency.total_ns"),
            lat_handle: reg.histogram_ns("serve.latency.handle_ns"),
            wd_ticks: reg.counter("watchdog.ticks"),
            wd_deadline_fired: reg.counter("watchdog.deadline_fired"),
            wd_escalations: reg.counter("watchdog.escalations"),
            wd_cancel_latency: reg.histogram_ns("watchdog.cancel_latency_ns"),
        }
    }
}

struct JobEntry {
    state: JobState,
    outcome: Option<JobOutcome>,
    submitted: Instant,
    /// Shared with the queued copy; firing it reaches the job wherever
    /// it is (queued, running, mid-unwind).
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// When the cancel (client or deadline) was requested — basis of the
    /// cancel-latency histogram.
    cancel_requested_at: Option<Instant>,
    /// Watchdog bookkeeping: the runtime activity value last seen for
    /// this job, and since when it has been flat.
    activity_at_check: Option<u64>,
    stalled_since: Option<Instant>,
    /// Whether the watchdog already escalated this job (escalate once).
    escalated: bool,
    /// Client idempotency key (`0` = none); cleaned from the dedup map
    /// when the result is fetched.
    idem_key: u64,
}

struct Shared {
    rt: Runtime,
    cfg: ServeConfig,
    queue: JobQueue,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Idempotency-key → job-id dedup map (see [`crate::Request::Submit`]).
    idem: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    stopped: AtomicBool,
    /// Tells the watchdog thread to exit (set during [`ServerHandle::join`]).
    wd_stop: AtomicBool,
    metrics: Metrics,
    /// EWMA of job execution time, nanoseconds — the retry-after basis.
    exec_ewma_ns: AtomicU64,
}

impl Shared {
    /// Jobs accepted but not yet finished.
    fn outstanding(&self) -> u64 {
        let accepted = self.metrics.accepted.get();
        let done = self.metrics.completed.get()
            + self.metrics.failed.get()
            + self.metrics.cancelled.get()
            + self.metrics.timed_out.get();
        accepted.saturating_sub(done)
    }

    /// The backpressure hint: how long a refused client should wait for
    /// a queue slot to likely open — the queue's current length times the
    /// smoothed per-job service time.
    fn retry_after_ms(&self) -> u32 {
        let ewma_ns = self.exec_ewma_ns.load(Ordering::Relaxed).max(1_000_000);
        let depth = self.queue.len() as u64 + 1;
        ((depth * ewma_ns) / 1_000_000).clamp(1, 10_000) as u32
    }

    fn note_exec_time(&self, ns: u64) {
        // EWMA with alpha = 1/8; seeded by the first sample.
        let prev = self.exec_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 8 + ns / 8
        };
        self.exec_ewma_ns.store(next, Ordering::Relaxed);
    }

    fn stats_json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"backend\":\"{}\",\"degraded\":{},\"draining\":{},\
             \"queue_depth\":{},\"queue_cap\":{},\"outstanding\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"cancelled\":{},\"timed_out\":{},\
             \"metrics\":{}}}",
            json_escape(self.rt.backend_kind().label()),
            self.rt.degraded(),
            self.draining.load(Ordering::Acquire),
            self.queue.len(),
            self.queue.cap(),
            self.outstanding(),
            m.accepted.get(),
            m.rejected.get(),
            m.completed.get(),
            m.failed.get(),
            m.cancelled.get(),
            m.timed_out.get(),
            self.rt.tracer().metrics().snapshot().to_json(),
        )
    }
}

/// What the drained server reports when it exits (the CI smoke asserts
/// `dropped == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs admitted over the server's lifetime.
    pub accepted: u64,
    /// Jobs finished with passing verification.
    pub completed: u64,
    /// Jobs finished with failing verification (panics included).
    pub failed: u64,
    /// Jobs that reached the `Cancelled` terminal state.
    pub cancelled: u64,
    /// Jobs that reached the `TimedOut` terminal state.
    pub timed_out: u64,
    /// Submissions refused by admission control (backpressure worked).
    pub rejected: u64,
    /// Malformed frames/payloads refused.
    pub proto_errors: u64,
    /// Accepted jobs that never reached a terminal state.  **Always zero
    /// on a graceful drain** — every accepted job ends as exactly one of
    /// completed / failed / cancelled / timed-out.
    pub dropped: u64,
}

impl DrainReport {
    /// Render as a one-object JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
             \"timed_out\":{},\"rejected\":{},\"proto_errors\":{},\"dropped\":{}}}",
            self.accepted,
            self.completed,
            self.failed,
            self.cancelled,
            self.timed_out,
            self.rejected,
            self.proto_errors,
            self.dropped
        )
    }
}

/// A running server.  Obtain with [`Server::start`]; drive with a
/// [`crate::Client`]; finish with [`ServerHandle::join`].
pub struct Server;

/// Handle to a started server: its bound address and the join path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    watchdog: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept and dispatcher threads over the given runtime.
    ///
    /// The runtime is *shared*: the caller may keep a clone (it is a
    /// cheap handle) to inspect degradation or drain traces while the
    /// server runs; all jobs execute on its one persistent pool.
    pub fn start(addr: &str, cfg: ServeConfig, rt: Runtime) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = Metrics::new(&rt);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            jobs: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            wd_stop: AtomicBool::new(false),
            metrics,
            exec_ewma_ns: AtomicU64::new(0),
            cfg,
            rt,
        });

        let disp_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&disp_shared))?;

        let wd_shared = Arc::clone(&shared);
        let watchdog = std::thread::Builder::new()
            .name("serve-watchdog".into())
            .spawn(move || watchdog_loop(&wd_shared))?;

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(ServerHandle {
            addr: local,
            shared,
            accept,
            dispatcher,
            watchdog,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared runtime (cheap clone of the handle).
    pub fn runtime(&self) -> Runtime {
        self.shared.rt.clone()
    }

    /// The live stats document (same JSON a `Stats` request returns).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Begin the drain without a wire request (equivalent to a client
    /// sending `Shutdown`).
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
    }

    /// Wait for the graceful drain to finish and tear the server down.
    ///
    /// Blocks until a `Shutdown` request (or [`ServerHandle::request_drain`])
    /// has closed the queue **and** the dispatcher has finished every
    /// accepted job; then quiesces the runtime pool, stops the accept
    /// loop, and reports the final accounting.
    pub fn join(self) -> DrainReport {
        let _ = self.dispatcher.join();
        // Every accepted job has run; let trailing region epilogues finish
        // before reporting (the PR 3 pool-quiescence hook).
        self.shared.rt.quiesce();
        self.shared.wd_stop.store(true, Ordering::Release);
        let _ = self.watchdog.join();
        self.shared.stopped.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let m = &self.shared.metrics;
        let accepted = m.accepted.get();
        let completed = m.completed.get();
        let failed = m.failed.get();
        let cancelled = m.cancelled.get();
        let timed_out = m.timed_out.get();
        DrainReport {
            accepted,
            completed,
            failed,
            cancelled,
            timed_out,
            rejected: m.rejected.get(),
            proto_errors: m.proto_errors.get(),
            dropped: accepted.saturating_sub(completed + failed + cancelled + timed_out),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stopped.load(Ordering::Acquire) {
                    return;
                }
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_shared));
            }
            Err(_) if shared.stopped.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

/// One connection: read frames, answer them, until the peer closes or
/// the framing desynchronizes.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) => return, // clean close
            Err(FrameError::Proto(e)) => {
                // Hostile length prefix: answer once, then drop the
                // connection — the byte stream cannot be trusted again.
                shared.metrics.proto_errors.incr();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    msg: e.to_string(),
                };
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
            Err(FrameError::Io(_)) => return, // truncated/reset mid-frame
        };
        let t0 = Instant::now();
        let resp = match Request::decode(&body) {
            Ok(req) => handle_request(&shared, req),
            Err(e) => {
                // Frame boundaries are intact; the payload is bad.  Answer
                // and keep the connection — the next frame may be fine.
                shared.metrics.proto_errors.incr();
                Response::Error {
                    code: match e {
                        ProtoError::BadPayload(_) => ErrorCode::BadPayload,
                        _ => ErrorCode::BadFrame,
                    },
                    msg: e.to_string(),
                }
            }
        };
        shared
            .metrics
            .lat_handle
            .record(t0.elapsed().as_nanos() as u64);
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Submit {
            spec,
            deadline_ms,
            idem_key,
        } => handle_submit(shared, spec, deadline_ms, idem_key),
        Request::Cancel { job } => handle_cancel(shared, job),
        Request::Poll { job } => {
            shared.metrics.req_poll.incr();
            match shared.jobs.lock().get(&job) {
                Some(entry) => Response::Status {
                    job,
                    state: entry.state,
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Fetch { job } => {
            shared.metrics.req_fetch.incr();
            let mut jobs = shared.jobs.lock();
            // Take the entry out and decide with ownership in hand — no
            // check-then-unwrap: an entry without an outcome goes straight
            // back into the table.
            match jobs.remove(&job) {
                Some(JobEntry {
                    outcome: Some(out),
                    idem_key,
                    ..
                }) => {
                    drop(jobs);
                    if idem_key != 0 {
                        // The idempotency window closes at fetch: a later
                        // resubmit with the same key is a new job.
                        let mut idem = shared.idem.lock();
                        if idem.get(&idem_key) == Some(&job) {
                            idem.remove(&idem_key);
                        }
                    }
                    Response::JobResult {
                        job,
                        ok: out.ok,
                        wall_us: out.wall_us,
                        detail: out.detail,
                    }
                }
                Some(entry) => {
                    jobs.insert(job, entry);
                    Response::Error {
                        code: ErrorCode::NotReady,
                        msg: format!("job {job} still pending"),
                    }
                }
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Stats => {
            shared.metrics.req_stats.incr();
            Response::Stats {
                json: shared.stats_json(),
            }
        }
        Request::Ping => {
            shared.metrics.req_ping.incr();
            Response::Pong
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.queue.close();
            Response::Draining {
                outstanding: shared.outstanding(),
            }
        }
    }
}

fn handle_submit(shared: &Shared, spec: JobSpec, deadline_ms: u32, idem_key: u64) -> Response {
    shared.metrics.req_submit.incr();
    if shared.draining.load(Ordering::Acquire) {
        return Response::Error {
            code: ErrorCode::Draining,
            msg: "server is draining".into(),
        };
    }
    if let Err(why) = spec.validate(&shared.cfg.limits) {
        shared.metrics.invalid.incr();
        return Response::Error {
            code: ErrorCode::BadPayload,
            msg: why.into(),
        };
    }
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let now = Instant::now();
    let budget_ms = if deadline_ms > 0 {
        deadline_ms
    } else {
        shared.cfg.default_deadline_ms
    };
    let deadline = (budget_ms > 0).then(|| now + Duration::from_millis(u64::from(budget_ms)));
    let cancel = CancelToken::new();
    // Insert the table entry *before* the queue push so a client that
    // polls immediately after `Accepted` always finds the job; remove it
    // again if admission refuses.
    shared.jobs.lock().insert(
        id,
        JobEntry {
            state: JobState::Queued,
            outcome: None,
            submitted: now,
            cancel: cancel.clone(),
            deadline,
            cancel_requested_at: None,
            activity_at_check: None,
            stalled_since: None,
            escalated: false,
            idem_key,
        },
    );
    if idem_key != 0 {
        // Claim the key after the table entry exists (so a racing
        // duplicate that wins the claim can immediately poll the id) but
        // before the push (so no two same-key submits both enqueue).
        use std::collections::hash_map::Entry;
        match shared.idem.lock().entry(idem_key) {
            Entry::Occupied(o) => {
                let existing = *o.get();
                shared.jobs.lock().remove(&id);
                shared.metrics.idem_hits.incr();
                return Response::Accepted { job: existing };
            }
            Entry::Vacant(v) => {
                v.insert(id);
            }
        }
    }
    let refuse = |shared: &Shared| {
        shared.jobs.lock().remove(&id);
        if idem_key != 0 {
            let mut idem = shared.idem.lock();
            if idem.get(&idem_key) == Some(&id) {
                idem.remove(&idem_key);
            }
        }
    };
    match shared.queue.try_push(QueuedJob {
        id,
        spec,
        enqueued: now,
        cancel,
        deadline,
    }) {
        Ok(depth) => {
            shared.metrics.accepted.incr();
            shared.metrics.queue_depth.set(depth as u64);
            shared.metrics.queue_peak.record_max(depth as u64);
            Response::Accepted { job: id }
        }
        Err(PushError::Full) => {
            refuse(shared);
            shared.metrics.rejected.incr();
            Response::Rejected {
                retry_after_ms: shared.retry_after_ms(),
            }
        }
        Err(PushError::Closed) => {
            refuse(shared);
            Response::Error {
                code: ErrorCode::Draining,
                msg: "server is draining".into(),
            }
        }
    }
}

/// Apply a cancel request: queued jobs die in place, running jobs get
/// their token fired and unwind at the next checkpoint, terminal jobs are
/// left alone (cancel is idempotent).  Always answers with the job's
/// state after the request took effect.
fn handle_cancel(shared: &Shared, job: u64) -> Response {
    shared.metrics.req_cancel.incr();
    let mut jobs = shared.jobs.lock();
    let Some(entry) = jobs.get_mut(&job) else {
        return Response::Error {
            code: ErrorCode::UnknownJob,
            msg: format!("job {job}"),
        };
    };
    let state = match entry.state {
        JobState::Queued => {
            // Fire the token anyway: the dispatcher may have already
            // popped the job, and a fired token stops it pre-fork.
            entry.cancel.cancel();
            entry.state = JobState::Cancelled;
            entry.outcome = Some(JobOutcome {
                ok: false,
                wall_us: 0,
                detail: "cancelled while queued".into(),
            });
            shared.metrics.cancelled.incr();
            JobState::Cancelled
        }
        JobState::Running => {
            entry.cancel.cancel();
            entry.state = JobState::Cancelling;
            let now = Instant::now();
            entry.cancel_requested_at = Some(now);
            entry.stalled_since = Some(now);
            entry.activity_at_check = Some(shared.rt.activity());
            JobState::Cancelling
        }
        // Cancelling already, or terminal: nothing to do.
        s => s,
    };
    Response::Status { job, state }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The dispatcher: the queue's single consumer, running every job on the
/// shared runtime's persistent pool.  Exits only when the queue is closed
/// *and* empty — i.e. after the graceful drain has finished every
/// accepted job (to completion or to a supervised kill).
///
/// Every job runs under `catch_unwind`: a panicking kernel becomes a
/// `Failed` job carrying the panic message, never a dead dispatcher.
fn dispatch_loop(shared: &Shared) {
    while let Some(qjob) = shared.queue.pop() {
        let started = Instant::now();
        shared
            .metrics
            .lat_queue
            .record(started.duration_since(qjob.enqueued).as_nanos() as u64);
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        {
            let mut jobs = shared.jobs.lock();
            match jobs.get_mut(&qjob.id) {
                // Cancelled (or deadline-killed) while queued: already
                // terminal with an outcome — skip without running.
                Some(entry) if entry.state.terminal() => continue,
                Some(entry) => entry.state = JobState::Running,
                // Terminal *and* fetched already; nothing left to do.
                None => continue,
            }
        }
        // Arm the runtime with this job's token so every region the job
        // forks — including ones nested inside kernels — checks it.
        shared.rt.set_cancel_token(Some(qjob.cancel.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&shared.rt, &qjob.spec)
        }));
        shared.rt.set_cancel_token(None);
        let exec_ns = started.elapsed().as_nanos() as u64;
        shared.metrics.lat_exec.record(exec_ns);
        shared.note_exec_time(exec_ns);
        let (state, outcome) = match result {
            Err(payload) => {
                // The pool has already contained the unwind (each member
                // runs under its own net); quiesce so trailing region
                // epilogues finish before the next job is dispatched.
                shared.rt.quiesce();
                (
                    JobState::Failed,
                    JobOutcome {
                        ok: false,
                        wall_us: exec_ns / 1_000,
                        detail: format!("panicked: {}", panic_message(payload.as_ref())),
                    },
                )
            }
            // A fired token outranks the outcome `execute` assembled: the
            // job's regions unwound, so whatever it returned is partial.
            Ok(out) => match qjob.cancel.reason() {
                Some(CancelReason::Deadline) => (
                    JobState::TimedOut,
                    JobOutcome {
                        ok: false,
                        wall_us: out.wall_us,
                        detail: "deadline exceeded".into(),
                    },
                ),
                Some(CancelReason::Requested) => (
                    JobState::Cancelled,
                    JobOutcome {
                        ok: false,
                        wall_us: out.wall_us,
                        detail: "cancelled".into(),
                    },
                ),
                None if out.ok => (JobState::Done, out),
                None => (JobState::Failed, out),
            },
        };
        match state {
            JobState::Done => shared.metrics.completed.incr(),
            JobState::Cancelled => shared.metrics.cancelled.incr(),
            JobState::TimedOut => shared.metrics.timed_out.incr(),
            _ => shared.metrics.failed.incr(),
        }
        let mut jobs = shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&qjob.id) {
            shared
                .metrics
                .lat_total
                .record(entry.submitted.elapsed().as_nanos() as u64);
            if let Some(t) = entry.cancel_requested_at {
                shared
                    .metrics
                    .wd_cancel_latency
                    .record(t.elapsed().as_nanos() as u64);
            }
            entry.state = state;
            entry.outcome = Some(outcome);
        }
    }
}

/// The watchdog: every tick it fires deadlines, watches cancelled jobs
/// unwind, and escalates the ones that don't.
///
/// Escalation is progress-aware: a cancelled job whose workers are still
/// reaching synchronization constructs ([`Runtime::activity`] advancing)
/// is unwinding and is left alone; one that is flat for the configured
/// grace is wedged somewhere with no cooperative checkpoint — in
/// practice, inside a persistently failing MRAPI primitive — and the
/// backend is poisoned so the wedged wait flips to the native fallback at
/// its next timeout lap, after which the job unwinds normally.
fn watchdog_loop(shared: &Shared) {
    let tick = Duration::from_millis(shared.cfg.watchdog_interval_ms.max(1));
    let grace = Duration::from_millis(shared.cfg.escalation_grace_ms.max(1));
    while !shared.wd_stop.load(Ordering::Acquire) {
        shared.metrics.wd_ticks.incr();
        let now = Instant::now();
        let activity = shared.rt.activity();
        let mut escalate = None;
        {
            let mut jobs = shared.jobs.lock();
            for (&id, entry) in jobs.iter_mut() {
                match entry.state {
                    JobState::Queued if entry.deadline.is_some_and(|d| now >= d) => {
                        // Kill in place: the dispatcher skips terminal
                        // entries when it eventually pops this job.
                        entry.cancel.cancel_deadline();
                        entry.state = JobState::TimedOut;
                        entry.outcome = Some(JobOutcome {
                            ok: false,
                            wall_us: 0,
                            detail: "deadline exceeded while queued".into(),
                        });
                        shared.metrics.wd_deadline_fired.incr();
                        shared.metrics.timed_out.incr();
                    }
                    JobState::Running
                        if entry.deadline.is_some_and(|d| now >= d)
                            && entry.cancel.cancel_deadline() =>
                    {
                        entry.state = JobState::Cancelling;
                        entry.cancel_requested_at = Some(now);
                        entry.stalled_since = Some(now);
                        entry.activity_at_check = Some(activity);
                        shared.metrics.wd_deadline_fired.incr();
                    }
                    JobState::Cancelling if !entry.escalated => {
                        if entry.activity_at_check != Some(activity) {
                            // Workers still reaching constructs: the job is
                            // unwinding (or finishing); restart the clock.
                            entry.activity_at_check = Some(activity);
                            entry.stalled_since = Some(now);
                        } else if entry
                            .stalled_since
                            .is_some_and(|t| now.duration_since(t) >= grace)
                        {
                            entry.escalated = true;
                            escalate = Some(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(id) = escalate {
            // Outside the jobs lock: poisoning takes backend-internal locks.
            if shared
                .rt
                .poison_backend(&format!("watchdog: job {id} unresponsive to cancellation"))
            {
                // Complete the escalation: swap the fallback in now rather
                // than at the next region boundary, so the degradation is
                // immediately visible and later jobs never touch the
                // poisoned backend at all.
                shared.rt.heal_backend_now();
                shared.metrics.wd_escalations.incr();
            }
        }
        std::thread::sleep(tick);
    }
}
