//! The TCP front-end and its dispatcher.
//!
//! Architecture (DESIGN.md §5.9): connections live on one (or a few)
//! event-driven **reactor** threads — non-blocking sockets multiplexed by
//! `epoll` ([`crate::reactor`]) — while all **compute** funnels through
//! one bounded queue into a single dispatcher thread that runs each job
//! on the one persistent [`Runtime`].  Intra-job parallelism comes from
//! the runtime's work-stealing pool; the server never spins up a team —
//! or a thread — per request, so sixty-four concurrent clients contend on
//! an admission decision, not on sixty-four rival connection threads
//! thrashing the compute pool.
//!
//! Since PR 7 the protocol-to-job-table *policy* lives in
//! [`crate::session`] (the [`ServeCore`] provided methods) and the job
//! lifecycle state machine in [`crate::lifecycle`] — both shared with
//! the deterministic simulator `romp-sim`, which drives them on a
//! virtual clock.  This module keeps what is irreducibly production:
//! the TCP listener, the real threads (reactors, dispatcher, watchdog),
//! and the [`Runtime`] binding.  Job completions flow back to the
//! reactors over per-reactor mailboxes (`Shared::complete_job`) so
//! parked `Await`s answer the moment a job turns terminal.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mca_platform::Clock;
use romp::Runtime;
use romp_trace::json_escape;

use std::collections::HashMap;

use mca_sync::Mutex;

use crate::job::{execute, JobLimits, JobOutcome, JobState};
use crate::lifecycle::{terminal_for, DedupConfig, JobTable};
use crate::metrics::Metrics;
use crate::queue::{lane_name, JobQueue, QueuedJob, DEFAULT_LANE_WEIGHTS, LANES};
use crate::reactor::{Mailbox, Reactor};
use crate::session::ServeCore;

/// Where the dispatcher sends admitted jobs: the seam that lets
/// `romp-cluster` replace the in-process execution loop with routing to
/// a pool of worker processes, while admission, the job table, the
/// watchdog and the reactors stay untouched.
///
/// The implementation's [`run`](Dispatch::run) plays the role of
/// the built-in dispatch loop: pop jobs through the [`DispatchCtx`] until the
/// queue closes and every accepted job has been completed via
/// [`DispatchCtx::complete`] — the zero-dropped-jobs drain contract is
/// the implementor's to keep.
pub trait Dispatch: Send + Sync + 'static {
    /// The dispatcher body; called once on the `serve-dispatch` thread.
    /// Must not return until the queue is closed **and** every popped
    /// job has been completed.
    fn run(&self, ctx: DispatchCtx);

    /// The watchdog found `job` unresponsive to cancellation past the
    /// escalation grace.  Return `true` if the dispatcher took an
    /// escalating action (e.g. killed the worker process running it).
    fn escalate(&self, job: u64) -> bool {
        let _ = job;
        false
    }

    /// Operator-triggered rolling restart; `Some(n)` = scheduled across
    /// `n` workers.  `None` = unsupported.
    fn rolling_restart(&self) -> Option<u64> {
        None
    }

    /// Extra stats spliced into the `Stats` JSON under `"cluster"`.
    fn stats_json(&self) -> Option<String> {
        None
    }

    /// Shared-memory result slots still held after the drain (leak
    /// detector; reported in the [`DrainReport`]).
    fn rmem_leaked(&self) -> u64 {
        0
    }
}

/// The dispatcher's window into the serving stack, handed to
/// [`Dispatch::run`].  Wraps the queue/table/metrics so an external
/// dispatcher observes exactly the bookkeeping the in-process loop does.
#[derive(Clone)]
pub struct DispatchCtx {
    shared: Arc<Shared>,
}

impl DispatchCtx {
    /// Pop the next admitted job (blocking), recording queue-wait
    /// latency and depth.  `None` means the queue is closed and empty —
    /// the drain signal; finish outstanding work and return from `run`.
    pub fn pop(&self) -> Option<QueuedJob> {
        let qjob = self.shared.queue.pop()?;
        let now = self.shared.table.clock().now_ns();
        self.shared
            .metrics
            .lat_queue
            .record(now.saturating_sub(qjob.enqueued_ns));
        self.shared
            .metrics
            .queue_depth
            .set(self.shared.queue.len() as u64);
        self.shared.set_lane_depths();
        Some(qjob)
    }

    /// Transition `job` to `Running`.  `false` means it turned terminal
    /// while queued (cancel / queued-deadline kill) — skip it; whoever
    /// killed it already completed it.
    pub fn begin_run(&self, job: u64) -> bool {
        self.shared.table.begin_run(job)
    }

    /// Record a popped job's terminal state: metrics, the global and
    /// per-class EWMAs feeding admission backpressure and the shed gate
    /// (`label` is the job's [`crate::JobSpec::label`]; a zero `exec_ns`
    /// — a job that never ran — leaves the class EWMA untouched), the
    /// table entry, and the completion broadcast that answers parked
    /// `Await`s.  Call exactly once per job that
    /// [`begin_run`](DispatchCtx::begin_run) admitted.
    pub fn complete(
        &self,
        job: u64,
        label: &str,
        state: JobState,
        outcome: JobOutcome,
        exec_ns: u64,
    ) {
        self.shared.metrics.lat_exec.record(exec_ns);
        self.shared.note_exec_time(exec_ns);
        if exec_ns > 0 {
            self.shared.note_class_exec_time(label, exec_ns);
        }
        self.shared.finish_job(job, state, outcome);
    }

    /// The server's shared runtime handle (cheap clone) — the metrics
    /// registry lives on its tracer.
    pub fn runtime(&self) -> Runtime {
        self.shared.rt.clone()
    }

    /// Current clock nanoseconds (the table's clock).
    pub fn now_ns(&self) -> u64 {
        self.shared.table.clock().now_ns()
    }

    /// Whether the graceful drain has begun.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on jobs queued awaiting dispatch (admission control).
    pub queue_cap: usize,
    /// Per-job limits enforced at submission.
    pub limits: JobLimits,
    /// Deadline applied to jobs that do not request one, milliseconds
    /// from admission; `0` means unbounded (the default — supervision is
    /// strictly opt-in, so an unconfigured server behaves as before).
    pub default_deadline_ms: u32,
    /// How often the watchdog samples job wall-time and worker progress.
    pub watchdog_interval_ms: u64,
    /// How long a cancelled job may show *no* worker progress before the
    /// watchdog escalates to poisoning the backend (forcing wedged MRAPI
    /// waits onto the native fallback).
    pub escalation_grace_ms: u64,
    /// Reactor (event-loop) threads; connections are distributed
    /// round-robin.  One is right for almost everything — a reactor only
    /// parses frames and moves buffers — but a many-core host serving
    /// hundreds of connections can add more.  `0` is treated as 1.
    pub reactors: usize,
    /// Bound on *terminal* entries retained in the idempotency/dedup
    /// map; past it the watchdog evicts oldest-terminal-first.  Live
    /// jobs' keys are never evicted (PR 7).
    pub dedup_cap: usize,
    /// How long a terminal, unfetched job (and its idempotency key) is
    /// retained before the watchdog reclaims it, milliseconds.
    pub result_ttl_ms: u64,
    /// Admission-time deadline shedding: when enabled, a deadline job
    /// whose predicted completion (lane-aware queue wait + class EWMA)
    /// exceeds its slack is answered `ShedDeadline` instead of being
    /// accepted and later deadline-killed.  Off by default.
    pub shed: bool,
    /// Hi/Normal/Batch lane weights for the dispatcher's credit-based
    /// pick (each clamped to ≥ 1; see [`crate::queue`]).
    pub lane_weights: [u32; LANES],
    /// Lower bound on `retry_after_ms` backpressure hints, milliseconds
    /// (cold-start guard — see [`crate::lifecycle::retry_after_hint`]).
    pub retry_floor_ms: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
            default_deadline_ms: 0,
            watchdog_interval_ms: 5,
            escalation_grace_ms: 250,
            reactors: 1,
            dedup_cap: 4096,
            result_ttl_ms: 60_000,
            shed: false,
            lane_weights: DEFAULT_LANE_WEIGHTS,
            retry_floor_ms: 10,
        }
    }
}

impl ServeConfig {
    /// The dedup bounds in [`JobTable`] terms.
    pub(crate) fn dedup(&self) -> DedupConfig {
        DedupConfig {
            cap: self.dedup_cap,
            ttl_ns: self.result_ttl_ms.max(1).saturating_mul(1_000_000),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) rt: Runtime,
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: JobQueue,
    /// Job lifecycle state (ids, states, outcomes, idempotency), shared
    /// logic with `romp-sim` — see [`crate::lifecycle`].
    pub(crate) table: JobTable,
    pub(crate) draining: AtomicBool,
    pub(crate) stopped: AtomicBool,
    /// Tells the watchdog thread to exit (set during [`ServerHandle::join`]).
    pub(crate) wd_stop: AtomicBool,
    pub(crate) metrics: Metrics,
    /// EWMA of job execution time, nanoseconds — the retry-after basis.
    pub(crate) exec_ewma_ns: AtomicU64,
    /// Per-class (`JobSpec::label`) execution-time EWMAs, nanoseconds —
    /// the shed gate's service-time model.  Seeded by each class's first
    /// completed sample.
    pub(crate) class_ewma_ns: Mutex<HashMap<String, u64>>,
    /// One mailbox per reactor: completions are broadcast so whichever
    /// reactor parked an `Await` on the job hears about it.
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
    /// When present, jobs route here instead of the in-process
    /// [`dispatch_loop`] (the cluster mode).
    pub(crate) remote: Option<Arc<dyn Dispatch>>,
}

impl Shared {
    fn note_exec_time(&self, ns: u64) {
        // EWMA with alpha = 1/8; seeded by the first sample.
        let prev = self.exec_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 8 + ns / 8
        };
        self.exec_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// Fold one execution sample into its class's EWMA (alpha = 1/8,
    /// seeded by the first sample, same smoothing as the global EWMA).
    pub(crate) fn note_class_exec_time(&self, label: &str, ns: u64) {
        let mut map = self.class_ewma_ns.lock();
        match map.get_mut(label) {
            Some(prev) => *prev = *prev - *prev / 8 + ns / 8,
            None => {
                map.insert(label.to_string(), ns);
            }
        }
    }

    /// Refresh the per-lane depth gauges from the queue.
    pub(crate) fn set_lane_depths(&self) {
        let depths = self.queue.lane_depths();
        for (lane, &d) in depths.iter().enumerate() {
            self.metrics.sched_depth[lane].set(d as u64);
        }
    }

    /// The `"sched"` section of the stats document.
    fn sched_json(&self) -> String {
        let m = &self.metrics;
        let depths = self.queue.lane_depths();
        let lanes = (0..LANES)
            .map(|l| {
                format!(
                    "\"{}\":{{\"depth\":{},\"admits\":{},\"sheds\":{}}}",
                    lane_name(l),
                    depths[l],
                    m.sched_admits[l].get(),
                    m.sched_sheds[l].get()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let classes = {
            let map = self.class_ewma_ns.lock();
            let mut entries: Vec<(String, u64)> =
                map.iter().map(|(k, &v)| (k.clone(), v)).collect();
            entries.sort();
            entries
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"lanes\":{{{lanes}}},\"deadline_miss\":{},\"shed\":{},\
             \"class_ewma_ns\":{{{classes}}}}}",
            m.sched_deadline_miss.get(),
            self.cfg.shed,
        )
    }

    /// Broadcast "job `id` is terminal (with its outcome recorded)" to
    /// every reactor.  Must be called *after* the jobs-table entry holds
    /// the outcome, so a woken reactor always finds it consumable.
    pub(crate) fn complete_job(&self, id: u64) {
        for mb in &self.mailboxes {
            mb.notify_completion(id);
        }
    }

    /// Record a terminal transition end-to-end: the per-state counter,
    /// the table entry (with total/cancel latency), and the completion
    /// broadcast.  Shared by the in-process dispatcher and
    /// [`DispatchCtx::complete`].
    fn finish_job(&self, id: u64, state: JobState, outcome: JobOutcome) {
        match state {
            JobState::Done => self.metrics.completed.incr(),
            JobState::Cancelled => self.metrics.cancelled.incr(),
            JobState::TimedOut => self.metrics.timed_out.incr(),
            _ => self.metrics.failed.incr(),
        }
        if let Some(stamp) = self.table.finish(id, state, outcome) {
            self.metrics.lat_total.record(stamp.total_ns);
            if let Some(ns) = stamp.cancel_latency_ns {
                self.metrics.wd_cancel_latency.record(ns);
            }
        }
        self.complete_job(id);
    }
}

impl ServeCore for Shared {
    fn table(&self) -> &JobTable {
        &self.table
    }

    fn queue(&self) -> &JobQueue {
        &self.queue
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn limits(&self) -> &JobLimits {
        &self.cfg.limits
    }

    fn default_deadline_ms(&self) -> u32 {
        self.cfg.default_deadline_ms
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.queue.close();
    }

    fn ewma_ns(&self) -> u64 {
        self.exec_ewma_ns.load(Ordering::Relaxed)
    }

    fn class_ewma_ns(&self, label: &str) -> Option<u64> {
        self.class_ewma_ns.lock().get(label).copied()
    }

    fn shed_enabled(&self) -> bool {
        self.cfg.shed
    }

    fn retry_floor_ms(&self) -> u32 {
        self.cfg.retry_floor_ms
    }

    fn activity(&self) -> u64 {
        self.rt.activity()
    }

    /// Jobs accepted but not yet finished.
    fn outstanding(&self) -> u64 {
        let accepted = self.metrics.accepted.get();
        let done = self.metrics.completed.get()
            + self.metrics.failed.get()
            + self.metrics.cancelled.get()
            + self.metrics.timed_out.get();
        accepted.saturating_sub(done)
    }

    fn stats_json(&self) -> String {
        let m = &self.metrics;
        let cluster = self
            .remote
            .as_ref()
            .and_then(|d| d.stats_json())
            .map(|j| format!("\"cluster\":{j},"))
            .unwrap_or_default();
        format!(
            "{{\"backend\":\"{}\",\"degraded\":{},\"draining\":{},\
             \"queue_depth\":{},\"queue_cap\":{},\"outstanding\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"cancelled\":{},\"timed_out\":{},{}\
             \"sched\":{},\
             \"metrics\":{}}}",
            json_escape(self.rt.backend_kind().label()),
            self.rt.degraded(),
            self.draining.load(Ordering::Acquire),
            self.queue.len(),
            self.queue.cap(),
            self.outstanding(),
            m.accepted.get(),
            m.rejected.get(),
            m.completed.get(),
            m.failed.get(),
            m.cancelled.get(),
            m.timed_out.get(),
            cluster,
            self.sched_json(),
            self.rt.tracer().metrics().snapshot().to_json(),
        )
    }

    fn on_complete(&self, job: u64) {
        self.complete_job(job);
    }

    fn rolling_restart(&self) -> Option<u64> {
        self.remote.as_ref().and_then(|d| d.rolling_restart())
    }
}

/// What the drained server reports when it exits (the CI smoke asserts
/// `dropped == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs admitted over the server's lifetime.
    pub accepted: u64,
    /// Jobs finished with passing verification.
    pub completed: u64,
    /// Jobs finished with failing verification (panics included).
    pub failed: u64,
    /// Jobs that reached the `Cancelled` terminal state.
    pub cancelled: u64,
    /// Jobs that reached the `TimedOut` terminal state.
    pub timed_out: u64,
    /// Submissions refused by admission control (backpressure worked).
    pub rejected: u64,
    /// Malformed frames/payloads refused.
    pub proto_errors: u64,
    /// Accepted jobs that never reached a terminal state.  **Always zero
    /// on a graceful drain** — every accepted job ends as exactly one of
    /// completed / failed / cancelled / timed-out.
    pub dropped: u64,
    /// Shared-memory result slots still held at drain (cluster mode; the
    /// rmem leak detector).  **Always zero on a graceful drain** — every
    /// slot a worker fills is released when its result is fetched.
    pub rmem_leaked: u64,
}

impl DrainReport {
    /// Render as a one-object JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
             \"timed_out\":{},\"rejected\":{},\"proto_errors\":{},\"dropped\":{},\
             \"rmem_leaked\":{}}}",
            self.accepted,
            self.completed,
            self.failed,
            self.cancelled,
            self.timed_out,
            self.rejected,
            self.proto_errors,
            self.dropped,
            self.rmem_leaked
        )
    }
}

/// A running server.  Obtain with [`Server::start`]; drive with a
/// [`crate::Client`]; finish with [`ServerHandle::join`].
pub struct Server;

/// Handle to a started server: its bound address and the join path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactors: Vec<JoinHandle<()>>,
    dispatcher: JoinHandle<()>,
    watchdog: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the reactor, dispatcher and watchdog threads over the given
    /// runtime.
    ///
    /// The runtime is *shared*: the caller may keep a clone (it is a
    /// cheap handle) to inspect degradation or drain traces while the
    /// server runs; all jobs execute on its one persistent pool.
    pub fn start(addr: &str, cfg: ServeConfig, rt: Runtime) -> std::io::Result<ServerHandle> {
        Self::launch(addr, cfg, rt, None)
    }

    /// [`Server::start`], but jobs route to `dispatch` instead of the
    /// in-process execution loop — the cluster mode.  The runtime is
    /// still required: its tracer hosts the metrics registry and the
    /// reactors' admission policy reads its activity counter; it just
    /// never runs job kernels.
    pub fn start_with_dispatch(
        addr: &str,
        cfg: ServeConfig,
        rt: Runtime,
        dispatch: Arc<dyn Dispatch>,
    ) -> std::io::Result<ServerHandle> {
        Self::launch(addr, cfg, rt, Some(dispatch))
    }

    fn launch(
        addr: &str,
        cfg: ServeConfig,
        rt: Runtime,
        remote: Option<Arc<dyn Dispatch>>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = Metrics::new(rt.tracer().metrics());
        let n_reactors = cfg.reactors.max(1);
        let mailboxes = (0..n_reactors)
            .map(|_| Mailbox::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::with_weights(cfg.queue_cap, cfg.lane_weights),
            table: JobTable::new(Clock::real(), cfg.dedup()),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            wd_stop: AtomicBool::new(false),
            metrics,
            exec_ewma_ns: AtomicU64::new(0),
            class_ewma_ns: Mutex::new(HashMap::new()),
            mailboxes,
            remote,
            cfg,
            rt,
        });

        let disp_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || match disp_shared.remote.clone() {
                Some(d) => d.run(DispatchCtx {
                    shared: Arc::clone(&disp_shared),
                }),
                None => dispatch_loop(&disp_shared),
            })?;

        let wd_shared = Arc::clone(&shared);
        let watchdog = std::thread::Builder::new()
            .name("serve-watchdog".into())
            .spawn(move || watchdog_loop(&wd_shared))?;

        // Reactor 0 owns the listener and round-robins accepted
        // connections across all reactors.  Epoll sets are built here so
        // setup failures surface to the caller, not inside a dead thread.
        let mut listener_slot = Some(listener);
        let mut reactors = Vec::with_capacity(n_reactors);
        for i in 0..n_reactors {
            let r = Reactor::new(Arc::clone(&shared), i, listener_slot.take())?;
            let h = std::thread::Builder::new()
                .name(format!("serve-reactor-{i}"))
                .spawn(move || r.run())?;
            reactors.push(h);
        }

        Ok(ServerHandle {
            addr: local,
            shared,
            reactors,
            dispatcher,
            watchdog,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared runtime (cheap clone of the handle).
    pub fn runtime(&self) -> Runtime {
        self.shared.rt.clone()
    }

    /// The live stats document (same JSON a `Stats` request returns).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Begin the drain without a wire request (equivalent to a client
    /// sending `Shutdown`).
    pub fn request_drain(&self) {
        self.shared.begin_drain();
    }

    /// Wait for the graceful drain to finish and tear the server down.
    ///
    /// Blocks until a `Shutdown` request (or [`ServerHandle::request_drain`])
    /// has closed the queue **and** the dispatcher has finished every
    /// accepted job; then quiesces the runtime pool, stops the watchdog,
    /// and wakes the reactors to flush and exit.  The reactors keep
    /// serving polls, fetches and awaits for the whole drain — clients
    /// collect every accepted job's result before the teardown.
    pub fn join(self) -> DrainReport {
        let _ = self.dispatcher.join();
        // Every accepted job has run; let trailing region epilogues finish
        // before reporting (the PR 3 pool-quiescence hook).
        self.shared.rt.quiesce();
        self.shared.wd_stop.store(true, Ordering::Release);
        let _ = self.watchdog.join();
        self.shared.stopped.store(true, Ordering::Release);
        for mb in &self.shared.mailboxes {
            mb.wake();
        }
        for h in self.reactors {
            let _ = h.join();
        }
        let m = &self.shared.metrics;
        let accepted = m.accepted.get();
        let completed = m.completed.get();
        let failed = m.failed.get();
        let cancelled = m.cancelled.get();
        let timed_out = m.timed_out.get();
        DrainReport {
            accepted,
            completed,
            failed,
            cancelled,
            timed_out,
            rejected: m.rejected.get(),
            proto_errors: m.proto_errors.get(),
            dropped: accepted.saturating_sub(completed + failed + cancelled + timed_out),
            rmem_leaked: self
                .shared
                .remote
                .as_ref()
                .map(|d| d.rmem_leaked())
                .unwrap_or(0),
        }
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The dispatcher: the queue's single consumer, running every job on the
/// shared runtime's persistent pool.  Exits only when the queue is closed
/// *and* empty — i.e. after the graceful drain has finished every
/// accepted job (to completion or to a supervised kill).
///
/// Every job runs under `catch_unwind`: a panicking kernel becomes a
/// `Failed` job carrying the panic message, never a dead dispatcher.
/// Each terminal transition is broadcast over the completion bus so
/// reactors answer parked `Await`s without polling.
fn dispatch_loop(shared: &Shared) {
    let clock = shared.table.clock().clone();
    while let Some(qjob) = shared.queue.pop() {
        let started = clock.now_ns();
        shared
            .metrics
            .lat_queue
            .record(started.saturating_sub(qjob.enqueued_ns));
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        shared.set_lane_depths();
        // Cancelled (or deadline-killed) while queued: already terminal
        // with an outcome — skip without running (whoever made it
        // terminal also notified the completion bus).
        if !shared.table.begin_run(qjob.id) {
            continue;
        }
        // Arm the runtime with this job's token so every region the job
        // forks — including ones nested inside kernels — checks it, and
        // with its affinity key (when non-zero) so those regions' tasks
        // stay on the key's home shard.
        shared.rt.set_cancel_token(Some(qjob.cancel.clone()));
        if qjob.affinity != 0 {
            shared.rt.set_affinity(Some(qjob.affinity));
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&shared.rt, &qjob.spec)
        }));
        shared.rt.set_affinity(None);
        shared.rt.set_cancel_token(None);
        let exec_ns = clock.now_ns().saturating_sub(started);
        shared.metrics.lat_exec.record(exec_ns);
        shared.note_exec_time(exec_ns);
        if exec_ns > 0 {
            shared.note_class_exec_time(&qjob.spec.label(), exec_ns);
        }
        let (state, outcome) = match result {
            Err(payload) => {
                // The pool has already contained the unwind (each member
                // runs under its own net); quiesce so trailing region
                // epilogues finish before the next job is dispatched.
                shared.rt.quiesce();
                (
                    JobState::Failed,
                    JobOutcome {
                        ok: false,
                        wall_us: exec_ns / 1_000,
                        detail: format!("panicked: {}", panic_message(payload.as_ref())),
                    },
                )
            }
            // A fired token outranks the outcome `execute` assembled: the
            // job's regions unwound, so whatever it returned is partial.
            Ok(out) => terminal_for(qjob.cancel.reason(), out),
        };
        // finish_job makes the outcome visible in the table, then
        // broadcasts so any reactor holding a parked Await can consume it.
        shared.finish_job(qjob.id, state, outcome);
    }
}

/// The watchdog: every tick it fires deadlines, watches cancelled jobs
/// unwind, escalates the ones that don't, and bounds the dedup map.
///
/// The decisions live in [`JobTable::sweep`] (shared with `romp-sim`);
/// this loop applies the production side effects: metric bumps,
/// completion broadcasts for queued-deadline kills, and — for a job
/// whose workers are flat past the grace — poisoning the backend so a
/// wedged MRAPI wait flips to the native fallback at its next timeout
/// lap, after which the job unwinds normally.
fn watchdog_loop(shared: &Shared) {
    let tick = Duration::from_millis(shared.cfg.watchdog_interval_ms.max(1));
    let grace_ns = shared
        .cfg
        .escalation_grace_ms
        .max(1)
        .saturating_mul(1_000_000);
    while !shared.wd_stop.load(Ordering::Acquire) {
        shared.metrics.wd_ticks.incr();
        let report = shared.table.sweep(shared.rt.activity(), grace_ns);
        let killed = report.deadline_killed.len() as u64;
        if killed > 0 {
            shared.metrics.wd_deadline_fired.add(killed);
            shared.metrics.timed_out.add(killed);
        }
        if report.deadline_fired_running > 0 {
            shared
                .metrics
                .wd_deadline_fired
                .add(report.deadline_fired_running);
        }
        // Every fired deadline is an accepted job the shed gate (when
        // on) predicted would make it — count the misses.
        let misses = killed + report.deadline_fired_running;
        if misses > 0 {
            shared.metrics.sched_deadline_miss.add(misses);
        }
        shared.metrics.dedup_size.set(report.dedup_size);
        if report.dedup_evicted > 0 {
            shared.metrics.dedup_evictions.add(report.dedup_evicted);
        }
        // Outside the jobs lock: queued-deadline kills are terminal with
        // outcomes — tell the reactors.
        for id in &report.deadline_killed {
            shared.complete_job(*id);
        }
        if let Some(id) = report.escalate {
            // Cluster mode: escalation is the remote dispatcher's (it
            // kills the worker process running the job — the supervisor
            // then retries survivors and respawns).
            if let Some(remote) = &shared.remote {
                if remote.escalate(id) {
                    shared.metrics.wd_escalations.incr();
                }
            }
            // Outside the jobs lock: poisoning takes backend-internal locks.
            else if shared
                .rt
                .poison_backend(&format!("watchdog: job {id} unresponsive to cancellation"))
            {
                // Complete the escalation: swap the fallback in now rather
                // than at the next region boundary, so the degradation is
                // immediately visible and later jobs never touch the
                // poisoned backend at all.
                shared.rt.heal_backend_now();
                shared.metrics.wd_escalations.incr();
            }
        }
        std::thread::sleep(tick);
    }
}
