//! The TCP front-end and its dispatcher.
//!
//! Architecture (DESIGN.md §5.9): connections live on one (or a few)
//! event-driven **reactor** threads — non-blocking sockets multiplexed by
//! `epoll` ([`crate::reactor`]) — while all **compute** funnels through
//! one bounded queue into a single dispatcher thread that runs each job
//! on the one persistent [`Runtime`].  Intra-job parallelism comes from
//! the runtime's work-stealing pool; the server never spins up a team —
//! or a thread — per request, so sixty-four concurrent clients contend on
//! an admission decision, not on sixty-four rival connection threads
//! thrashing the compute pool.
//!
//! This module owns the protocol-to-job-table logic (admission, idem
//! keys, fetch/await consumption, cancel, drain accounting) and the two
//! supervision threads; the socket mechanics live in [`crate::reactor`].
//! Job completions flow back to the reactors over per-reactor mailboxes
//! (`Shared::complete_job`) so parked `Await`s answer the moment a job
//! turns terminal.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mca_sync::Mutex;
use romp::{CancelReason, CancelToken, Runtime};
use romp_trace::{json_escape, Counter, Gauge, Histogram};

use crate::job::{execute, JobLimits, JobOutcome, JobSpec, JobState};
use crate::protocol::{ErrorCode, Request, Response};
use crate::queue::{JobQueue, QueuedJob};
use crate::reactor::{Mailbox, Reactor};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on jobs queued awaiting dispatch (admission control).
    pub queue_cap: usize,
    /// Per-job limits enforced at submission.
    pub limits: JobLimits,
    /// Deadline applied to jobs that do not request one, milliseconds
    /// from admission; `0` means unbounded (the default — supervision is
    /// strictly opt-in, so an unconfigured server behaves as before).
    pub default_deadline_ms: u32,
    /// How often the watchdog samples job wall-time and worker progress.
    pub watchdog_interval_ms: u64,
    /// How long a cancelled job may show *no* worker progress before the
    /// watchdog escalates to poisoning the backend (forcing wedged MRAPI
    /// waits onto the native fallback).
    pub escalation_grace_ms: u64,
    /// Reactor (event-loop) threads; connections are distributed
    /// round-robin.  One is right for almost everything — a reactor only
    /// parses frames and moves buffers — but a many-core host serving
    /// hundreds of connections can add more.  `0` is treated as 1.
    pub reactors: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
            default_deadline_ms: 0,
            watchdog_interval_ms: 5,
            escalation_grace_ms: 250,
            reactors: 1,
        }
    }
}

/// Cached metric instruments (resolved once; bumped lock-free).
pub(crate) struct Metrics {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) invalid: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) cancelled: Arc<Counter>,
    pub(crate) timed_out: Arc<Counter>,
    pub(crate) idem_hits: Arc<Counter>,
    pub(crate) proto_errors: Arc<Counter>,
    pub(crate) req_submit: Arc<Counter>,
    pub(crate) req_poll: Arc<Counter>,
    pub(crate) req_fetch: Arc<Counter>,
    pub(crate) req_await: Arc<Counter>,
    pub(crate) req_cancel: Arc<Counter>,
    pub(crate) req_stats: Arc<Counter>,
    pub(crate) req_ping: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) queue_peak: Arc<Gauge>,
    pub(crate) lat_queue: Arc<Histogram>,
    pub(crate) lat_exec: Arc<Histogram>,
    pub(crate) lat_total: Arc<Histogram>,
    pub(crate) lat_handle: Arc<Histogram>,
    pub(crate) wd_ticks: Arc<Counter>,
    pub(crate) wd_deadline_fired: Arc<Counter>,
    pub(crate) wd_escalations: Arc<Counter>,
    pub(crate) wd_cancel_latency: Arc<Histogram>,
    pub(crate) reactor_wakeups: Arc<Counter>,
    pub(crate) reactor_events: Arc<Histogram>,
    pub(crate) reactor_batch: Arc<Histogram>,
    pub(crate) reactor_conns: Arc<Gauge>,
}

impl Metrics {
    fn new(rt: &Runtime) -> Self {
        let reg = rt.tracer().metrics();
        // Small-count histograms (events per wakeup, submit batch sizes)
        // get power-of-two count buckets, not the ns-latency defaults.
        let counts: Vec<u64> = (0..=10).map(|p| 1u64 << p).collect();
        Metrics {
            accepted: reg.counter("serve.submit.accepted"),
            rejected: reg.counter("serve.submit.rejected"),
            invalid: reg.counter("serve.submit.invalid"),
            completed: reg.counter("serve.jobs.completed"),
            failed: reg.counter("serve.jobs.failed"),
            cancelled: reg.counter("serve.jobs.cancelled"),
            timed_out: reg.counter("serve.jobs.timed_out"),
            idem_hits: reg.counter("serve.submit.idem_hits"),
            proto_errors: reg.counter("serve.proto.errors"),
            req_submit: reg.counter("serve.req.submit"),
            req_poll: reg.counter("serve.req.poll"),
            req_fetch: reg.counter("serve.req.fetch"),
            req_await: reg.counter("serve.req.await"),
            req_cancel: reg.counter("serve.req.cancel"),
            req_stats: reg.counter("serve.req.stats"),
            req_ping: reg.counter("serve.req.ping"),
            queue_depth: reg.gauge("serve.queue.depth"),
            queue_peak: reg.gauge("serve.queue.peak"),
            lat_queue: reg.histogram_ns("serve.latency.queue_ns"),
            lat_exec: reg.histogram_ns("serve.latency.exec_ns"),
            lat_total: reg.histogram_ns("serve.latency.total_ns"),
            lat_handle: reg.histogram_ns("serve.latency.handle_ns"),
            wd_ticks: reg.counter("watchdog.ticks"),
            wd_deadline_fired: reg.counter("watchdog.deadline_fired"),
            wd_escalations: reg.counter("watchdog.escalations"),
            wd_cancel_latency: reg.histogram_ns("watchdog.cancel_latency_ns"),
            reactor_wakeups: reg.counter("serve.reactor.wakeups"),
            reactor_events: reg.histogram("serve.reactor.events_per_wakeup", &counts),
            reactor_batch: reg.histogram("serve.reactor.batch_size", &counts),
            reactor_conns: reg.gauge("serve.reactor.connections"),
        }
    }
}

pub(crate) struct JobEntry {
    pub(crate) state: JobState,
    pub(crate) outcome: Option<JobOutcome>,
    pub(crate) submitted: Instant,
    /// Shared with the queued copy; firing it reaches the job wherever
    /// it is (queued, running, mid-unwind).
    pub(crate) cancel: CancelToken,
    pub(crate) deadline: Option<Instant>,
    /// When the cancel (client or deadline) was requested — basis of the
    /// cancel-latency histogram.
    pub(crate) cancel_requested_at: Option<Instant>,
    /// Watchdog bookkeeping: the runtime activity value last seen for
    /// this job, and since when it has been flat.
    pub(crate) activity_at_check: Option<u64>,
    pub(crate) stalled_since: Option<Instant>,
    /// Whether the watchdog already escalated this job (escalate once).
    pub(crate) escalated: bool,
    /// Client idempotency key (`0` = none); cleaned from the dedup map
    /// when the result is fetched.
    pub(crate) idem_key: u64,
}

pub(crate) struct Shared {
    pub(crate) rt: Runtime,
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: JobQueue,
    pub(crate) jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Idempotency-key → job-id dedup map (see [`crate::Request::Submit`]).
    pub(crate) idem: Mutex<HashMap<u64, u64>>,
    pub(crate) next_id: AtomicU64,
    pub(crate) draining: AtomicBool,
    pub(crate) stopped: AtomicBool,
    /// Tells the watchdog thread to exit (set during [`ServerHandle::join`]).
    pub(crate) wd_stop: AtomicBool,
    pub(crate) metrics: Metrics,
    /// EWMA of job execution time, nanoseconds — the retry-after basis.
    pub(crate) exec_ewma_ns: AtomicU64,
    /// One mailbox per reactor: completions are broadcast so whichever
    /// reactor parked an `Await` on the job hears about it.
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
}

impl Shared {
    /// Jobs accepted but not yet finished.
    pub(crate) fn outstanding(&self) -> u64 {
        let accepted = self.metrics.accepted.get();
        let done = self.metrics.completed.get()
            + self.metrics.failed.get()
            + self.metrics.cancelled.get()
            + self.metrics.timed_out.get();
        accepted.saturating_sub(done)
    }

    /// The backpressure hint: how long a refused client should wait for
    /// a queue slot to likely open — the queue's current length times the
    /// smoothed per-job service time.
    fn retry_after_ms(&self) -> u32 {
        let ewma_ns = self.exec_ewma_ns.load(Ordering::Relaxed).max(1_000_000);
        let depth = self.queue.len() as u64 + 1;
        ((depth * ewma_ns) / 1_000_000).clamp(1, 10_000) as u32
    }

    fn note_exec_time(&self, ns: u64) {
        // EWMA with alpha = 1/8; seeded by the first sample.
        let prev = self.exec_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 8 + ns / 8
        };
        self.exec_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// Broadcast "job `id` is terminal (with its outcome recorded)" to
    /// every reactor.  Must be called *after* the jobs-table entry holds
    /// the outcome, so a woken reactor always finds it consumable.
    pub(crate) fn complete_job(&self, id: u64) {
        for mb in &self.mailboxes {
            mb.notify_completion(id);
        }
    }

    fn stats_json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"backend\":\"{}\",\"degraded\":{},\"draining\":{},\
             \"queue_depth\":{},\"queue_cap\":{},\"outstanding\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"cancelled\":{},\"timed_out\":{},\
             \"metrics\":{}}}",
            json_escape(self.rt.backend_kind().label()),
            self.rt.degraded(),
            self.draining.load(Ordering::Acquire),
            self.queue.len(),
            self.queue.cap(),
            self.outstanding(),
            m.accepted.get(),
            m.rejected.get(),
            m.completed.get(),
            m.failed.get(),
            m.cancelled.get(),
            m.timed_out.get(),
            self.rt.tracer().metrics().snapshot().to_json(),
        )
    }
}

/// What the drained server reports when it exits (the CI smoke asserts
/// `dropped == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs admitted over the server's lifetime.
    pub accepted: u64,
    /// Jobs finished with passing verification.
    pub completed: u64,
    /// Jobs finished with failing verification (panics included).
    pub failed: u64,
    /// Jobs that reached the `Cancelled` terminal state.
    pub cancelled: u64,
    /// Jobs that reached the `TimedOut` terminal state.
    pub timed_out: u64,
    /// Submissions refused by admission control (backpressure worked).
    pub rejected: u64,
    /// Malformed frames/payloads refused.
    pub proto_errors: u64,
    /// Accepted jobs that never reached a terminal state.  **Always zero
    /// on a graceful drain** — every accepted job ends as exactly one of
    /// completed / failed / cancelled / timed-out.
    pub dropped: u64,
}

impl DrainReport {
    /// Render as a one-object JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
             \"timed_out\":{},\"rejected\":{},\"proto_errors\":{},\"dropped\":{}}}",
            self.accepted,
            self.completed,
            self.failed,
            self.cancelled,
            self.timed_out,
            self.rejected,
            self.proto_errors,
            self.dropped
        )
    }
}

/// A running server.  Obtain with [`Server::start`]; drive with a
/// [`crate::Client`]; finish with [`ServerHandle::join`].
pub struct Server;

/// Handle to a started server: its bound address and the join path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactors: Vec<JoinHandle<()>>,
    dispatcher: JoinHandle<()>,
    watchdog: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the reactor, dispatcher and watchdog threads over the given
    /// runtime.
    ///
    /// The runtime is *shared*: the caller may keep a clone (it is a
    /// cheap handle) to inspect degradation or drain traces while the
    /// server runs; all jobs execute on its one persistent pool.
    pub fn start(addr: &str, cfg: ServeConfig, rt: Runtime) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = Metrics::new(&rt);
        let n_reactors = cfg.reactors.max(1);
        let mailboxes = (0..n_reactors)
            .map(|_| Mailbox::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            jobs: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            wd_stop: AtomicBool::new(false),
            metrics,
            exec_ewma_ns: AtomicU64::new(0),
            mailboxes,
            cfg,
            rt,
        });

        let disp_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&disp_shared))?;

        let wd_shared = Arc::clone(&shared);
        let watchdog = std::thread::Builder::new()
            .name("serve-watchdog".into())
            .spawn(move || watchdog_loop(&wd_shared))?;

        // Reactor 0 owns the listener and round-robins accepted
        // connections across all reactors.  Epoll sets are built here so
        // setup failures surface to the caller, not inside a dead thread.
        let mut listener_slot = Some(listener);
        let mut reactors = Vec::with_capacity(n_reactors);
        for i in 0..n_reactors {
            let r = Reactor::new(Arc::clone(&shared), i, listener_slot.take())?;
            let h = std::thread::Builder::new()
                .name(format!("serve-reactor-{i}"))
                .spawn(move || r.run())?;
            reactors.push(h);
        }

        Ok(ServerHandle {
            addr: local,
            shared,
            reactors,
            dispatcher,
            watchdog,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared runtime (cheap clone of the handle).
    pub fn runtime(&self) -> Runtime {
        self.shared.rt.clone()
    }

    /// The live stats document (same JSON a `Stats` request returns).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Begin the drain without a wire request (equivalent to a client
    /// sending `Shutdown`).
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
    }

    /// Wait for the graceful drain to finish and tear the server down.
    ///
    /// Blocks until a `Shutdown` request (or [`ServerHandle::request_drain`])
    /// has closed the queue **and** the dispatcher has finished every
    /// accepted job; then quiesces the runtime pool, stops the watchdog,
    /// and wakes the reactors to flush and exit.  The reactors keep
    /// serving polls, fetches and awaits for the whole drain — clients
    /// collect every accepted job's result before the teardown.
    pub fn join(self) -> DrainReport {
        let _ = self.dispatcher.join();
        // Every accepted job has run; let trailing region epilogues finish
        // before reporting (the PR 3 pool-quiescence hook).
        self.shared.rt.quiesce();
        self.shared.wd_stop.store(true, Ordering::Release);
        let _ = self.watchdog.join();
        self.shared.stopped.store(true, Ordering::Release);
        for mb in &self.shared.mailboxes {
            mb.wake();
        }
        for h in self.reactors {
            let _ = h.join();
        }
        let m = &self.shared.metrics;
        let accepted = m.accepted.get();
        let completed = m.completed.get();
        let failed = m.failed.get();
        let cancelled = m.cancelled.get();
        let timed_out = m.timed_out.get();
        DrainReport {
            accepted,
            completed,
            failed,
            cancelled,
            timed_out,
            rejected: m.rejected.get(),
            proto_errors: m.proto_errors.get(),
            dropped: accepted.saturating_sub(completed + failed + cancelled + timed_out),
        }
    }
}

/// Stage a submission: validate, mint the id, insert the jobs-table
/// entry, claim the idempotency key.  `Ok` hands back the queue-ready job
/// for this wakeup's [`admit_batch`]; `Err` is the immediate response
/// (draining, invalid spec, or an idempotency hit returning the original
/// id) and nothing joins the batch.
pub(crate) fn prepare_submit(
    shared: &Shared,
    spec: JobSpec,
    deadline_ms: u32,
    idem_key: u64,
) -> Result<QueuedJob, Response> {
    if shared.draining.load(Ordering::Acquire) {
        return Err(Response::Error {
            code: ErrorCode::Draining,
            msg: "server is draining".into(),
        });
    }
    if let Err(why) = spec.validate(&shared.cfg.limits) {
        shared.metrics.invalid.incr();
        return Err(Response::Error {
            code: ErrorCode::BadPayload,
            msg: why.into(),
        });
    }
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let now = Instant::now();
    let budget_ms = if deadline_ms > 0 {
        deadline_ms
    } else {
        shared.cfg.default_deadline_ms
    };
    let deadline = (budget_ms > 0).then(|| now + Duration::from_millis(u64::from(budget_ms)));
    let cancel = CancelToken::new();
    // Insert the table entry *before* admission so a client that polls
    // immediately after `Accepted` always finds the job; [`refuse_submit`]
    // removes it again if admission refuses.
    shared.jobs.lock().insert(
        id,
        JobEntry {
            state: JobState::Queued,
            outcome: None,
            submitted: now,
            cancel: cancel.clone(),
            deadline,
            cancel_requested_at: None,
            activity_at_check: None,
            stalled_since: None,
            escalated: false,
            idem_key,
        },
    );
    if idem_key != 0 {
        // Claim the key after the table entry exists (so a racing
        // duplicate that wins the claim can immediately poll the id) but
        // before admission (so no two same-key submits both enqueue).
        use std::collections::hash_map::Entry;
        match shared.idem.lock().entry(idem_key) {
            Entry::Occupied(o) => {
                let existing = *o.get();
                shared.jobs.lock().remove(&id);
                shared.metrics.idem_hits.incr();
                return Err(Response::Accepted { job: existing });
            }
            Entry::Vacant(v) => {
                v.insert(id);
            }
        }
    }
    Ok(QueuedJob {
        id,
        spec,
        enqueued: now,
        cancel,
        deadline,
    })
}

/// Unwind [`prepare_submit`]'s bookkeeping for a job admission refused.
fn refuse_submit(shared: &Shared, id: u64) {
    let entry = shared.jobs.lock().remove(&id);
    if let Some(e) = entry {
        if e.idem_key != 0 {
            let mut idem = shared.idem.lock();
            if idem.get(&e.idem_key) == Some(&id) {
                idem.remove(&e.idem_key);
            }
        }
    }
}

/// Admit one wakeup's worth of prepared submissions as a single batch —
/// one queue lock, one dispatcher wakeup ([`JobQueue::try_push_batch`]).
/// Returns one response per input job, in order: `Accepted` for the
/// admitted prefix, `Rejected`/`Draining` (with bookkeeping unwound) for
/// the rest.
pub(crate) fn admit_batch(shared: &Shared, jobs: Vec<QueuedJob>) -> Vec<Response> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
    let res = shared.queue.try_push_batch(jobs);
    if res.admitted > 0 {
        shared.metrics.accepted.add(res.admitted as u64);
        shared.metrics.queue_depth.set(res.depth as u64);
        shared.metrics.queue_peak.record_max(res.depth as u64);
    }
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            if i < res.admitted {
                Response::Accepted { job: id }
            } else {
                refuse_submit(shared, id);
                if res.closed {
                    Response::Error {
                        code: ErrorCode::Draining,
                        msg: "server is draining".into(),
                    }
                } else {
                    shared.metrics.rejected.incr();
                    Response::Rejected {
                        retry_after_ms: shared.retry_after_ms(),
                    }
                }
            }
        })
        .collect()
}

/// What consuming a job's result found.
enum Consume {
    /// Terminal: the `JobResult` (entry and idem key consumed).
    Taken(Response),
    /// Exists but not terminal yet.
    NotReady,
    /// Never existed, or already consumed.
    Unknown,
}

/// Take a terminal job's outcome out of the table (the fetch-or-await
/// consumption shared by both request kinds).  The entry is removed only
/// when an outcome is present; the idempotency window closes here.
fn consume_result(shared: &Shared, job: u64) -> Consume {
    let mut jobs = shared.jobs.lock();
    match jobs.remove(&job) {
        Some(JobEntry {
            outcome: Some(out),
            idem_key,
            ..
        }) => {
            drop(jobs);
            if idem_key != 0 {
                // The idempotency window closes at fetch: a later
                // resubmit with the same key is a new job.
                let mut idem = shared.idem.lock();
                if idem.get(&idem_key) == Some(&job) {
                    idem.remove(&idem_key);
                }
            }
            Consume::Taken(Response::JobResult {
                job,
                ok: out.ok,
                wall_us: out.wall_us,
                detail: out.detail,
            })
        }
        Some(entry) => {
            jobs.insert(job, entry);
            Consume::NotReady
        }
        None => Consume::Unknown,
    }
}

/// How an `Await` request resolves right now.
pub(crate) enum AwaitDisposition {
    /// Answer immediately (terminal result consumed, or `UnknownJob`).
    Ready(Response),
    /// The job is live but not terminal: park the connection; the
    /// completion bus will answer it.
    Pending,
}

/// Resolve an `Await`: consume like a `Fetch` if the job is terminal,
/// park otherwise.  Called both at request time and again when the
/// completion bus reports the job finished — the first parked waiter to
/// get here consumes the outcome, later ones observe `UnknownJob`.
pub(crate) fn try_complete_await(shared: &Shared, job: u64) -> AwaitDisposition {
    match consume_result(shared, job) {
        Consume::Taken(resp) => AwaitDisposition::Ready(resp),
        Consume::NotReady => AwaitDisposition::Pending,
        Consume::Unknown => AwaitDisposition::Ready(Response::Error {
            code: ErrorCode::UnknownJob,
            msg: format!("job {job}"),
        }),
    }
}

/// Handle every request kind that answers immediately and in request
/// order.  `Submit` and `Await` are routed by the reactor before this
/// point (they batch and park respectively); their arms here are
/// defensive only.
pub(crate) fn handle_sync_request(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Cancel { job } => handle_cancel(shared, job),
        Request::Poll { job } => {
            shared.metrics.req_poll.incr();
            match shared.jobs.lock().get(&job) {
                Some(entry) => Response::Status {
                    job,
                    state: entry.state,
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Fetch { job } => {
            shared.metrics.req_fetch.incr();
            match consume_result(shared, job) {
                Consume::Taken(resp) => resp,
                Consume::NotReady => Response::Error {
                    code: ErrorCode::NotReady,
                    msg: format!("job {job} still pending"),
                },
                Consume::Unknown => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Stats => {
            shared.metrics.req_stats.incr();
            Response::Stats {
                json: shared.stats_json(),
            }
        }
        Request::Ping => {
            shared.metrics.req_ping.incr();
            Response::Pong
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.queue.close();
            Response::Draining {
                outstanding: shared.outstanding(),
            }
        }
        Request::Submit { .. } | Request::Await { .. } => Response::Error {
            code: ErrorCode::BadPayload,
            msg: "internal: submit/await bypassed the reactor".into(),
        },
    }
}

/// Apply a cancel request: queued jobs die in place, running jobs get
/// their token fired and unwind at the next checkpoint, terminal jobs are
/// left alone (cancel is idempotent).  Always answers with the job's
/// state after the request took effect.
fn handle_cancel(shared: &Shared, job: u64) -> Response {
    shared.metrics.req_cancel.incr();
    let mut now_terminal = false;
    let state = {
        let mut jobs = shared.jobs.lock();
        let Some(entry) = jobs.get_mut(&job) else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                msg: format!("job {job}"),
            };
        };
        match entry.state {
            JobState::Queued => {
                // Fire the token anyway: the dispatcher may have already
                // popped the job, and a fired token stops it pre-fork.
                entry.cancel.cancel();
                entry.state = JobState::Cancelled;
                entry.outcome = Some(JobOutcome {
                    ok: false,
                    wall_us: 0,
                    detail: "cancelled while queued".into(),
                });
                shared.metrics.cancelled.incr();
                now_terminal = true;
                JobState::Cancelled
            }
            JobState::Running => {
                entry.cancel.cancel();
                entry.state = JobState::Cancelling;
                let now = Instant::now();
                entry.cancel_requested_at = Some(now);
                entry.stalled_since = Some(now);
                entry.activity_at_check = Some(shared.rt.activity());
                JobState::Cancelling
            }
            // Cancelling already, or terminal: nothing to do.
            s => s,
        }
    };
    if now_terminal {
        // Outside the jobs lock: a parked Await on this job answers now.
        shared.complete_job(job);
    }
    Response::Status { job, state }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The dispatcher: the queue's single consumer, running every job on the
/// shared runtime's persistent pool.  Exits only when the queue is closed
/// *and* empty — i.e. after the graceful drain has finished every
/// accepted job (to completion or to a supervised kill).
///
/// Every job runs under `catch_unwind`: a panicking kernel becomes a
/// `Failed` job carrying the panic message, never a dead dispatcher.
/// Each terminal transition is broadcast over the completion bus so
/// reactors answer parked `Await`s without polling.
fn dispatch_loop(shared: &Shared) {
    while let Some(qjob) = shared.queue.pop() {
        let started = Instant::now();
        shared
            .metrics
            .lat_queue
            .record(started.duration_since(qjob.enqueued).as_nanos() as u64);
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        {
            let mut jobs = shared.jobs.lock();
            match jobs.get_mut(&qjob.id) {
                // Cancelled (or deadline-killed) while queued: already
                // terminal with an outcome — skip without running (whoever
                // made it terminal also notified the completion bus).
                Some(entry) if entry.state.terminal() => continue,
                Some(entry) => entry.state = JobState::Running,
                // Terminal *and* fetched already; nothing left to do.
                None => continue,
            }
        }
        // Arm the runtime with this job's token so every region the job
        // forks — including ones nested inside kernels — checks it.
        shared.rt.set_cancel_token(Some(qjob.cancel.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&shared.rt, &qjob.spec)
        }));
        shared.rt.set_cancel_token(None);
        let exec_ns = started.elapsed().as_nanos() as u64;
        shared.metrics.lat_exec.record(exec_ns);
        shared.note_exec_time(exec_ns);
        let (state, outcome) = match result {
            Err(payload) => {
                // The pool has already contained the unwind (each member
                // runs under its own net); quiesce so trailing region
                // epilogues finish before the next job is dispatched.
                shared.rt.quiesce();
                (
                    JobState::Failed,
                    JobOutcome {
                        ok: false,
                        wall_us: exec_ns / 1_000,
                        detail: format!("panicked: {}", panic_message(payload.as_ref())),
                    },
                )
            }
            // A fired token outranks the outcome `execute` assembled: the
            // job's regions unwound, so whatever it returned is partial.
            Ok(out) => match qjob.cancel.reason() {
                Some(CancelReason::Deadline) => (
                    JobState::TimedOut,
                    JobOutcome {
                        ok: false,
                        wall_us: out.wall_us,
                        detail: "deadline exceeded".into(),
                    },
                ),
                Some(CancelReason::Requested) => (
                    JobState::Cancelled,
                    JobOutcome {
                        ok: false,
                        wall_us: out.wall_us,
                        detail: "cancelled".into(),
                    },
                ),
                None if out.ok => (JobState::Done, out),
                None => (JobState::Failed, out),
            },
        };
        match state {
            JobState::Done => shared.metrics.completed.incr(),
            JobState::Cancelled => shared.metrics.cancelled.incr(),
            JobState::TimedOut => shared.metrics.timed_out.incr(),
            _ => shared.metrics.failed.incr(),
        }
        {
            let mut jobs = shared.jobs.lock();
            if let Some(entry) = jobs.get_mut(&qjob.id) {
                shared
                    .metrics
                    .lat_total
                    .record(entry.submitted.elapsed().as_nanos() as u64);
                if let Some(t) = entry.cancel_requested_at {
                    shared
                        .metrics
                        .wd_cancel_latency
                        .record(t.elapsed().as_nanos() as u64);
                }
                entry.state = state;
                entry.outcome = Some(outcome);
            }
        }
        // After the outcome is visible in the table (lock released): any
        // reactor holding a parked Await can consume it.
        shared.complete_job(qjob.id);
    }
}

/// The watchdog: every tick it fires deadlines, watches cancelled jobs
/// unwind, and escalates the ones that don't.
///
/// Escalation is progress-aware: a cancelled job whose workers are still
/// reaching synchronization constructs ([`Runtime::activity`] advancing)
/// is unwinding and is left alone; one that is flat for the configured
/// grace is wedged somewhere with no cooperative checkpoint — in
/// practice, inside a persistently failing MRAPI primitive — and the
/// backend is poisoned so the wedged wait flips to the native fallback at
/// its next timeout lap, after which the job unwinds normally.
fn watchdog_loop(shared: &Shared) {
    let tick = Duration::from_millis(shared.cfg.watchdog_interval_ms.max(1));
    let grace = Duration::from_millis(shared.cfg.escalation_grace_ms.max(1));
    while !shared.wd_stop.load(Ordering::Acquire) {
        shared.metrics.wd_ticks.incr();
        let now = Instant::now();
        let activity = shared.rt.activity();
        let mut escalate = None;
        let mut finished: Vec<u64> = Vec::new();
        {
            let mut jobs = shared.jobs.lock();
            for (&id, entry) in jobs.iter_mut() {
                match entry.state {
                    JobState::Queued if entry.deadline.is_some_and(|d| now >= d) => {
                        // Kill in place: the dispatcher skips terminal
                        // entries when it eventually pops this job.
                        entry.cancel.cancel_deadline();
                        entry.state = JobState::TimedOut;
                        entry.outcome = Some(JobOutcome {
                            ok: false,
                            wall_us: 0,
                            detail: "deadline exceeded while queued".into(),
                        });
                        shared.metrics.wd_deadline_fired.incr();
                        shared.metrics.timed_out.incr();
                        finished.push(id);
                    }
                    JobState::Running
                        if entry.deadline.is_some_and(|d| now >= d)
                            && entry.cancel.cancel_deadline() =>
                    {
                        entry.state = JobState::Cancelling;
                        entry.cancel_requested_at = Some(now);
                        entry.stalled_since = Some(now);
                        entry.activity_at_check = Some(activity);
                        shared.metrics.wd_deadline_fired.incr();
                    }
                    JobState::Cancelling if !entry.escalated => {
                        if entry.activity_at_check != Some(activity) {
                            // Workers still reaching constructs: the job is
                            // unwinding (or finishing); restart the clock.
                            entry.activity_at_check = Some(activity);
                            entry.stalled_since = Some(now);
                        } else if entry
                            .stalled_since
                            .is_some_and(|t| now.duration_since(t) >= grace)
                        {
                            entry.escalated = true;
                            escalate = Some(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Outside the jobs lock: queued-deadline kills are terminal with
        // outcomes — tell the reactors.
        for id in finished {
            shared.complete_job(id);
        }
        if let Some(id) = escalate {
            // Outside the jobs lock: poisoning takes backend-internal locks.
            if shared
                .rt
                .poison_backend(&format!("watchdog: job {id} unresponsive to cancellation"))
            {
                // Complete the escalation: swap the fallback in now rather
                // than at the next region boundary, so the degradation is
                // immediately visible and later jobs never touch the
                // poisoned backend at all.
                shared.rt.heal_backend_now();
                shared.metrics.wd_escalations.incr();
            }
        }
        std::thread::sleep(tick);
    }
}
