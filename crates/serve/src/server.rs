//! The TCP front-end and its dispatcher.
//!
//! Architecture (DESIGN.md §5.7): connection handlers are plain blocking
//! threads — they only parse frames and touch shared state, so thread-
//! per-*connection* is cheap — while all **compute** funnels through one
//! bounded queue into a single dispatcher thread that runs each job on
//! the one persistent [`Runtime`].  Intra-job parallelism comes from the
//! runtime's work-stealing pool; the server never spins up a team per
//! request, so sixteen concurrent clients contend on an admission
//! decision, not on sixteen rival thread pools.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mca_sync::Mutex;
use romp::Runtime;
use romp_trace::{json_escape, Counter, Gauge, Histogram};

use crate::job::{execute, JobLimits, JobOutcome, JobSpec, JobState};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, ProtoError, Request, Response,
};
use crate::queue::{JobQueue, PushError, QueuedJob};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on jobs queued awaiting dispatch (admission control).
    pub queue_cap: usize,
    /// Per-job limits enforced at submission.
    pub limits: JobLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
        }
    }
}

/// Cached metric instruments (resolved once; bumped lock-free).
struct Metrics {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    invalid: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    proto_errors: Arc<Counter>,
    req_submit: Arc<Counter>,
    req_poll: Arc<Counter>,
    req_fetch: Arc<Counter>,
    req_stats: Arc<Counter>,
    req_ping: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_peak: Arc<Gauge>,
    lat_queue: Arc<Histogram>,
    lat_exec: Arc<Histogram>,
    lat_total: Arc<Histogram>,
    lat_handle: Arc<Histogram>,
}

impl Metrics {
    fn new(rt: &Runtime) -> Self {
        let reg = rt.tracer().metrics();
        Metrics {
            accepted: reg.counter("serve.submit.accepted"),
            rejected: reg.counter("serve.submit.rejected"),
            invalid: reg.counter("serve.submit.invalid"),
            completed: reg.counter("serve.jobs.completed"),
            failed: reg.counter("serve.jobs.failed"),
            proto_errors: reg.counter("serve.proto.errors"),
            req_submit: reg.counter("serve.req.submit"),
            req_poll: reg.counter("serve.req.poll"),
            req_fetch: reg.counter("serve.req.fetch"),
            req_stats: reg.counter("serve.req.stats"),
            req_ping: reg.counter("serve.req.ping"),
            queue_depth: reg.gauge("serve.queue.depth"),
            queue_peak: reg.gauge("serve.queue.peak"),
            lat_queue: reg.histogram_ns("serve.latency.queue_ns"),
            lat_exec: reg.histogram_ns("serve.latency.exec_ns"),
            lat_total: reg.histogram_ns("serve.latency.total_ns"),
            lat_handle: reg.histogram_ns("serve.latency.handle_ns"),
        }
    }
}

struct JobEntry {
    state: JobState,
    outcome: Option<JobOutcome>,
    submitted: Instant,
}

struct Shared {
    rt: Runtime,
    cfg: ServeConfig,
    queue: JobQueue,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    stopped: AtomicBool,
    metrics: Metrics,
    /// EWMA of job execution time, nanoseconds — the retry-after basis.
    exec_ewma_ns: AtomicU64,
}

impl Shared {
    /// Jobs accepted but not yet finished.
    fn outstanding(&self) -> u64 {
        let accepted = self.metrics.accepted.get();
        let done = self.metrics.completed.get() + self.metrics.failed.get();
        accepted.saturating_sub(done)
    }

    /// The backpressure hint: how long a refused client should wait for
    /// a queue slot to likely open — the queue's current length times the
    /// smoothed per-job service time.
    fn retry_after_ms(&self) -> u32 {
        let ewma_ns = self.exec_ewma_ns.load(Ordering::Relaxed).max(1_000_000);
        let depth = self.queue.len() as u64 + 1;
        ((depth * ewma_ns) / 1_000_000).clamp(1, 10_000) as u32
    }

    fn note_exec_time(&self, ns: u64) {
        // EWMA with alpha = 1/8; seeded by the first sample.
        let prev = self.exec_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 8 + ns / 8
        };
        self.exec_ewma_ns.store(next, Ordering::Relaxed);
    }

    fn stats_json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"backend\":\"{}\",\"degraded\":{},\"draining\":{},\
             \"queue_depth\":{},\"queue_cap\":{},\"outstanding\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"metrics\":{}}}",
            json_escape(self.rt.backend_kind().label()),
            self.rt.degraded(),
            self.draining.load(Ordering::Acquire),
            self.queue.len(),
            self.queue.cap(),
            self.outstanding(),
            m.accepted.get(),
            m.rejected.get(),
            m.completed.get(),
            m.failed.get(),
            self.rt.tracer().metrics().snapshot().to_json(),
        )
    }
}

/// What the drained server reports when it exits (the CI smoke asserts
/// `dropped == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs admitted over the server's lifetime.
    pub accepted: u64,
    /// Jobs finished with passing verification.
    pub completed: u64,
    /// Jobs finished with failing verification.
    pub failed: u64,
    /// Submissions refused by admission control (backpressure worked).
    pub rejected: u64,
    /// Malformed frames/payloads refused.
    pub proto_errors: u64,
    /// Accepted jobs that never finished.  **Always zero on a graceful
    /// drain** — the queue completes every accepted job before closing.
    pub dropped: u64,
}

impl DrainReport {
    /// Render as a one-object JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"completed\":{},\"failed\":{},\"rejected\":{},\
             \"proto_errors\":{},\"dropped\":{}}}",
            self.accepted,
            self.completed,
            self.failed,
            self.rejected,
            self.proto_errors,
            self.dropped
        )
    }
}

/// A running server.  Obtain with [`Server::start`]; drive with a
/// [`crate::Client`]; finish with [`ServerHandle::join`].
pub struct Server;

/// Handle to a started server: its bound address and the join path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept and dispatcher threads over the given runtime.
    ///
    /// The runtime is *shared*: the caller may keep a clone (it is a
    /// cheap handle) to inspect degradation or drain traces while the
    /// server runs; all jobs execute on its one persistent pool.
    pub fn start(addr: &str, cfg: ServeConfig, rt: Runtime) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = Metrics::new(&rt);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            metrics,
            exec_ewma_ns: AtomicU64::new(0),
            cfg,
            rt,
        });

        let disp_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&disp_shared))?;

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(ServerHandle {
            addr: local,
            shared,
            accept,
            dispatcher,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared runtime (cheap clone of the handle).
    pub fn runtime(&self) -> Runtime {
        self.shared.rt.clone()
    }

    /// The live stats document (same JSON a `Stats` request returns).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Begin the drain without a wire request (equivalent to a client
    /// sending `Shutdown`).
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
    }

    /// Wait for the graceful drain to finish and tear the server down.
    ///
    /// Blocks until a `Shutdown` request (or [`ServerHandle::request_drain`])
    /// has closed the queue **and** the dispatcher has finished every
    /// accepted job; then quiesces the runtime pool, stops the accept
    /// loop, and reports the final accounting.
    pub fn join(self) -> DrainReport {
        let _ = self.dispatcher.join();
        // Every accepted job has run; let trailing region epilogues finish
        // before reporting (the PR 3 pool-quiescence hook).
        self.shared.rt.quiesce();
        self.shared.stopped.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let m = &self.shared.metrics;
        let accepted = m.accepted.get();
        let completed = m.completed.get();
        let failed = m.failed.get();
        DrainReport {
            accepted,
            completed,
            failed,
            rejected: m.rejected.get(),
            proto_errors: m.proto_errors.get(),
            dropped: accepted.saturating_sub(completed + failed),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stopped.load(Ordering::Acquire) {
                    return;
                }
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_shared));
            }
            Err(_) if shared.stopped.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

/// One connection: read frames, answer them, until the peer closes or
/// the framing desynchronizes.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(b)) => b,
            Ok(None) => return, // clean close
            Err(FrameError::Proto(e)) => {
                // Hostile length prefix: answer once, then drop the
                // connection — the byte stream cannot be trusted again.
                shared.metrics.proto_errors.incr();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    msg: e.to_string(),
                };
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
            Err(FrameError::Io(_)) => return, // truncated/reset mid-frame
        };
        let t0 = Instant::now();
        let resp = match Request::decode(&body) {
            Ok(req) => handle_request(&shared, req),
            Err(e) => {
                // Frame boundaries are intact; the payload is bad.  Answer
                // and keep the connection — the next frame may be fine.
                shared.metrics.proto_errors.incr();
                Response::Error {
                    code: match e {
                        ProtoError::BadPayload(_) => ErrorCode::BadPayload,
                        _ => ErrorCode::BadFrame,
                    },
                    msg: e.to_string(),
                }
            }
        };
        shared
            .metrics
            .lat_handle
            .record(t0.elapsed().as_nanos() as u64);
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
    }
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Submit(spec) => handle_submit(shared, spec),
        Request::Poll { job } => {
            shared.metrics.req_poll.incr();
            match shared.jobs.lock().get(&job) {
                Some(entry) => Response::Status {
                    job,
                    state: entry.state,
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Fetch { job } => {
            shared.metrics.req_fetch.incr();
            let mut jobs = shared.jobs.lock();
            match jobs.get(&job) {
                Some(entry) if entry.outcome.is_some() => {
                    let entry = jobs.remove(&job).expect("checked present");
                    let out = entry.outcome.expect("checked some");
                    Response::JobResult {
                        job,
                        ok: out.ok,
                        wall_us: out.wall_us,
                        detail: out.detail,
                    }
                }
                Some(_) => Response::Error {
                    code: ErrorCode::NotReady,
                    msg: format!("job {job} still pending"),
                },
                None => Response::Error {
                    code: ErrorCode::UnknownJob,
                    msg: format!("job {job}"),
                },
            }
        }
        Request::Stats => {
            shared.metrics.req_stats.incr();
            Response::Stats {
                json: shared.stats_json(),
            }
        }
        Request::Ping => {
            shared.metrics.req_ping.incr();
            Response::Pong
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::Release);
            shared.queue.close();
            Response::Draining {
                outstanding: shared.outstanding(),
            }
        }
    }
}

fn handle_submit(shared: &Shared, spec: JobSpec) -> Response {
    shared.metrics.req_submit.incr();
    if shared.draining.load(Ordering::Acquire) {
        return Response::Error {
            code: ErrorCode::Draining,
            msg: "server is draining".into(),
        };
    }
    if let Err(why) = spec.validate(&shared.cfg.limits) {
        shared.metrics.invalid.incr();
        return Response::Error {
            code: ErrorCode::BadPayload,
            msg: why.into(),
        };
    }
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    // Insert the table entry *before* the queue push so a client that
    // polls immediately after `Accepted` always finds the job; remove it
    // again if admission refuses.
    shared.jobs.lock().insert(
        id,
        JobEntry {
            state: JobState::Queued,
            outcome: None,
            submitted: Instant::now(),
        },
    );
    match shared.queue.try_push(QueuedJob {
        id,
        spec,
        enqueued: Instant::now(),
    }) {
        Ok(depth) => {
            shared.metrics.accepted.incr();
            shared.metrics.queue_depth.set(depth as u64);
            shared.metrics.queue_peak.record_max(depth as u64);
            Response::Accepted { job: id }
        }
        Err(PushError::Full) => {
            shared.jobs.lock().remove(&id);
            shared.metrics.rejected.incr();
            Response::Rejected {
                retry_after_ms: shared.retry_after_ms(),
            }
        }
        Err(PushError::Closed) => {
            shared.jobs.lock().remove(&id);
            Response::Error {
                code: ErrorCode::Draining,
                msg: "server is draining".into(),
            }
        }
    }
}

/// The dispatcher: the queue's single consumer, running every job on the
/// shared runtime's persistent pool.  Exits only when the queue is closed
/// *and* empty — i.e. after the graceful drain has completed every
/// accepted job.
fn dispatch_loop(shared: &Shared) {
    while let Some(qjob) = shared.queue.pop() {
        let started = Instant::now();
        shared
            .metrics
            .lat_queue
            .record(started.duration_since(qjob.enqueued).as_nanos() as u64);
        shared.metrics.queue_depth.set(shared.queue.len() as u64);
        if let Some(entry) = shared.jobs.lock().get_mut(&qjob.id) {
            entry.state = JobState::Running;
        }
        // `execute` never panics and never aborts: backend trouble under
        // the job degrades the runtime (MCA→native) and the job completes
        // on the fallback — the service's graceful-degradation story.
        let outcome = execute(&shared.rt, &qjob.spec);
        let exec_ns = started.elapsed().as_nanos() as u64;
        shared.metrics.lat_exec.record(exec_ns);
        shared.note_exec_time(exec_ns);
        if outcome.ok {
            shared.metrics.completed.incr();
        } else {
            shared.metrics.failed.incr();
        }
        let mut jobs = shared.jobs.lock();
        if let Some(entry) = jobs.get_mut(&qjob.id) {
            shared
                .metrics
                .lat_total
                .record(entry.submitted.elapsed().as_nanos() as u64);
            entry.state = if outcome.ok {
                JobState::Done
            } else {
                JobState::Failed
            };
            entry.outcome = Some(outcome);
        }
    }
}
