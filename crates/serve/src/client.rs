//! The blocking client: one TCP connection, request/response framing,
//! and the submit-retry-poll-fetch convenience loop `loadgen` and the
//! tests drive.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use mca_sync::SmallRng;

use crate::job::{JobOutcome, JobSpec, JobState};
use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// A jitter source seeded from wall-clock entropy and `salt`, so many
/// clients backing off from the same event do not re-collide in lockstep.
fn jitter_rng(salt: u64) -> SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    SmallRng::seed_from_u64(
        salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nanos ^ u64::from(std::process::id()),
    )
}

/// `base/2 + uniform(0, base)` — ±50% jitter around `base`.
fn jittered(rng: &mut SmallRng, base: u64) -> u64 {
    base / 2 + rng.gen_range(0, base.max(1))
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, truncated frame).
    Io(std::io::Error),
    /// The server answered with bytes the protocol cannot decode.
    Proto(String),
    /// The server closed the connection mid-conversation.
    Closed,
    /// A structurally valid response that makes no sense for the request
    /// (e.g. `Pong` to `Submit`).
    Unexpected(Response),
    /// The server refused with a typed error.
    Server {
        /// The refusal code.
        code: ErrorCode,
        /// Server-provided detail.
        msg: String,
    },
    /// Admission control predicted the job would miss its deadline and
    /// shed it.  Distinct from `Rejected` backpressure: retrying the same
    /// deadline into the same backlog cannot help, so the retry loop
    /// surfaces this immediately instead of burning its budget.
    Shed {
        /// The wait the server predicted, milliseconds.
        predicted_wait_ms: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(m) => write!(f, "protocol: {m}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
            ClientError::Server { code, msg } => write!(f, "server error {code:?}: {msg}"),
            ClientError::Shed { predicted_wait_ms } => write!(
                f,
                "shed at admission: predicted wait {predicted_wait_ms}ms exceeds deadline slack"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What `submit` can come back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted under this id.
    Accepted(u64),
    /// Backpressured; retry after the given delay.
    Rejected {
        /// Server's backoff hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The server is draining and takes no new work.
    Draining,
    /// Shed at admission: the predicted queue wait exceeds the job's
    /// deadline slack.  Unlike `Rejected` there is no point retrying
    /// with the same deadline — lower the load or loosen the deadline.
    ShedDeadline {
        /// The wait the server predicted, milliseconds.
        predicted_wait_ms: u32,
    },
}

/// Per-submission options (see [`crate::Request::Submit`] for the wire
/// semantics of each field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Deadline in milliseconds from admission; `0` = server default.
    pub deadline_ms: u32,
    /// Idempotency key; non-zero makes the submission safely retryable
    /// (a duplicate returns the original job id).  `0` disables it.
    pub idem_key: u64,
    /// Affinity key; non-zero pins the job's tasks to one runtime shard
    /// so related jobs share caches.  `0` = no preference.
    pub affinity: u64,
    /// Scheduling lane: `0` = Normal (default), `1` = Hi, `2`+ = Batch.
    pub priority: u8,
}

/// A connected client (one TCP stream, used serially).
pub struct Client {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Client {
            addr,
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Replace a broken stream with a fresh connection to the same server.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Send a request without waiting for its response — the pipelining
    /// half-step.  Pair with [`Client::recv`]; responses to sync requests
    /// arrive in request order, `Await` responses in completion order
    /// (correlate by job id — see [`crate::Request::Await`]).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        Ok(())
    }

    /// Receive the next response frame (blocking).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let body = match read_frame(&mut self.reader) {
            Ok(Some(b)) => b,
            Ok(None) => return Err(ClientError::Closed),
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::Proto(e)) => return Err(ClientError::Proto(e.to_string())),
        };
        Response::decode(&body).map_err(|e| ClientError::Proto(e.to_string()))
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// `call` for requests that are safe to repeat (polls, cancels,
    /// keyed submits): a transient transport failure reconnects with
    /// jittered exponential backoff and resends, a few times, before
    /// giving up.  Server-level errors are returned immediately.
    fn call_retrying(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut rng = jitter_rng(0xC0FF_EE00);
        let mut backoff_ms = 1u64;
        let mut last = ClientError::Closed;
        for _ in 0..4 {
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e @ (ClientError::Io(_) | ClientError::Closed)) => {
                    last = e;
                    std::thread::sleep(Duration::from_millis(jittered(&mut rng, backoff_ms)));
                    backoff_ms = (backoff_ms * 2).min(100);
                    // A failed reconnect leaves the old (broken) stream in
                    // place; the next attempt's `call` fails fast and we
                    // back off again.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Submit a job with default options (no deadline override, no
    /// idempotency key; does not retry — see [`Client::submit_with_retry`]).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.submit_opts(spec, SubmitOptions::default())
    }

    /// Submit a job with explicit options.  With a non-zero
    /// `opts.idem_key` the request is resent across transient transport
    /// failures — the key guarantees at-most-once admission server-side.
    pub fn submit_opts(
        &mut self,
        spec: &JobSpec,
        opts: SubmitOptions,
    ) -> Result<SubmitOutcome, ClientError> {
        let req = Request::Submit {
            spec: *spec,
            deadline_ms: opts.deadline_ms,
            idem_key: opts.idem_key,
            affinity: opts.affinity,
            priority: opts.priority,
        };
        let resp = if opts.idem_key != 0 {
            self.call_retrying(&req)?
        } else {
            self.call(&req)?
        };
        match resp {
            Response::Accepted { job } => Ok(SubmitOutcome::Accepted(job)),
            Response::Rejected { retry_after_ms } => Ok(SubmitOutcome::Rejected { retry_after_ms }),
            Response::ShedDeadline { predicted_wait_ms } => {
                Ok(SubmitOutcome::ShedDeadline { predicted_wait_ms })
            }
            Response::Error {
                code: ErrorCode::Draining,
                ..
            } => Ok(SubmitOutcome::Draining),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Request cancellation; returns the job's state after the request
    /// took effect (`Cancelled`, `Cancelling`, or an unchanged terminal
    /// state — cancel is idempotent).
    pub fn cancel(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.call_retrying(&Request::Cancel { job })? {
            Response::Status { state, .. } => Ok(state),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submit with bounded backoff on `Rejected`.  Returns the job id and
    /// how many rejections were absorbed, or `None` for a draining server.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_wait: Duration,
    ) -> Result<Option<(u64, u32)>, ClientError> {
        self.submit_with_retry_opts(spec, SubmitOptions::default(), max_wait)
    }

    /// [`Client::submit_with_retry`] with explicit [`SubmitOptions`].
    pub fn submit_with_retry_opts(
        &mut self,
        spec: &JobSpec,
        opts: SubmitOptions,
        max_wait: Duration,
    ) -> Result<Option<(u64, u32)>, ClientError> {
        let deadline = Instant::now() + max_wait;
        let mut rng = jitter_rng(opts.idem_key ^ 0x5AB5_E77E);
        let mut rejections = 0u32;
        loop {
            match self.submit_opts(spec, opts)? {
                SubmitOutcome::Accepted(id) => return Ok(Some((id, rejections))),
                SubmitOutcome::Draining => return Ok(None),
                // A shed is a verdict, not backpressure: the same deadline
                // against the same backlog sheds again, so retrying here
                // would burn the whole budget learning nothing.
                SubmitOutcome::ShedDeadline { predicted_wait_ms } => {
                    return Err(ClientError::Shed { predicted_wait_ms });
                }
                SubmitOutcome::Rejected { retry_after_ms } => {
                    rejections += 1;
                    if Instant::now() >= deadline {
                        return Err(ClientError::Server {
                            code: ErrorCode::Draining,
                            msg: format!(
                                "admission retry budget exhausted after {rejections} rejections"
                            ),
                        });
                    }
                    // Honour the hint, capped so tests stay fast — and
                    // jittered: a rejection wave hands the same hint to
                    // every refused client, and without jitter they all
                    // come back in lockstep and collide again.
                    let base = u64::from(retry_after_ms.clamp(1, 250));
                    std::thread::sleep(Duration::from_millis(jittered(&mut rng, base)));
                }
            }
        }
    }

    /// Poll a job's state.
    pub fn poll(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.call_retrying(&Request::Poll { job })? {
            Response::Status { state, .. } => Ok(state),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetch (and consume) a finished job's result.
    pub fn fetch(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        match self.call(&Request::Fetch { job })? {
            Response::JobResult {
                ok,
                wall_us,
                detail,
                ..
            } => Ok(JobOutcome {
                ok,
                wall_us,
                detail,
            }),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Block server-side until the job finishes, then receive its result
    /// — one `Await` round trip, no polling.  The connection must have no
    /// other request in flight (use [`Client::send`]/[`Client::recv`]
    /// directly to pipeline awaits).
    pub fn await_result(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        match self.call(&Request::Await { job })? {
            Response::JobResult {
                ok,
                wall_us,
                detail,
                ..
            } => Ok(JobOutcome {
                ok,
                wall_us,
                detail,
            }),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Block until the job reaches a terminal state, then fetch its
    /// result.  Polls with jittered exponential backoff (100µs doubling
    /// to a 50ms cap) rather than a fixed-rate busy-poll, so a fleet of
    /// waiting clients does not hammer the server in lockstep; `timeout`
    /// bounds the total wait.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> Result<JobOutcome, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut rng = jitter_rng(job);
        let mut backoff_us = 100u64;
        loop {
            let state = self.poll(job)?;
            if state.terminal() {
                return self.fetch(job);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Server {
                    code: ErrorCode::NotReady,
                    msg: format!("job {job} still {state:?} after {timeout:?}"),
                });
            }
            std::thread::sleep(Duration::from_micros(jittered(&mut rng, backoff_us)));
            backoff_us = (backoff_us * 2).min(50_000);
        }
    }

    /// The server's stats JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Request a rolling restart of the worker pool (cluster mode);
    /// returns the number of workers being cycled.  A single-process
    /// server refuses with `BadPayload`.
    pub fn restart(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Restart)? {
            Response::Restarting { workers } => Ok(workers),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Request the graceful drain; returns the jobs still outstanding.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Draining { outstanding } => Ok(outstanding),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
