//! The blocking client: one TCP connection, request/response framing,
//! and the submit-retry-poll-fetch convenience loop `loadgen` and the
//! tests drive.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::job::{JobOutcome, JobSpec, JobState};
use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, truncated frame).
    Io(std::io::Error),
    /// The server answered with bytes the protocol cannot decode.
    Proto(String),
    /// The server closed the connection mid-conversation.
    Closed,
    /// A structurally valid response that makes no sense for the request
    /// (e.g. `Pong` to `Submit`).
    Unexpected(Response),
    /// The server refused with a typed error.
    Server {
        /// The refusal code.
        code: ErrorCode,
        /// Server-provided detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(m) => write!(f, "protocol: {m}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
            ClientError::Server { code, msg } => write!(f, "server error {code:?}: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What `submit` can come back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted under this id.
    Accepted(u64),
    /// Backpressured; retry after the given delay.
    Rejected {
        /// Server's backoff hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The server is draining and takes no new work.
    Draining,
}

/// A connected client (one TCP stream, used serially).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let body = match read_frame(&mut self.reader) {
            Ok(Some(b)) => b,
            Ok(None) => return Err(ClientError::Closed),
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::Proto(e)) => return Err(ClientError::Proto(e.to_string())),
        };
        Response::decode(&body).map_err(|e| ClientError::Proto(e.to_string()))
    }

    /// Submit a job (does not retry; see [`Client::submit_with_retry`]).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        match self.call(&Request::Submit(*spec))? {
            Response::Accepted { job } => Ok(SubmitOutcome::Accepted(job)),
            Response::Rejected { retry_after_ms } => Ok(SubmitOutcome::Rejected { retry_after_ms }),
            Response::Error {
                code: ErrorCode::Draining,
                ..
            } => Ok(SubmitOutcome::Draining),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submit with bounded backoff on `Rejected`.  Returns the job id and
    /// how many rejections were absorbed, or `None` for a draining server.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_wait: Duration,
    ) -> Result<Option<(u64, u32)>, ClientError> {
        let deadline = Instant::now() + max_wait;
        let mut rejections = 0u32;
        loop {
            match self.submit(spec)? {
                SubmitOutcome::Accepted(id) => return Ok(Some((id, rejections))),
                SubmitOutcome::Draining => return Ok(None),
                SubmitOutcome::Rejected { retry_after_ms } => {
                    rejections += 1;
                    if Instant::now() >= deadline {
                        return Err(ClientError::Server {
                            code: ErrorCode::Draining,
                            msg: format!(
                                "admission retry budget exhausted after {rejections} rejections"
                            ),
                        });
                    }
                    // Honour the hint, capped so tests stay fast.
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 250) as u64));
                }
            }
        }
    }

    /// Poll a job's state.
    pub fn poll(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.call(&Request::Poll { job })? {
            Response::Status { state, .. } => Ok(state),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetch (and consume) a finished job's result.
    pub fn fetch(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        match self.call(&Request::Fetch { job })? {
            Response::JobResult {
                ok,
                wall_us,
                detail,
                ..
            } => Ok(JobOutcome {
                ok,
                wall_us,
                detail,
            }),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Block until the job finishes, then fetch its result.  Polls with a
    /// short sleep; `timeout` bounds the total wait.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> Result<JobOutcome, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.poll(job)? {
                JobState::Done | JobState::Failed => return self.fetch(job),
                JobState::Queued | JobState::Running => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Server {
                            code: ErrorCode::NotReady,
                            msg: format!("job {job} still pending after {timeout:?}"),
                        });
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// The server's stats JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Request the graceful drain; returns the jobs still outstanding.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Draining { outstanding } => Ok(outstanding),
            Response::Error { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
