//! Job specifications and their execution on the shared runtime.
//!
//! A *job* is one of the workloads the reproduction already knows how to
//! run — an EPCC construct exercise or an NPB kernel at a small class —
//! so the server doubles as a realistic mixed-workload driver: the same
//! kernels the paper measures, now arriving as concurrent requests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use romp::{Runtime, Schedule, Worker};
use romp_epcc::{delay, Construct};
use romp_npb::{Class, NpbKernel};

/// A supervision-diagnostic workload: misbehaves on purpose so the kill
/// paths (deadline, cancel, panic isolation, watchdog escalation) can be
/// exercised end-to-end against a live server.  Rejected at admission
/// unless [`JobLimits::allow_diag`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagSpec {
    /// Panic inside the parallel region — exercises the dispatcher's
    /// panic isolation.
    Panic,
    /// Spin for `ms` milliseconds crossing a barrier checkpoint each
    /// iteration — a long job that cancels promptly.
    Spin {
        /// How long to spin.
        ms: u32,
    },
    /// Loop through a named critical for `ms` milliseconds — the
    /// backend-lock path, which a persistent MRAPI fault can wedge (the
    /// watchdog-escalation scenario).
    CriticalLoop {
        /// How long to loop.
        ms: u32,
    },
}

/// What a client asks the server to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSpec {
    /// One EPCC construct, exercised `inner_reps` times on a team of
    /// `threads` (the syncbench inner loop, without the measurement
    /// scaffolding).
    Epcc {
        /// Which construct to exercise.
        construct: Construct,
        /// Team size.
        threads: u8,
        /// Construct executions per job.
        inner_reps: u16,
    },
    /// One NPB kernel run, verification included.
    Npb {
        /// Which kernel.
        kernel: NpbKernel,
        /// Problem class (keep to S/W for serving; A is a batch job).
        class: Class,
        /// Team size.
        threads: u8,
    },
    /// A supervision diagnostic (see [`DiagSpec`]); admission-gated.
    Diag {
        /// Which misbehaviour.
        diag: DiagSpec,
        /// Team size.
        threads: u8,
    },
}

/// Admission limits a [`JobSpec`] must satisfy (checked server-side so a
/// hand-rolled client cannot request a 200-thread team or a day of work).
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Largest team a job may request.
    pub max_threads: u8,
    /// Largest EPCC `inner_reps`.
    pub max_inner_reps: u16,
    /// Largest NPB class admitted while serving.
    pub max_class: Class,
    /// Whether [`JobSpec::Diag`] workloads are admitted.  Off by default:
    /// they exist to exercise the supervision machinery in tests and soak
    /// runs, not for production clients.
    pub allow_diag: bool,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_threads: 16,
            max_inner_reps: 4096,
            max_class: Class::W,
            allow_diag: false,
        }
    }
}

/// Longest diag spin/loop admitted (keeps a hostile client from parking a
/// dispatcher for minutes even when diagnostics are enabled).
const MAX_DIAG_MS: u32 = 120_000;

fn class_rank(c: Class) -> u8 {
    match c {
        Class::S => 0,
        Class::W => 1,
        Class::A => 2,
    }
}

impl JobSpec {
    /// Validate against the server's limits.
    pub fn validate(&self, limits: &JobLimits) -> Result<(), &'static str> {
        match *self {
            JobSpec::Epcc {
                threads,
                inner_reps,
                ..
            } => {
                if threads == 0 || threads > limits.max_threads {
                    return Err("threads out of range");
                }
                if inner_reps == 0 || inner_reps > limits.max_inner_reps {
                    return Err("inner_reps out of range");
                }
                Ok(())
            }
            JobSpec::Npb { class, threads, .. } => {
                if threads == 0 || threads > limits.max_threads {
                    return Err("threads out of range");
                }
                if class_rank(class) > class_rank(limits.max_class) {
                    return Err("class too large for serving");
                }
                Ok(())
            }
            JobSpec::Diag { diag, threads } => {
                if !limits.allow_diag {
                    return Err("diagnostic jobs not admitted");
                }
                if threads == 0 || threads > limits.max_threads {
                    return Err("threads out of range");
                }
                match diag {
                    DiagSpec::Panic => Ok(()),
                    DiagSpec::Spin { ms } | DiagSpec::CriticalLoop { ms } => {
                        if ms == 0 || ms > MAX_DIAG_MS {
                            return Err("diag duration out of range");
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    /// Short label for stats (`epcc.barrier`, `npb.ep.w`, ...).
    pub fn label(&self) -> String {
        match self {
            JobSpec::Epcc { construct, .. } => {
                format!(
                    "epcc.{}",
                    construct.label().to_ascii_lowercase().replace(' ', "_")
                )
            }
            JobSpec::Npb { kernel, class, .. } => format!(
                "npb.{}.{}",
                kernel.name().to_ascii_lowercase(),
                class.label().to_ascii_lowercase()
            ),
            JobSpec::Diag { diag, .. } => match diag {
                DiagSpec::Panic => "diag.panic".to_string(),
                DiagSpec::Spin { .. } => "diag.spin".to_string(),
                DiagSpec::CriticalLoop { .. } => "diag.critical_loop".to_string(),
            },
        }
    }
}

/// Where a submitted job is in its lifecycle.
///
/// Terminal states are `Done`, `Failed`, `Cancelled` and `TimedOut`; every
/// accepted job reaches exactly one of them (`Failed` also covers panics —
/// the payload message lands in the outcome detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// Executing on the shared runtime.
    Running,
    /// Finished with a passing verification.
    Done,
    /// Finished but verification failed, or the job panicked (result
    /// still fetchable).
    Failed,
    /// A cancel was requested while running; the region is unwinding to
    /// its next cooperative checkpoint.
    Cancelling,
    /// Terminal: the deadline fired and the job unwound.
    TimedOut,
    /// Terminal: a client cancel (or pre-run cancel) took effect.
    Cancelled,
}

impl JobState {
    /// Stable wire encoding (shared by the client protocol and the
    /// cluster's worker control protocol).
    pub fn to_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelling => 4,
            JobState::TimedOut => 5,
            JobState::Cancelled => 6,
        }
    }

    /// Decode the wire byte; `None` for values no state maps to.
    pub fn from_u8(v: u8) -> Option<JobState> {
        Some(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelling,
            5 => JobState::TimedOut,
            6 => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether this state is final — the job will never change state
    /// again and its outcome (if any) is fetchable.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::TimedOut
        )
    }
}

/// A finished job's result.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Whether the workload's own verification passed.
    pub ok: bool,
    /// Execution wall time, microseconds (queue wait excluded).
    pub wall_us: u64,
    /// Kernel-specific summary.
    pub detail: String,
}

/// Busy-work units inside each EPCC construct execution (the syncbench
/// `delaylength` analogue; fixed — serving measures the service, not the
/// construct, so no calibration loop per job).
const EPCC_DELAY: u64 = 32;

/// Execute `spec` on the shared runtime.
///
/// Never panics and never aborts the service: the runtime's own fault
/// model applies (persistent MCA trouble degrades the backend under this
/// job, which then completes on the fallback), and a kernel whose
/// verification fails reports `ok = false` rather than erroring.
pub fn execute(rt: &Runtime, spec: &JobSpec) -> JobOutcome {
    let t0 = Instant::now();
    match *spec {
        JobSpec::Epcc {
            construct,
            threads,
            inner_reps,
        } => {
            let n = threads as usize;
            let inner = inner_reps as u64;
            run_epcc(rt, construct, n, inner);
            JobOutcome {
                ok: true,
                wall_us: t0.elapsed().as_micros() as u64,
                detail: format!("{} x{inner} on {n} threads", construct.label()),
            }
        }
        JobSpec::Npb {
            kernel,
            class,
            threads,
        } => {
            let res = kernel.run(rt, threads as usize, class);
            JobOutcome {
                ok: res.verified(),
                wall_us: t0.elapsed().as_micros() as u64,
                detail: format!(
                    "{}.{} mops={:.2} {:?}",
                    res.name,
                    class.label(),
                    res.mops,
                    res.verification
                ),
            }
        }
        JobSpec::Diag { diag, threads } => {
            let n = threads as usize;
            run_diag(rt, diag, n);
            JobOutcome {
                ok: true,
                wall_us: t0.elapsed().as_micros() as u64,
                detail: format!("diag {diag:?} on {n} threads"),
            }
        }
    }
}

/// The misbehaving diagnostic bodies.  Each keeps its loop *inside* a
/// single parallel region so a fired cancel token unwinds the whole job
/// at the next checkpoint (a loop of short regions would restart between
/// cancels).
fn run_diag(rt: &Runtime, diag: DiagSpec, n: usize) {
    match diag {
        // Every member panics (none left stranded at an explicit barrier
        // the panicker skipped); the first payload surfaces at the master.
        DiagSpec::Panic => rt.parallel(n, |_| panic!("diag: deliberate panic")),
        DiagSpec::Spin { ms } => {
            let until = Instant::now() + Duration::from_millis(u64::from(ms));
            // Master decides when to stop and the decision crosses the
            // barrier with everyone, so all members run the same number of
            // barrier phases (per-member clock reads would desync them).
            let done = AtomicBool::new(false);
            rt.parallel(n, |w| loop {
                if w.is_master() && Instant::now() >= until {
                    done.store(true, Ordering::Release);
                }
                delay(EPCC_DELAY);
                w.barrier();
                if done.load(Ordering::Acquire) {
                    break;
                }
            });
        }
        DiagSpec::CriticalLoop { ms } => {
            let until = Instant::now() + Duration::from_millis(u64::from(ms));
            rt.parallel(n, move |w| {
                while Instant::now() < until {
                    w.critical("diag-critical", || delay(EPCC_DELAY));
                }
                w.barrier();
            });
        }
    }
}

/// The EPCC construct bodies, mirroring `romp_epcc::measure`'s inner
/// loops without the timing scaffolding.
fn run_epcc(rt: &Runtime, construct: Construct, n: usize, inner: u64) {
    let len = EPCC_DELAY;
    // Criticals/locks split the inner repetitions across the team the way
    // syncbench does.
    let share =
        |w: &Worker| inner / n as u64 + u64::from((w.thread_num() as u64) < inner % n as u64);
    match construct {
        Construct::Parallel => {
            for _ in 0..inner {
                rt.parallel(n, |_| delay(len));
            }
        }
        Construct::For => rt.parallel(n, |w| {
            for _ in 0..inner {
                w.for_range(0..n as u64, Schedule::Static { chunk: None }, |_| {
                    delay(len)
                });
            }
        }),
        Construct::ParallelFor => {
            for _ in 0..inner {
                rt.parallel_for(n, 0..n as u64, Schedule::Static { chunk: None }, |_| {
                    delay(len)
                });
            }
        }
        Construct::Barrier => rt.parallel(n, |w| {
            for _ in 0..inner {
                delay(len);
                w.barrier();
            }
        }),
        Construct::Single => rt.parallel(n, |w| {
            for _ in 0..inner {
                w.single(|| delay(len));
            }
        }),
        Construct::Critical => rt.parallel(n, |w| {
            for _ in 0..share(w) {
                w.critical("serve-epcc", || delay(len));
            }
        }),
        Construct::Lock => {
            let lock = rt.new_lock();
            rt.parallel(n, |w| {
                for _ in 0..share(w) {
                    lock.with(|| delay(len));
                }
            });
        }
        Construct::Reduction => {
            for _ in 0..inner {
                rt.parallel(n, |w| {
                    delay(len);
                    std::hint::black_box(w.reduce_u64(1, romp::ReduceOp::Sum));
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::{BackendKind, Runtime};

    #[test]
    fn limits_reject_out_of_range_specs() {
        let limits = JobLimits::default();
        let ok = JobSpec::Epcc {
            construct: Construct::Barrier,
            threads: 4,
            inner_reps: 8,
        };
        assert!(ok.validate(&limits).is_ok());
        let zero = JobSpec::Epcc {
            construct: Construct::Barrier,
            threads: 0,
            inner_reps: 8,
        };
        assert!(zero.validate(&limits).is_err());
        let wide = JobSpec::Npb {
            kernel: NpbKernel::Ep,
            class: Class::S,
            threads: 200,
        };
        assert!(wide.validate(&limits).is_err());
        let big = JobSpec::Npb {
            kernel: NpbKernel::Ep,
            class: Class::A,
            threads: 2,
        };
        assert!(big.validate(&limits).is_err(), "class A not served");
    }

    #[test]
    fn labels_are_stable() {
        let s = JobSpec::Epcc {
            construct: Construct::ParallelFor,
            threads: 2,
            inner_reps: 1,
        };
        assert_eq!(s.label(), "epcc.parallel_for");
        let n = JobSpec::Npb {
            kernel: NpbKernel::Cg,
            class: Class::S,
            threads: 2,
        };
        assert_eq!(n.label(), "npb.cg.s");
    }

    #[test]
    fn every_epcc_construct_executes() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        for c in [
            Construct::Parallel,
            Construct::For,
            Construct::ParallelFor,
            Construct::Barrier,
            Construct::Single,
            Construct::Critical,
            Construct::Reduction,
            Construct::Lock,
        ] {
            let out = execute(
                &rt,
                &JobSpec::Epcc {
                    construct: c,
                    threads: 2,
                    inner_reps: 4,
                },
            );
            assert!(out.ok, "{c:?}");
        }
    }

    #[test]
    fn npb_job_verifies() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let out = execute(
            &rt,
            &JobSpec::Npb {
                kernel: NpbKernel::Ep,
                class: Class::S,
                threads: 2,
            },
        );
        assert!(out.ok, "{}", out.detail);
        assert!(out.wall_us > 0);
    }
}
