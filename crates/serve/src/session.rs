//! The transport seam between connection byte streams and the serving
//! core (PR 7).
//!
//! The epoll reactor and the deterministic simulator (`romp-sim`) both
//! need the *same* per-connection logic — incremental frame decode,
//! request routing, submit batching, await parking, write backpressure,
//! EOF arming — but drive it from different event sources (socket
//! readiness vs. virtual-time events).  This module holds that shared
//! logic:
//!
//! * [`ServeCore`] — what a connection needs from the serving stack.
//!   The production [`Shared`](crate::server) state and the simulator's
//!   core both implement the accessor methods; the request-routing
//!   *policy* (admission, idempotency, fetch/await consumption, cancel,
//!   drain) lives in this trait's provided methods so it literally
//!   cannot diverge between production and simulation.
//! * [`Session`] — one connection's transport-independent state: the
//!   [`RecvBuf`]/[`SendBuf`] pair plus the close/EOF/deferral flags.
//! * [`route_frames`] — decode-and-route every buffered frame on a
//!   session (the reactor's old `decode_conn`, verbatim policy).

use crate::job::{JobLimits, JobState};
use crate::lifecycle::{retry_after_hint, CancelOutcome, Consumed, JobTable, StageRefusal};
use crate::metrics::Metrics;
use crate::protocol::{ErrorCode, ProtoError, Request, Response};
use crate::queue::{lane_of, JobQueue, QueuedJob};
use crate::reactor::{RecvBuf, SendBuf};
use crate::JobSpec;
use mca_platform::Clock;

/// Per-connection write-buffer bound: past this, the connection is not
/// read or decoded until the peer drains responses (backpressure).
pub const WBUF_LIMIT: usize = 256 * 1024;

/// Bound on frames decoded from one connection in one service pass, so a
/// single flood cannot starve its neighbours within a wakeup.
pub const FRAMES_PER_PASS: usize = 4096;

/// How an `Await` request resolves right now.
pub enum AwaitDisposition {
    /// Answer immediately (terminal result consumed, or `UnknownJob`).
    Ready(Response),
    /// The job is live but not terminal: park the connection; the
    /// completion bus will answer it.
    Pending,
}

/// What one connection needs from the serving stack, implemented by the
/// production server's shared state and by the simulator's core.
///
/// The provided methods are the serving *policy* — admission with
/// idempotency, batch admission bookkeeping, fetch/await consumption,
/// cancel semantics, drain — expressed once over the accessors.
pub trait ServeCore {
    /// The job lifecycle table.
    fn table(&self) -> &JobTable;
    /// The bounded admission queue.
    fn queue(&self) -> &JobQueue;
    /// The serving metric instruments.
    fn metrics(&self) -> &Metrics;
    /// Per-job validation limits.
    fn limits(&self) -> &JobLimits;
    /// Deadline applied to jobs that do not request one (ms; 0 = none).
    fn default_deadline_ms(&self) -> u32;
    /// Whether a drain has begun (refuse new submissions).
    fn draining(&self) -> bool;
    /// Begin the drain: set the flag and close the queue.
    fn begin_drain(&self);
    /// Smoothed per-job execution time (ns) — the retry-after basis.
    fn ewma_ns(&self) -> u64;
    /// Smoothed execution time for one job class (`JobSpec::label`),
    /// `None` until that class completes its first job.  The shed gate
    /// falls back to the global EWMA for never-seen classes.
    fn class_ewma_ns(&self, label: &str) -> Option<u64>;
    /// The runtime's activity counter (watchdog progress detection).
    fn activity(&self) -> u64;
    /// Jobs accepted but not yet finished (the `Draining` response).
    fn outstanding(&self) -> u64;
    /// The live stats JSON document.
    fn stats_json(&self) -> String;
    /// A job reached a terminal state outside the dispatcher (cancel of
    /// a queued job): notify whoever parks `Await`s.
    fn on_complete(&self, job: u64);

    /// Operator-triggered rolling restart of the worker pool.  Returns
    /// the number of workers being cycled, or `None` when there is no
    /// pool behind this core (the single-process server and the
    /// simulator), which answers the client with a typed refusal.
    fn rolling_restart(&self) -> Option<u64> {
        None
    }

    /// The clock requests are timestamped against.
    fn clock(&self) -> &Clock {
        self.table().clock()
    }

    /// Whether admission-time deadline shedding is enabled (off by
    /// default: a deadline job then waits its turn and the watchdog
    /// enforces the deadline, exactly the pre-shed behavior).
    fn shed_enabled(&self) -> bool {
        false
    }

    /// Lower bound on `retry_after_ms` hints (cold-start guard: before
    /// the first completion the EWMA is 0 and an unfloored hint would
    /// synchronize every refused client into an immediate retry wave).
    fn retry_floor_ms(&self) -> u32 {
        10
    }

    /// The backpressure hint for a refused client (see
    /// [`retry_after_hint`]).
    fn retry_after_ms(&self) -> u32 {
        retry_after_hint(self.ewma_ns(), self.queue().len(), self.retry_floor_ms())
    }

    /// Stage a submission: validate, mint the id, insert the table
    /// entry, claim the idempotency key.  `Ok` hands back the
    /// queue-ready job for this wakeup's [`ServeCore::admit_batch`];
    /// `Err` is the immediate response and nothing joins the batch.
    ///
    /// A duplicate of a *staged but unadmitted* submission is answered
    /// `Rejected { retry_after_ms }`, never `Accepted`: handing out the
    /// original's id before admission confirms could leave the
    /// duplicate holding a dangling id if admission then fails (the
    /// lost-job race `romp-sim` reproduces; see [`crate::lifecycle`]).
    ///
    /// With shedding enabled, a deadline-carrying job whose predicted
    /// completion (lane-aware queue wait + its class's service-time
    /// EWMA) already exceeds its deadline slack is refused with
    /// [`Response::ShedDeadline`] *after* staging: the idempotency
    /// check must run first (a duplicate of an admitted job answers
    /// `Accepted`, never a shed), so a shed unwinds the staging via
    /// [`JobTable::retract`] like a failed admission does.
    fn prepare_submit(
        &self,
        spec: JobSpec,
        deadline_ms: u32,
        idem_key: u64,
        affinity: u64,
        priority: u8,
    ) -> Result<QueuedJob, Response> {
        if self.draining() {
            return Err(Response::Error {
                code: ErrorCode::Draining,
                msg: "server is draining".into(),
            });
        }
        match self.table().stage(
            spec,
            deadline_ms,
            self.default_deadline_ms(),
            self.limits(),
            idem_key,
            affinity,
            priority,
        ) {
            Ok(qjob) => {
                if self.shed_enabled() {
                    if let Some(deadline_ns) = qjob.deadline_ns {
                        let slack_ns = deadline_ns.saturating_sub(self.clock().now_ns());
                        let wait_jobs = self.queue().predicted_wait_jobs(priority);
                        let global_ns = self.ewma_ns();
                        let self_ns = self.class_ewma_ns(&qjob.spec.label()).unwrap_or(global_ns);
                        let predicted_ns =
                            wait_jobs.saturating_mul(global_ns).saturating_add(self_ns);
                        if predicted_ns > slack_ns {
                            self.table().retract(qjob.id);
                            self.metrics().sched_sheds[lane_of(priority)].incr();
                            return Err(Response::ShedDeadline {
                                predicted_wait_ms: (predicted_ns / 1_000_000)
                                    .clamp(1, u64::from(u32::MAX))
                                    as u32,
                            });
                        }
                    }
                }
                Ok(qjob)
            }
            Err(StageRefusal::Invalid(why)) => {
                self.metrics().invalid.incr();
                Err(Response::Error {
                    code: ErrorCode::BadPayload,
                    msg: why.into(),
                })
            }
            Err(StageRefusal::IdemAdmitted(job)) => {
                self.metrics().idem_hits.incr();
                Err(Response::Accepted { job })
            }
            Err(StageRefusal::IdemPending) => {
                self.metrics().idem_hits.incr();
                self.metrics().rejected.incr();
                Err(Response::Rejected {
                    retry_after_ms: self.retry_after_ms(),
                })
            }
        }
    }

    /// Admit one wakeup's worth of prepared submissions as a single
    /// batch — one queue lock, one dispatcher wakeup.  Returns one
    /// response per input job, in order: `Accepted` for the admitted
    /// prefix (whose idempotency entries flip to *admitted*),
    /// `Rejected`/`Draining` (with staging retracted) for the rest.
    fn admit_batch(&self, jobs: Vec<QueuedJob>) -> Vec<Response> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        let lanes: Vec<usize> = jobs.iter().map(|j| lane_of(j.priority)).collect();
        let res = self.queue().try_push_batch(jobs);
        if res.admitted > 0 {
            self.metrics().accepted.add(res.admitted as u64);
            self.metrics().queue_depth.set(res.depth as u64);
            self.metrics().queue_peak.record_max(res.depth as u64);
            for &lane in &lanes[..res.admitted] {
                self.metrics().sched_admits[lane].incr();
            }
            let depths = self.queue().lane_depths();
            for (lane, &d) in depths.iter().enumerate() {
                self.metrics().sched_depth[lane].set(d as u64);
            }
            self.table().confirm_admitted(&ids[..res.admitted]);
        }
        ids.iter()
            .enumerate()
            .map(|(i, &id)| {
                if i < res.admitted {
                    Response::Accepted { job: id }
                } else {
                    self.table().retract(id);
                    if res.closed {
                        Response::Error {
                            code: ErrorCode::Draining,
                            msg: "server is draining".into(),
                        }
                    } else {
                        self.metrics().rejected.incr();
                        Response::Rejected {
                            retry_after_ms: self.retry_after_ms(),
                        }
                    }
                }
            })
            .collect()
    }

    /// Resolve an `Await`: consume like a `Fetch` if the job is
    /// terminal, park otherwise.  Called both at request time and again
    /// when the completion bus reports the job finished — the first
    /// parked waiter to get here consumes the outcome, later ones
    /// observe `UnknownJob`.
    fn try_complete_await(&self, job: u64) -> AwaitDisposition {
        match self.table().consume(job) {
            Consumed::Result(_, out) => AwaitDisposition::Ready(Response::JobResult {
                job,
                ok: out.ok,
                wall_us: out.wall_us,
                detail: out.detail,
            }),
            Consumed::NotReady(_) => AwaitDisposition::Pending,
            Consumed::Unknown => AwaitDisposition::Ready(Response::Error {
                code: ErrorCode::UnknownJob,
                msg: format!("job {job}"),
            }),
        }
    }

    /// Handle every request kind that answers immediately and in
    /// request order.  `Submit` and `Await` are routed by
    /// [`route_frames`] before this point (they batch and park
    /// respectively); their arms here are defensive only.
    fn sync_request(&self, req: Request) -> Response {
        match req {
            Request::Cancel { job } => {
                self.metrics().req_cancel.incr();
                match self.table().cancel(job, self.activity()) {
                    CancelOutcome::Unknown => Response::Error {
                        code: ErrorCode::UnknownJob,
                        msg: format!("job {job}"),
                    },
                    CancelOutcome::KilledQueued => {
                        self.metrics().cancelled.incr();
                        // Outside the jobs lock: a parked Await on this
                        // job answers now.
                        self.on_complete(job);
                        Response::Status {
                            job,
                            state: JobState::Cancelled,
                        }
                    }
                    CancelOutcome::Cancelling => Response::Status {
                        job,
                        state: JobState::Cancelling,
                    },
                    CancelOutcome::Unchanged(state) => Response::Status { job, state },
                }
            }
            Request::Poll { job } => {
                self.metrics().req_poll.incr();
                match self.table().poll(job) {
                    Some(state) => Response::Status { job, state },
                    None => Response::Error {
                        code: ErrorCode::UnknownJob,
                        msg: format!("job {job}"),
                    },
                }
            }
            Request::Fetch { job } => {
                self.metrics().req_fetch.incr();
                match self.table().consume(job) {
                    Consumed::Result(_, out) => Response::JobResult {
                        job,
                        ok: out.ok,
                        wall_us: out.wall_us,
                        detail: out.detail,
                    },
                    Consumed::NotReady(_) => Response::Error {
                        code: ErrorCode::NotReady,
                        msg: format!("job {job} still pending"),
                    },
                    Consumed::Unknown => Response::Error {
                        code: ErrorCode::UnknownJob,
                        msg: format!("job {job}"),
                    },
                }
            }
            Request::Stats => {
                self.metrics().req_stats.incr();
                Response::Stats {
                    json: self.stats_json(),
                }
            }
            Request::Ping => {
                self.metrics().req_ping.incr();
                Response::Pong
            }
            Request::Shutdown => {
                self.begin_drain();
                Response::Draining {
                    outstanding: self.outstanding(),
                }
            }
            Request::Restart => match self.rolling_restart() {
                Some(workers) => Response::Restarting { workers },
                None => Response::Error {
                    code: ErrorCode::BadPayload,
                    msg: "rolling restart requires a worker pool (--workers)".into(),
                },
            },
            Request::Submit { .. } | Request::Await { .. } => Response::Error {
                code: ErrorCode::BadPayload,
                msg: "internal: submit/await bypassed the reactor".into(),
            },
        }
    }
}

/// One connection's transport-independent state: frame reassembly, the
/// response buffer, and the close/EOF/deferral flags.  The production
/// reactor pairs it with a `TcpStream`; the simulator with a virtual
/// link.
pub struct Session {
    /// Incremental frame reassembly for the inbound byte stream.
    pub rbuf: RecvBuf,
    /// Buffered responses awaiting a writable transport.
    pub wbuf: SendBuf,
    /// Peer closed its write side; close once buffered frames are
    /// handled.
    pub eof: bool,
    /// Finish flushing `wbuf`, then close (hostile-frame or EOF path).
    pub close_after_flush: bool,
    /// Marked dead; the transport sweeps it.
    pub closed: bool,
    /// Decoding was deferred (write backpressure or the per-pass frame
    /// cap); revisit without waiting for a new transport event.
    pub decode_deferred: bool,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A fresh session with empty buffers.
    pub fn new() -> Session {
        Session {
            rbuf: RecvBuf::new(),
            wbuf: SendBuf::new(),
            eof: false,
            close_after_flush: false,
            closed: false,
            decode_deferred: false,
        }
    }

    /// After a decode pass: if the peer sent EOF and decoding is
    /// quiescent (no deferred frames), arm the flush-then-close path.
    /// A deferred pass (frame cap or write backpressure) still has
    /// complete frames buffered, and the close contract answers those
    /// first.
    pub fn arm_close_if_quiescent(&mut self) {
        if self.eof && !self.close_after_flush && !self.decode_deferred {
            self.close_after_flush = true;
        }
    }

    /// Whether the write buffer is past the backpressure cap.
    pub fn backpressured(&self) -> bool {
        self.wbuf.pending() >= WBUF_LIMIT
    }
}

/// A response slot staged during decoding: either already known, or the
/// n-th member of this wakeup's submit batch (filled after admission).
pub enum PendingResp {
    /// Response known at decode time (sync requests, refusals).
    Ready(Response),
    /// The n-th member of the wakeup's submit batch; the response is
    /// the n-th element of [`ServeCore::admit_batch`]'s return.
    Submit(usize),
}

/// Decode every complete frame buffered on `sess`, staging one response
/// slot per request.  `Submit`s join `batch` (admitted later, as one
/// batch for the whole wakeup); `Await`s that cannot answer yet push
/// their job id onto `parked` and stage nothing.
pub fn route_frames<C: ServeCore + ?Sized>(
    core: &C,
    sess: &mut Session,
    batch: &mut Vec<QueuedJob>,
    parked: &mut Vec<u64>,
) -> Vec<PendingResp> {
    let metrics = core.metrics();
    let mut out = Vec::new();
    // The fairness bound counts every decoded frame, not just staged
    // responses — parked `Await`s stage nothing, and a flood of them
    // must not decode unboundedly within one pass.
    let mut decoded = 0usize;
    while decoded < FRAMES_PER_PASS {
        match sess.rbuf.next_frame() {
            Ok(Some(body)) => {
                decoded += 1;
                let t0 = core.clock().now_ns();
                let staged = match Request::decode(&body) {
                    Ok(Request::Submit {
                        spec,
                        deadline_ms,
                        idem_key,
                        affinity,
                        priority,
                    }) => {
                        metrics.req_submit.incr();
                        match core.prepare_submit(spec, deadline_ms, idem_key, affinity, priority) {
                            Ok(qjob) => {
                                batch.push(qjob);
                                Some(PendingResp::Submit(batch.len() - 1))
                            }
                            Err(resp) => Some(PendingResp::Ready(resp)),
                        }
                    }
                    Ok(Request::Await { job }) => {
                        metrics.req_await.incr();
                        match core.try_complete_await(job) {
                            AwaitDisposition::Ready(resp) => Some(PendingResp::Ready(resp)),
                            AwaitDisposition::Pending => {
                                parked.push(job);
                                None
                            }
                        }
                    }
                    Ok(req) => Some(PendingResp::Ready(core.sync_request(req))),
                    Err(e) => {
                        // Frame boundaries are intact; the payload is bad.
                        // Answer and keep the connection.
                        metrics.proto_errors.incr();
                        Some(PendingResp::Ready(Response::Error {
                            code: match e {
                                ProtoError::BadPayload(_) => ErrorCode::BadPayload,
                                _ => ErrorCode::BadFrame,
                            },
                            msg: e.to_string(),
                        }))
                    }
                };
                metrics
                    .lat_handle
                    .record(core.clock().now_ns().saturating_sub(t0));
                if let Some(s) = staged {
                    out.push(s);
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Hostile length prefix: the byte stream cannot be
                // trusted again — answer once, then close.
                metrics.proto_errors.incr();
                out.push(PendingResp::Ready(Response::Error {
                    code: ErrorCode::BadFrame,
                    msg: e.to_string(),
                }));
                sess.close_after_flush = true;
                break;
            }
        }
    }
    if decoded >= FRAMES_PER_PASS {
        sess.decode_deferred = true;
    }
    out
}
