//! The serving layer's metric instruments, resolved once per server.
//!
//! Every instrument lives in a [`MetricsRegistry`] — the production server
//! uses the shared runtime's registry (so one `Stats` request exposes the
//! whole stack), while the deterministic simulator (`romp-sim`) constructs
//! its own registry and reads the very same `serve.*` names back for
//! invariant checks.  Handles are `Arc`s interned by name, so holding this
//! struct makes every bump a lock-free atomic op.

use std::sync::Arc;

use romp_trace::{Counter, Gauge, Histogram, MetricsRegistry};

/// Cached metric instruments (resolved once; bumped lock-free).
///
/// Semi-internal: public so `romp-sim` can drive the same serving core
/// with its own registry, not a stable API for general consumption.
pub struct Metrics {
    /// Submissions admitted to the queue.
    pub accepted: Arc<Counter>,
    /// Submissions refused with a retry hint (backpressure).
    pub rejected: Arc<Counter>,
    /// Submissions refused by validation.
    pub invalid: Arc<Counter>,
    /// Jobs finished `Done`.
    pub completed: Arc<Counter>,
    /// Jobs finished `Failed` (verification failure or panic).
    pub failed: Arc<Counter>,
    /// Jobs finished `Cancelled`.
    pub cancelled: Arc<Counter>,
    /// Jobs finished `TimedOut`.
    pub timed_out: Arc<Counter>,
    /// Submissions answered from the idempotency map.
    pub idem_hits: Arc<Counter>,
    /// Malformed frames / payloads observed.
    pub proto_errors: Arc<Counter>,
    /// `Submit` requests decoded.
    pub req_submit: Arc<Counter>,
    /// `Poll` requests decoded.
    pub req_poll: Arc<Counter>,
    /// `Fetch` requests decoded.
    pub req_fetch: Arc<Counter>,
    /// `Await` requests decoded.
    pub req_await: Arc<Counter>,
    /// `Cancel` requests decoded.
    pub req_cancel: Arc<Counter>,
    /// `Stats` requests decoded.
    pub req_stats: Arc<Counter>,
    /// `Ping` requests decoded.
    pub req_ping: Arc<Counter>,
    /// Queue depth after the latest admission.
    pub queue_depth: Arc<Gauge>,
    /// High-water queue depth.
    pub queue_peak: Arc<Gauge>,
    /// Admission-to-dispatch wait, ns.
    pub lat_queue: Arc<Histogram>,
    /// Execution wall time, ns.
    pub lat_exec: Arc<Histogram>,
    /// Admission-to-terminal latency, ns.
    pub lat_total: Arc<Histogram>,
    /// Per-request decode+route time, ns.
    pub lat_handle: Arc<Histogram>,
    /// Watchdog sweeps performed.
    pub wd_ticks: Arc<Counter>,
    /// Deadlines the watchdog fired.
    pub wd_deadline_fired: Arc<Counter>,
    /// Watchdog escalations (backend poisoned).
    pub wd_escalations: Arc<Counter>,
    /// Cancel-request-to-terminal latency, ns.
    pub wd_cancel_latency: Arc<Histogram>,
    /// Live idempotency-map entries.
    pub dedup_size: Arc<Gauge>,
    /// Idempotency entries evicted (cap or TTL).
    pub dedup_evictions: Arc<Counter>,
    /// Poll wakeups (reactor loop iterations).
    pub reactor_wakeups: Arc<Counter>,
    /// Readiness events per wakeup.
    pub reactor_events: Arc<Histogram>,
    /// Submit batch sizes per service pass.
    pub reactor_batch: Arc<Histogram>,
    /// Connections currently registered.
    pub reactor_conns: Arc<Gauge>,
    /// Per-lane queue depth after the latest admission (Hi/Normal/Batch).
    pub sched_depth: [Arc<Gauge>; 3],
    /// Per-lane submissions admitted.
    pub sched_admits: [Arc<Counter>; 3],
    /// Per-lane submissions shed at admission (`ShedDeadline`).
    pub sched_sheds: [Arc<Counter>; 3],
    /// Accepted jobs that still missed their deadline (queued or running
    /// past it — each one is a prediction the shed gate got wrong).
    pub sched_deadline_miss: Arc<Counter>,
}

impl Metrics {
    /// Resolve every serving instrument in `reg`.
    pub fn new(reg: &MetricsRegistry) -> Self {
        // Small-count histograms (events per wakeup, submit batch sizes)
        // get power-of-two count buckets, not the ns-latency defaults.
        let counts: Vec<u64> = (0..=10).map(|p| 1u64 << p).collect();
        Metrics {
            accepted: reg.counter("serve.submit.accepted"),
            rejected: reg.counter("serve.submit.rejected"),
            invalid: reg.counter("serve.submit.invalid"),
            completed: reg.counter("serve.jobs.completed"),
            failed: reg.counter("serve.jobs.failed"),
            cancelled: reg.counter("serve.jobs.cancelled"),
            timed_out: reg.counter("serve.jobs.timed_out"),
            idem_hits: reg.counter("serve.submit.idem_hits"),
            proto_errors: reg.counter("serve.proto.errors"),
            req_submit: reg.counter("serve.req.submit"),
            req_poll: reg.counter("serve.req.poll"),
            req_fetch: reg.counter("serve.req.fetch"),
            req_await: reg.counter("serve.req.await"),
            req_cancel: reg.counter("serve.req.cancel"),
            req_stats: reg.counter("serve.req.stats"),
            req_ping: reg.counter("serve.req.ping"),
            queue_depth: reg.gauge("serve.queue.depth"),
            queue_peak: reg.gauge("serve.queue.peak"),
            lat_queue: reg.histogram_ns("serve.latency.queue_ns"),
            lat_exec: reg.histogram_ns("serve.latency.exec_ns"),
            lat_total: reg.histogram_ns("serve.latency.total_ns"),
            lat_handle: reg.histogram_ns("serve.latency.handle_ns"),
            wd_ticks: reg.counter("watchdog.ticks"),
            wd_deadline_fired: reg.counter("watchdog.deadline_fired"),
            wd_escalations: reg.counter("watchdog.escalations"),
            wd_cancel_latency: reg.histogram_ns("watchdog.cancel_latency_ns"),
            dedup_size: reg.gauge("serve.dedup.size"),
            dedup_evictions: reg.counter("serve.dedup.evictions"),
            reactor_wakeups: reg.counter("serve.reactor.wakeups"),
            reactor_events: reg.histogram("serve.reactor.events_per_wakeup", &counts),
            reactor_batch: reg.histogram("serve.reactor.batch_size", &counts),
            reactor_conns: reg.gauge("serve.reactor.connections"),
            sched_depth: [
                reg.gauge("serve.sched.depth.hi"),
                reg.gauge("serve.sched.depth.normal"),
                reg.gauge("serve.sched.depth.batch"),
            ],
            sched_admits: [
                reg.counter("serve.sched.admits.hi"),
                reg.counter("serve.sched.admits.normal"),
                reg.counter("serve.sched.admits.batch"),
            ],
            sched_sheds: [
                reg.counter("serve.sched.sheds.hi"),
                reg.counter("serve.sched.sheds.normal"),
                reg.counter("serve.sched.sheds.batch"),
            ],
            sched_deadline_miss: reg.counter("serve.sched.deadline_miss"),
        }
    }
}
