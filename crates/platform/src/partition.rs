//! Embedded hypervisor model (paper Figure 2).
//!
//! The T4240RDB ships a small Power-Architecture hypervisor that partitions
//! the machine: each partition receives a dedicated set of CPUs, a private
//! memory window and a guest OS image, and partitions may be wired together
//! with shared-memory windows or doorbell interrupts.  The paper plans to use
//! MCAPI across partitions as future work; our MCAPI crate uses this model's
//! inter-partition links as its transport cost reference.

use crate::memory::{MemoryMap, MemoryRegion, RegionClass};
use crate::topology::Topology;

/// Requested shape of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Partition name, e.g. `"linux0"`, `"rtos"`, `"baremetal-dsp"`.
    pub name: String,
    /// How many hardware threads to dedicate.
    pub hw_threads: usize,
    /// Private memory window size in bytes.
    pub memory_bytes: u64,
    /// Guest payload description (purely informational).
    pub guest: GuestKind,
}

/// What runs inside a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestKind {
    /// Full embedded Linux (the paper's SMP configuration).
    Linux,
    /// A real-time OS image.
    Rtos,
    /// Bare-metal executive — MRAPI explicitly supports these (§2B).
    BareMetal,
}

/// A realized partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Unique partition name from the spec.
    pub name: String,
    /// What the partition boots.
    pub guest: GuestKind,
    /// Hardware thread ids owned exclusively by this partition.
    pub hw_threads: Vec<usize>,
    /// Private memory window base/size in the platform map.
    pub mem_base: u64,
    /// Size of the private memory window in bytes.
    pub mem_size: u64,
}

/// Errors the hypervisor can report while building partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// More hardware threads requested than remain unassigned.
    InsufficientCpus {
        /// Hardware threads the spec asked for.
        requested: usize,
        /// Hardware threads still unassigned.
        available: usize,
    },
    /// More memory requested than remains in DDR.
    InsufficientMemory {
        /// Bytes the spec asked for.
        requested: u64,
        /// Bytes still unassigned.
        available: u64,
    },
    /// Partition names must be unique.
    DuplicateName(String),
    /// Zero CPUs or zero memory requested.
    EmptySpec(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InsufficientCpus {
                requested,
                available,
            } => {
                write!(f, "requested {requested} hw threads, only {available} free")
            }
            PartitionError::InsufficientMemory {
                requested,
                available,
            } => {
                write!(f, "requested {requested} bytes, only {available} free")
            }
            PartitionError::DuplicateName(n) => write!(f, "duplicate partition name {n:?}"),
            PartitionError::EmptySpec(n) => write!(f, "partition {n:?} requests no resources"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// The hypervisor: owns the machine, hands out partitions.
#[derive(Debug, Clone)]
pub struct Hypervisor {
    topo: Topology,
    map: MemoryMap,
    partitions: Vec<Partition>,
    next_cpu: usize,
    mem_cursor: u64,
}

impl Hypervisor {
    /// Boot the hypervisor on a topology.  It reserves nothing for itself;
    /// real systems would reserve a management core, which callers can model
    /// by creating a `"hv"` partition first.
    pub fn new(topo: Topology) -> Self {
        let map = MemoryMap::for_topology(&topo);
        Hypervisor {
            topo,
            map,
            partitions: Vec::new(),
            next_cpu: 0,
            mem_cursor: 0,
        }
    }

    /// Underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Platform memory map (DDR plus windows).
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Hardware threads not yet assigned to any partition.
    pub fn free_hw_threads(&self) -> usize {
        self.topo.num_hw_threads() - self.next_cpu
    }

    /// DDR bytes not yet assigned.
    pub fn free_memory(&self) -> u64 {
        self.topo.dram_bytes - self.mem_cursor
    }

    /// Realized partitions so far, in creation order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Create a partition per `spec`.  CPU assignment is contiguous in the
    /// platform's SMT-last placement order so a 2-core partition shares an L2
    /// only if it must; memory is carved from DDR bottom-up.
    pub fn create_partition(&mut self, spec: &PartitionSpec) -> Result<&Partition, PartitionError> {
        if spec.hw_threads == 0 || spec.memory_bytes == 0 {
            return Err(PartitionError::EmptySpec(spec.name.clone()));
        }
        if self.partitions.iter().any(|p| p.name == spec.name) {
            return Err(PartitionError::DuplicateName(spec.name.clone()));
        }
        let avail = self.free_hw_threads();
        if spec.hw_threads > avail {
            return Err(PartitionError::InsufficientCpus {
                requested: spec.hw_threads,
                available: avail,
            });
        }
        let free_mem = self.free_memory();
        if spec.memory_bytes > free_mem {
            return Err(PartitionError::InsufficientMemory {
                requested: spec.memory_bytes,
                available: free_mem,
            });
        }
        // Consume CPUs in physical id order: partitions get whole cores
        // (both SMT threads together) whenever the request size allows.
        let ids: Vec<usize> = (self.next_cpu..self.next_cpu + spec.hw_threads).collect();
        self.next_cpu += spec.hw_threads;
        let base = self.mem_cursor;
        self.mem_cursor += spec.memory_bytes;
        self.partitions.push(Partition {
            name: spec.name.clone(),
            guest: spec.guest,
            hw_threads: ids,
            mem_base: base,
            mem_size: spec.memory_bytes,
        });
        Ok(self.partitions.last().unwrap())
    }

    /// A directly-addressable shared window between two partitions (how the
    /// hypervisor wires guests together for MCAPI-style messaging).
    pub fn shared_window(&self, a: &str, b: &str, size: u64) -> Option<MemoryRegion> {
        let _pa = self.partitions.iter().find(|p| p.name == a)?;
        let _pb = self.partitions.iter().find(|p| p.name == b)?;
        let ddr = self.map.by_name("ddr0")?;
        Some(MemoryRegion {
            name: format!("shw-{a}-{b}"),
            class: RegionClass::RemoteDirect,
            base: ddr.base + self.topo.dram_bytes - size,
            size,
            latency_ns: ddr.latency_ns * 1.2, // cross-partition TLB cost
            bandwidth_bytes_per_s: ddr.bandwidth_bytes_per_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, cpus: usize, mb: u64) -> PartitionSpec {
        PartitionSpec {
            name: name.to_string(),
            hw_threads: cpus,
            memory_bytes: mb * 1024 * 1024,
            guest: GuestKind::Linux,
        }
    }

    #[test]
    fn partitions_get_disjoint_resources() {
        let mut hv = Hypervisor::new(Topology::t4240rdb());
        hv.create_partition(&spec("linux0", 16, 2048)).unwrap();
        hv.create_partition(&spec("rtos", 8, 1024)).unwrap();
        let (a, b) = (&hv.partitions()[0], &hv.partitions()[1]);
        assert!(a.hw_threads.iter().all(|t| !b.hw_threads.contains(t)));
        assert!(a.mem_base + a.mem_size <= b.mem_base || b.mem_base + b.mem_size <= a.mem_base);
        assert_eq!(hv.free_hw_threads(), 0);
    }

    #[test]
    fn rejects_oversubscription() {
        let mut hv = Hypervisor::new(Topology::t4240rdb());
        hv.create_partition(&spec("big", 24, 1024)).unwrap();
        let err = hv.create_partition(&spec("more", 1, 1)).unwrap_err();
        assert!(matches!(
            err,
            PartitionError::InsufficientCpus { available: 0, .. }
        ));
    }

    #[test]
    fn rejects_memory_exhaustion() {
        let mut hv = Hypervisor::new(Topology::t4240rdb());
        let err = hv
            .create_partition(&PartitionSpec {
                name: "huge".into(),
                hw_threads: 1,
                memory_bytes: u64::MAX / 2,
                guest: GuestKind::BareMetal,
            })
            .unwrap_err();
        assert!(matches!(err, PartitionError::InsufficientMemory { .. }));
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        let mut hv = Hypervisor::new(Topology::t4240rdb());
        hv.create_partition(&spec("a", 2, 64)).unwrap();
        assert!(matches!(
            hv.create_partition(&spec("a", 2, 64)),
            Err(PartitionError::DuplicateName(_))
        ));
        assert!(matches!(
            hv.create_partition(&PartitionSpec {
                name: "z".into(),
                hw_threads: 0,
                memory_bytes: 1,
                guest: GuestKind::Rtos
            }),
            Err(PartitionError::EmptySpec(_))
        ));
    }

    #[test]
    fn shared_window_links_partitions() {
        let mut hv = Hypervisor::new(Topology::t4240rdb());
        hv.create_partition(&spec("host", 20, 1024)).unwrap();
        hv.create_partition(&spec("dsp", 4, 256)).unwrap();
        let w = hv.shared_window("host", "dsp", 1 << 20).unwrap();
        assert_eq!(w.class, RegionClass::RemoteDirect);
        assert_eq!(w.size, 1 << 20);
        assert!(hv.shared_window("host", "nope", 1).is_none());
    }

    #[test]
    fn error_messages_render() {
        let e = PartitionError::InsufficientCpus {
            requested: 30,
            available: 24,
        };
        assert!(e.to_string().contains("30"));
        let e2 = PartitionError::DuplicateName("x".into());
        assert!(e2.to_string().contains('x'));
    }
}
