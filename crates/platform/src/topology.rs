//! Hardware topology model: chips, clusters, cores, hardware threads, caches.
//!
//! The model is deliberately structural — it knows what the machine *looks
//! like* (who shares which cache, how clusters attach to the fabric) and what
//! its headline parameters are (clock, cache sizes, bandwidths).  Behavioural
//! simulation (how long things take) is layered on top in [`crate::vtime`].

/// Cache levels present in the modeled parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Per-core instruction cache.
    L1I,
    /// Per-core data cache.
    L1D,
    /// Cluster-shared (T4240) or per-core backside (P4080) unified cache.
    L2,
    /// CoreNet platform cache, shared by every cluster on the fabric.
    L3,
}

impl CacheLevel {
    /// Short human-readable label (`"L1D"`, `"L2"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1I => "L1I",
            CacheLevel::L1D => "L1D",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        }
    }
}

/// Parameters of one cache in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Where the cache sits in the hierarchy.
    pub level: CacheLevel,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Typical load-to-use latency in core cycles.
    pub latency_cycles: u32,
}

/// One hardware thread (what the OS sees as a logical CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwThread {
    /// Global logical CPU index, 0-based, dense.
    pub id: usize,
    /// Index of the owning core in [`Topology::cores`].
    pub core: usize,
    /// Thread index within the core (0 or 1 on the dual-threaded e6500).
    pub smt_index: usize,
}

/// One physical core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// Global core index, 0-based, dense.
    pub id: usize,
    /// Index of the owning cluster in [`Topology::clusters`].
    pub cluster: usize,
    /// Hardware thread ids hosted by this core.
    pub hw_threads: Vec<usize>,
    /// Per-core caches (L1I/L1D and, on the P4080's e500mc, a backside L2).
    pub caches: Vec<CacheSpec>,
    /// ISA family marketing name, e.g. `"e6500"`.
    pub isa: String,
    /// Whether the core carries a SIMD unit (AltiVec on the e6500).
    pub simd: bool,
}

/// A cluster of cores sharing a cache and a fabric port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Global cluster index, 0-based, dense.
    pub id: usize,
    /// Core ids belonging to this cluster.
    pub cores: Vec<usize>,
    /// Cluster-shared caches (the T4240's multibank L2); may be empty.
    pub caches: Vec<CacheSpec>,
}

/// Interconnect fabric parameters (CoreNet on the modeled parts).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Marketing name, e.g. `"CoreNet"`.
    pub name: String,
    /// Platform cache attached to the fabric, if any (the T4240's 1.5 MB L3).
    pub platform_cache: Option<CacheSpec>,
    /// Aggregate fabric bandwidth in bytes/second shared by all clusters.
    pub bandwidth_bytes_per_s: f64,
    /// One-way transfer latency between clusters, nanoseconds.
    pub latency_ns: f64,
}

/// A complete modeled machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Marketing name for the platform, e.g. `"T4240RDB"`.
    pub name: String,
    /// Core clock frequency in Hz.
    pub clock_hz: u64,
    /// Cache-sharing core clusters, in id order.
    pub clusters: Vec<Cluster>,
    /// All cores, in id order.
    pub cores: Vec<Core>,
    /// All hardware threads, in id order.
    pub hw_threads: Vec<HwThread>,
    /// The coherency fabric joining the clusters.
    pub fabric: FabricSpec,
    /// Total DRAM bandwidth in bytes/second across all memory controllers.
    pub dram_bandwidth_bytes_per_s: f64,
    /// DRAM random-access latency in nanoseconds.
    pub dram_latency_ns: f64,
    /// Installed DRAM in bytes.
    pub dram_bytes: u64,
}

impl Topology {
    /// Build a homogeneous topology from shape parameters.
    ///
    /// `smt` is hardware threads per core; `cores_per_cluster` must divide
    /// `cores` exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn homogeneous(
        name: &str,
        clock_hz: u64,
        n_clusters: usize,
        cores_per_cluster: usize,
        smt: usize,
        isa: &str,
        core_caches: Vec<CacheSpec>,
        cluster_caches: Vec<CacheSpec>,
        fabric: FabricSpec,
    ) -> Self {
        assert!(n_clusters > 0 && cores_per_cluster > 0 && smt > 0);
        let mut clusters = Vec::with_capacity(n_clusters);
        let mut cores = Vec::with_capacity(n_clusters * cores_per_cluster);
        let mut hw_threads = Vec::with_capacity(n_clusters * cores_per_cluster * smt);
        for c in 0..n_clusters {
            let mut member_cores = Vec::with_capacity(cores_per_cluster);
            for _ in 0..cores_per_cluster {
                let core_id = cores.len();
                let mut threads = Vec::with_capacity(smt);
                for s in 0..smt {
                    let tid = hw_threads.len();
                    hw_threads.push(HwThread {
                        id: tid,
                        core: core_id,
                        smt_index: s,
                    });
                    threads.push(tid);
                }
                cores.push(Core {
                    id: core_id,
                    cluster: c,
                    hw_threads: threads,
                    caches: core_caches.clone(),
                    isa: isa.to_string(),
                    simd: true,
                });
                member_cores.push(core_id);
            }
            clusters.push(Cluster {
                id: c,
                cores: member_cores,
                caches: cluster_caches.clone(),
            });
        }
        Topology {
            name: name.to_string(),
            clock_hz,
            clusters,
            cores,
            hw_threads,
            fabric,
            dram_bandwidth_bytes_per_s: 12.8e9,
            dram_latency_ns: 80.0,
            dram_bytes: 6 * 1024 * 1024 * 1024,
        }
    }

    /// The paper's evaluation platform: Freescale T4240RDB.
    ///
    /// Twelve PowerPC e6500 dual-threaded cores at 1.8 GHz in three clusters
    /// of four; per-core 32 KB L1I + 32 KB L1D; per-cluster 2 MB multibank
    /// L2; 1.5 MB CoreNet platform (L3) cache; three DDR3 controllers.
    pub fn t4240rdb() -> Self {
        let l1i = CacheSpec {
            level: CacheLevel::L1I,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 3,
        };
        let l1d = CacheSpec {
            level: CacheLevel::L1D,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 3,
        };
        let l2 = CacheSpec {
            level: CacheLevel::L2,
            size_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            latency_cycles: 12,
        };
        let l3 = CacheSpec {
            level: CacheLevel::L3,
            size_bytes: 1536 * 1024,
            line_bytes: 64,
            ways: 16,
            latency_cycles: 40,
        };
        let fabric = FabricSpec {
            name: "CoreNet".to_string(),
            platform_cache: Some(l3),
            // CoreNet on the T4240 is specified around 667 MHz with wide
            // datapaths; we model an aggregate of ~42 GB/s.
            bandwidth_bytes_per_s: 42.0e9,
            latency_ns: 25.0,
        };
        let mut t = Topology::homogeneous(
            "T4240RDB",
            1_800_000_000,
            3,
            4,
            2,
            "e6500",
            vec![l1i, l1d],
            vec![l2],
            fabric,
        );
        // Three DDR3-1866 controllers: ~14.9 GB/s each, ~44.8 GB/s aggregate
        // peak; we model a realistic sustained ~60% of peak.
        t.dram_bandwidth_bytes_per_s = 26.9e9;
        t.dram_latency_ns = 85.0;
        t.dram_bytes = 6 * 1024 * 1024 * 1024;
        t
    }

    /// The paper's previous-generation platform (§4C): Freescale P4080DS.
    ///
    /// Eight e500mc single-threaded cores, each with a private 128 KB
    /// backside L2, attached directly to CoreNet (no clusters), 2 MB
    /// platform cache.
    pub fn p4080ds() -> Self {
        let l1i = CacheSpec {
            level: CacheLevel::L1I,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 3,
        };
        let l1d = CacheSpec {
            level: CacheLevel::L1D,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 3,
        };
        let l2 = CacheSpec {
            level: CacheLevel::L2,
            size_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 11,
        };
        let l3 = CacheSpec {
            level: CacheLevel::L3,
            size_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            ways: 32,
            latency_cycles: 45,
        };
        let fabric = FabricSpec {
            name: "CoreNet".to_string(),
            platform_cache: Some(l3),
            bandwidth_bytes_per_s: 32.0e9,
            latency_ns: 30.0,
        };
        let mut t = Topology::homogeneous(
            "P4080DS",
            1_500_000_000,
            8, // every core is its own "cluster": direct fabric attach
            1,
            1,
            "e500mc",
            vec![l1i, l1d, l2],
            vec![],
            fabric,
        );
        t.dram_bandwidth_bytes_per_s = 12.8e9;
        t.dram_latency_ns = 90.0;
        t.dram_bytes = 4 * 1024 * 1024 * 1024;
        t
    }

    /// A model of the actual host: one cluster, `std::thread::available_parallelism`
    /// cores, no SMT distinction.  Useful for tests that should not depend on
    /// board parameters.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        let l1d = CacheSpec {
            level: CacheLevel::L1D,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 4,
        };
        let l1i = CacheSpec {
            level: CacheLevel::L1I,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            latency_cycles: 4,
        };
        let l2 = CacheSpec {
            level: CacheLevel::L2,
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            latency_cycles: 14,
        };
        let fabric = FabricSpec {
            name: "host".to_string(),
            platform_cache: None,
            bandwidth_bytes_per_s: 50.0e9,
            latency_ns: 20.0,
        };
        Topology::homogeneous(
            "host",
            2_400_000_000,
            1,
            n,
            1,
            "host",
            vec![l1i, l1d, l2],
            vec![],
            fabric,
        )
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of hardware threads (logical CPUs).
    pub fn num_hw_threads(&self) -> usize {
        self.hw_threads.len()
    }

    /// The cluster a hardware thread belongs to.
    pub fn cluster_of_hw_thread(&self, hw_thread: usize) -> usize {
        self.cores[self.hw_threads[hw_thread].core].cluster
    }

    /// Default placement of `n` software workers onto hardware threads.
    ///
    /// Mirrors the Linux scheduling the paper relies on: workers fill one
    /// hardware thread per core first (cycling clusters for L2 balance), and
    /// only use second SMT threads once every core has one worker.  Indices
    /// wrap when `n` exceeds the number of hardware threads (oversubscribed).
    pub fn place_workers(&self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = Vec::with_capacity(self.num_hw_threads());
        let max_smt = self
            .cores
            .iter()
            .map(|c| c.hw_threads.len())
            .max()
            .unwrap_or(1);
        for smt in 0..max_smt {
            // Cycle clusters round-robin so that 3 workers land on 3 clusters.
            let max_cpc = self
                .clusters
                .iter()
                .map(|c| c.cores.len())
                .max()
                .unwrap_or(1);
            for slot in 0..max_cpc {
                for cluster in &self.clusters {
                    if let Some(&core_id) = cluster.cores.get(slot) {
                        if let Some(&tid) = self.cores[core_id].hw_threads.get(smt) {
                            order.push(tid);
                        }
                    }
                }
            }
        }
        (0..n).map(|i| order[i % order.len()]).collect()
    }

    /// How many distinct clusters a worker placement touches.
    pub fn clusters_used(&self, placement: &[usize]) -> usize {
        let mut seen = vec![false; self.num_clusters()];
        for &tid in placement {
            seen[self.cluster_of_hw_thread(tid)] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Look up a cache spec by level, searching core, cluster, then fabric.
    pub fn cache(&self, level: CacheLevel) -> Option<CacheSpec> {
        self.cores
            .first()
            .and_then(|c| c.caches.iter().find(|s| s.level == level).copied())
            .or_else(|| {
                self.clusters
                    .first()
                    .and_then(|c| c.caches.iter().find(|s| s.level == level).copied())
            })
            .or_else(|| self.fabric.platform_cache.filter(|s| s.level == level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4240_shape_matches_paper() {
        let t = Topology::t4240rdb();
        assert_eq!(t.num_clusters(), 3);
        assert_eq!(t.num_cores(), 12);
        assert_eq!(t.num_hw_threads(), 24);
        assert_eq!(t.clock_hz, 1_800_000_000);
        for cl in &t.clusters {
            assert_eq!(cl.cores.len(), 4, "four e6500 cores per cluster");
            assert_eq!(cl.caches[0].level, CacheLevel::L2);
            assert_eq!(cl.caches[0].size_bytes, 2 * 1024 * 1024);
        }
        let l3 = t.fabric.platform_cache.expect("CoreNet platform cache");
        assert_eq!(l3.size_bytes, 1536 * 1024, "1.5MB CoreNet cache");
        assert!(t.cores.iter().all(|c| c.isa == "e6500" && c.simd));
    }

    #[test]
    fn p4080_shape_matches_paper_section_4c() {
        let p = Topology::p4080ds();
        assert_eq!(p.num_cores(), 8);
        assert_eq!(p.num_hw_threads(), 8, "e500mc is single threaded");
        // Paper: same 32KB L1, per-core 128KB backside L2, direct fabric attach.
        assert_eq!(p.cache(CacheLevel::L1D).unwrap().size_bytes, 32 * 1024);
        assert_eq!(p.cache(CacheLevel::L2).unwrap().size_bytes, 128 * 1024);
        assert!(p.clusters.iter().all(|c| c.cores.len() == 1));
        // T4240's cluster L2 is much larger than P4080's backside L2.
        let t = Topology::t4240rdb();
        assert!(
            t.cache(CacheLevel::L2).unwrap().size_bytes
                > p.cache(CacheLevel::L2).unwrap().size_bytes
        );
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        for t in [Topology::t4240rdb(), Topology::p4080ds(), Topology::host()] {
            for (i, c) in t.cores.iter().enumerate() {
                assert_eq!(c.id, i);
                for &tid in &c.hw_threads {
                    assert_eq!(t.hw_threads[tid].core, i);
                }
            }
            for (i, cl) in t.clusters.iter().enumerate() {
                assert_eq!(cl.id, i);
                for &cid in &cl.cores {
                    assert_eq!(t.cores[cid].cluster, i);
                }
            }
            for (i, h) in t.hw_threads.iter().enumerate() {
                assert_eq!(h.id, i);
            }
        }
    }

    #[test]
    fn placement_fills_cores_before_smt() {
        let t = Topology::t4240rdb();
        let p = t.place_workers(12);
        // 12 workers on 12 cores: every core gets exactly one, all SMT0.
        let mut cores_seen = vec![0usize; t.num_cores()];
        for &tid in &p {
            assert_eq!(t.hw_threads[tid].smt_index, 0);
            cores_seen[t.hw_threads[tid].core] += 1;
        }
        assert!(cores_seen.iter().all(|&c| c == 1));
        // 24 workers: every hardware thread exactly once.
        let p24 = t.place_workers(24);
        let mut seen = [false; 24];
        for &tid in &p24 {
            assert!(!seen[tid]);
            seen[tid] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn placement_spreads_across_clusters() {
        let t = Topology::t4240rdb();
        assert_eq!(
            t.clusters_used(&t.place_workers(3)),
            3,
            "3 workers → 3 clusters"
        );
        assert_eq!(t.clusters_used(&t.place_workers(1)), 1);
    }

    #[test]
    fn placement_wraps_when_oversubscribed() {
        let t = Topology::host();
        let n = t.num_hw_threads();
        let p = t.place_workers(n * 2 + 1);
        assert_eq!(p.len(), n * 2 + 1);
        assert!(p.iter().all(|&tid| tid < n));
    }

    #[test]
    fn cache_lookup_searches_all_scopes() {
        let t = Topology::t4240rdb();
        assert_eq!(t.cache(CacheLevel::L1D).unwrap().size_bytes, 32 * 1024);
        assert_eq!(t.cache(CacheLevel::L2).unwrap().latency_cycles, 12);
        assert!(t.cache(CacheLevel::L3).is_some());
        assert!(Topology::host().cache(CacheLevel::L3).is_none());
    }

    #[test]
    fn clone_preserves_structure() {
        let t = Topology::t4240rdb();
        let u = t.clone();
        assert_eq!(t, u);
    }
}
