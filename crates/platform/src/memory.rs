//! Platform memory map: the regions MRAPI memory primitives sit on.
//!
//! MRAPI distinguishes *shared memory* (on-chip or off-chip, directly
//! addressable by nodes) from *remote memory* (distinct memories that may
//! need DMA to reach) — paper §2B.2.  This module models the physical
//! regions behind both: every region has an address window, a class, and
//! latency/bandwidth parameters the simulation uses to cost accesses.

use crate::topology::Topology;

/// What kind of physical memory a region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionClass {
    /// Off-chip DDR visible to every core — the default shared memory.
    Dram,
    /// On-chip SRAM (the T4240 can carve the CoreNet platform cache into
    /// addressable SRAM) — small, fast, shared.
    OnChipSram,
    /// A remote window: memory owned by another device (coprocessor, another
    /// partition) reached through DMA — MRAPI "remote memory, no direct
    /// access".
    RemoteDma,
    /// A remote window that is directly addressable (physically consecutive)
    /// — MRAPI "remote memory, direct access".
    RemoteDirect,
}

impl RegionClass {
    /// Whether loads/stores can target the region without a DMA transfer.
    pub fn directly_addressable(self) -> bool {
        !matches!(self, RegionClass::RemoteDma)
    }
}

/// One region in the platform memory map.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRegion {
    /// Stable name, e.g. `"ddr0"`, `"cpc-sram"`, `"dsp-window"`.
    pub name: String,
    /// How the region is reached (local DDR, on-chip SRAM, remote DMA).
    pub class: RegionClass,
    /// Base physical address in the modeled map.
    pub base: u64,
    /// Window size in bytes.
    pub size: u64,
    /// Random access latency, nanoseconds.
    pub latency_ns: f64,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth_bytes_per_s: f64,
}

impl MemoryRegion {
    /// Whether `addr..addr+len` lies fully inside this region.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base
            && len <= self.size
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.base + self.size)
    }

    /// Modeled time to move `bytes` to/from this region in nanoseconds:
    /// one latency hit plus the bandwidth-limited streaming term.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth_bytes_per_s * 1e9
    }
}

/// The full memory map of a modeled platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryMap {
    /// All regions, in map order (DDR first, then SRAM, then windows).
    pub regions: Vec<MemoryRegion>,
}

impl MemoryMap {
    /// Default map for a topology: all of DRAM, a 256 KB on-chip SRAM carve
    /// (T4240-style CPC-as-SRAM), and one DMA-reached remote window modeling
    /// an attached accelerator's local store.
    pub fn for_topology(topo: &Topology) -> Self {
        // The modeled map keeps DDR above the 4 GiB line so the low window is
        // free for on-chip SRAM and device windows (as on the real part).
        let mut regions = vec![MemoryRegion {
            name: "ddr0".to_string(),
            class: RegionClass::Dram,
            base: 0x1_0000_0000,
            size: topo.dram_bytes,
            latency_ns: topo.dram_latency_ns,
            bandwidth_bytes_per_s: topo.dram_bandwidth_bytes_per_s,
        }];
        if topo.fabric.platform_cache.is_some() {
            regions.push(MemoryRegion {
                name: "cpc-sram".to_string(),
                class: RegionClass::OnChipSram,
                base: 0xF000_0000,
                size: 256 * 1024,
                latency_ns: 18.0,
                bandwidth_bytes_per_s: topo.fabric.bandwidth_bytes_per_s,
            });
        }
        regions.push(MemoryRegion {
            name: "accel-window".to_string(),
            class: RegionClass::RemoteDma,
            base: 0x8_0000_0000,
            size: 64 * 1024 * 1024,
            latency_ns: 900.0, // DMA descriptor setup + completion interrupt
            bandwidth_bytes_per_s: 2.0e9,
        });
        MemoryMap { regions }
    }

    /// Find the region containing a physical address.
    pub fn region_of(&self, addr: u64) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.contains(addr, 1))
    }

    /// Find a region by name.
    pub fn by_name(&self, name: &str) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Allocate an address window of `size` bytes from `region` using a
    /// bump pointer starting at `cursor` (caller-tracked).  Returns the base
    /// address, or `None` if the region is exhausted.
    pub fn bump_alloc(&self, region: &str, cursor: &mut u64, size: u64) -> Option<u64> {
        let r = self.by_name(region)?;
        let base = r.base + *cursor;
        if *cursor + size > r.size {
            return None;
        }
        *cursor += size;
        Some(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn default_map_shapes() {
        let m = MemoryMap::for_topology(&Topology::t4240rdb());
        assert!(m.by_name("ddr0").is_some());
        assert!(
            m.by_name("cpc-sram").is_some(),
            "T4240 has a platform cache to carve"
        );
        assert!(m.by_name("accel-window").is_some());
        let host = MemoryMap::for_topology(&Topology::host());
        assert!(
            host.by_name("cpc-sram").is_none(),
            "host model has no platform cache"
        );
    }

    #[test]
    fn containment_and_lookup() {
        let m = MemoryMap::for_topology(&Topology::t4240rdb());
        let ddr = m.by_name("ddr0").unwrap();
        assert!(ddr.contains(ddr.base, 4096));
        assert!(!ddr.contains(ddr.base + ddr.size, 1));
        assert!(m.region_of(0).is_none(), "low window is unmapped");
        assert_eq!(m.region_of(0xF000_0010).unwrap().name, "cpc-sram");
        assert!(m.region_of(0xFFFF_FFFF_FFFF).is_none());
    }

    #[test]
    fn contains_rejects_overflowing_ranges() {
        let r = MemoryRegion {
            name: "x".into(),
            class: RegionClass::Dram,
            base: u64::MAX - 10,
            size: 10,
            latency_ns: 1.0,
            bandwidth_bytes_per_s: 1.0,
        };
        assert!(
            !r.contains(u64::MAX - 2, 5),
            "end computation must not wrap"
        );
    }

    #[test]
    fn dma_window_is_not_directly_addressable() {
        assert!(!RegionClass::RemoteDma.directly_addressable());
        assert!(RegionClass::RemoteDirect.directly_addressable());
        assert!(RegionClass::Dram.directly_addressable());
    }

    #[test]
    fn transfer_cost_monotone_in_size() {
        let m = MemoryMap::for_topology(&Topology::t4240rdb());
        let w = m.by_name("accel-window").unwrap();
        assert!(w.transfer_ns(1 << 20) > w.transfer_ns(1 << 10));
        // DMA latency dominates small transfers.
        assert!(w.transfer_ns(64) > 0.9 * w.latency_ns);
    }

    #[test]
    fn bump_alloc_respects_bounds() {
        let m = MemoryMap::for_topology(&Topology::t4240rdb());
        let mut cur = 0u64;
        let a = m.bump_alloc("cpc-sram", &mut cur, 128 * 1024).unwrap();
        let b = m.bump_alloc("cpc-sram", &mut cur, 128 * 1024).unwrap();
        assert_eq!(b, a + 128 * 1024);
        assert!(m.bump_alloc("cpc-sram", &mut cur, 1).is_none(), "exhausted");
        assert!(m.bump_alloc("nope", &mut cur, 1).is_none());
    }
}
