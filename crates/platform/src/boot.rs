//! Simulated board bring-up (paper §4B, Figure 3).
//!
//! The paper spends a section on what it takes to get a T4240RDB into a
//! usable state: the board boots u-boot from NOR flash, fetches the kernel
//! image over TFTP from a development host, and mounts its root filesystem
//! over NFS so the limited on-board storage is never the bottleneck.  None of
//! that affects the experiments, but it is part of the system the paper
//! describes, so this module reproduces the *flow* as a deterministic state
//! machine the `board_bringup` example can narrate.

use crate::topology::Topology;

/// Boot stages in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BootStage {
    /// Power applied; reset vector in NOR flash.
    PowerOn,
    /// u-boot running, environment loaded.
    UBoot,
    /// Kernel image fetched from the TFTP server.
    TftpKernelLoaded,
    /// Kernel handed control with NFS-root bootargs.
    KernelBooting,
    /// Root filesystem mounted from the NFS server.
    NfsRootMounted,
    /// Login prompt; all CPUs online.
    Ready,
}

/// One emitted event during bring-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEvent {
    /// Bring-up stage the event belongs to.
    pub stage: BootStage,
    /// Console-style message.
    pub message: String,
}

/// Bring-up configuration: the two network services from Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootConfig {
    /// TFTP server address holding the kernel image, e.g. `"192.168.1.1"`.
    pub tftp_server: String,
    /// Kernel image path on the TFTP server.
    pub kernel_image: String,
    /// NFS export used as the root filesystem.
    pub nfs_root: String,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            tftp_server: "192.168.1.1".to_string(),
            kernel_image: "uImage-t4240rdb.bin".to_string(),
            nfs_root: "192.168.1.1:/srv/nfs/t4240".to_string(),
        }
    }
}

/// Run the bring-up state machine and return the console transcript.
///
/// Fails (returning the partial transcript and the failing stage) if the
/// config leaves either network service blank — the equivalent of the
/// default NOR-flash configuration the paper replaced, where every reset
/// wiped the filesystem.
pub fn bring_up(
    topo: &Topology,
    cfg: &BootConfig,
) -> Result<Vec<BootEvent>, (Vec<BootEvent>, BootStage)> {
    let mut log = Vec::new();
    let push = |stage: BootStage, msg: String, log: &mut Vec<BootEvent>| {
        log.push(BootEvent {
            stage,
            message: msg,
        });
    };
    push(
        BootStage::PowerOn,
        format!(
            "Reset: {} ({} cores, {} hw threads)",
            topo.name,
            topo.num_cores(),
            topo.num_hw_threads()
        ),
        &mut log,
    );
    push(
        BootStage::UBoot,
        "U-Boot 2014.01 (NOR flash bank 0)".to_string(),
        &mut log,
    );
    if cfg.tftp_server.is_empty() || cfg.kernel_image.is_empty() {
        return Err((log, BootStage::TftpKernelLoaded));
    }
    push(
        BootStage::TftpKernelLoaded,
        format!(
            "tftpboot 0x1000000 {}:{} ... done",
            cfg.tftp_server, cfg.kernel_image
        ),
        &mut log,
    );
    push(
        BootStage::KernelBooting,
        format!(
            "bootargs root=/dev/nfs rw nfsroot={} ip=dhcp; bootm 0x1000000",
            cfg.nfs_root
        ),
        &mut log,
    );
    if cfg.nfs_root.is_empty() {
        return Err((log, BootStage::NfsRootMounted));
    }
    push(
        BootStage::NfsRootMounted,
        format!("VFS: Mounted root (nfs) on {}", cfg.nfs_root),
        &mut log,
    );
    for t in 0..topo.num_hw_threads() {
        if t > 0 && (t == 1 || t == topo.num_hw_threads() - 1) {
            push(BootStage::Ready, format!("smp: CPU{t} online"), &mut log);
        }
    }
    push(
        BootStage::Ready,
        format!("{} login:", topo.name.to_lowercase()),
        &mut log,
    );
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_boot_reaches_ready_in_order() {
        let log = bring_up(&Topology::t4240rdb(), &BootConfig::default()).unwrap();
        let stages: Vec<BootStage> = log.iter().map(|e| e.stage).collect();
        let mut sorted = stages.clone();
        sorted.sort();
        assert_eq!(stages, sorted, "stages must be monotone");
        assert_eq!(*stages.last().unwrap(), BootStage::Ready);
        assert!(log
            .iter()
            .any(|e| e.message.contains("nfsroot=192.168.1.1")));
    }

    #[test]
    fn missing_tftp_fails_at_kernel_load() {
        let cfg = BootConfig {
            tftp_server: String::new(),
            ..BootConfig::default()
        };
        let (partial, failed) = bring_up(&Topology::t4240rdb(), &cfg).unwrap_err();
        assert_eq!(failed, BootStage::TftpKernelLoaded);
        assert_eq!(partial.last().unwrap().stage, BootStage::UBoot);
    }

    #[test]
    fn missing_nfs_fails_at_mount() {
        let cfg = BootConfig {
            nfs_root: String::new(),
            ..BootConfig::default()
        };
        let (_, failed) = bring_up(&Topology::t4240rdb(), &cfg).unwrap_err();
        assert_eq!(failed, BootStage::NfsRootMounted);
    }
}
