//! # mca-platform — a simulated multicore embedded platform
//!
//! The OpenMP-MCA paper (Sun, Chandrasekaran, Chapman; IPDPSW 2015) evaluates
//! its runtime on a Freescale **T4240RDB** reference design board: twelve
//! PowerPC e6500 64-bit dual-threaded cores at 1.8 GHz, grouped into three
//! clusters of four cores, each cluster sharing a multibank L2 cache, the
//! three clusters joined by the **CoreNet** coherency fabric with a 1.5 MB
//! CoreNet platform (L3) cache.  The board runs an embedded hypervisor that
//! can partition CPUs, memory and I/O between guests.
//!
//! That hardware is not available to this reproduction, so this crate builds
//! the closest software equivalent: a complete *platform model* that the rest
//! of the stack (MRAPI, MCAPI, MTAPI and the `romp` OpenMP-style runtime)
//! treats as "the board".
//!
//! The crate provides:
//!
//! * [`topology`] — chips, clusters, cores, hardware threads and the cache
//!   hierarchy, with presets for the T4240RDB, its predecessor P4080DS
//!   (the paper's §4C comparison platform) and the actual host machine;
//! * [`resource`] — MRAPI-style *resource metadata trees* describing a
//!   topology, the structure `mrapi_resources_get` hands back to callers;
//! * [`partition`] — an embedded-hypervisor model (the paper's Figure 2)
//!   that slices a topology into guest partitions with dedicated CPUs and
//!   memory windows;
//! * [`memory`] — the platform memory map: DDR controllers, on-chip SRAM,
//!   and remote (DMA-reached) windows, each with latency/bandwidth
//!   parameters used by the simulation;
//! * [`vtime`] — the virtual-time engine that reconstructs *board* execution
//!   times from *host* measurements (per-thread CPU time plus contention and
//!   synchronization cost models), used to regenerate the paper's Figure 4
//!   speedup curves on a machine with fewer than 24 hardware threads;
//! * [`boot`] — an illustrative simulation of the board bring-up flow the
//!   paper describes in §4B (u-boot, TFTP kernel fetch, NFS root mount);
//! * [`shard`] — topology → runtime-shard placement: how the `romp`
//!   runtime groups team members into cluster-aligned scheduling
//!   domains with an affinity-key hash for home-shard dispatch.
//!
//! ## Quick start
//!
//! ```
//! use mca_platform::{Topology, resource::ResourceTree};
//!
//! let board = Topology::t4240rdb();
//! assert_eq!(board.num_cores(), 12);
//! assert_eq!(board.num_hw_threads(), 24);
//! assert_eq!(board.num_clusters(), 3);
//!
//! // The MRAPI metadata tree is derived straight from the topology.
//! let tree = ResourceTree::from_topology(&board);
//! assert_eq!(tree.count_kind(mca_platform::resource::ResourceKind::Core), 12);
//! ```

#![warn(missing_docs)]

pub mod boot;
pub mod memory;
pub mod partition;
pub mod power;
pub mod resource;
pub mod shard;
pub mod topology;
pub mod vtime;

pub use memory::{MemoryMap, MemoryRegion, RegionClass};
pub use partition::{Hypervisor, Partition, PartitionSpec};
pub use power::{EnergyEstimate, PowerModel, PowerState};
pub use resource::{ResourceAttr, ResourceKind, ResourceNode, ResourceTree};
pub use shard::ShardLayout;
pub use topology::{CacheLevel, CacheSpec, Cluster, Core, HwThread, Topology};
pub use vtime::{Clock, CostModel, RegionProfile, VirtualClock, VirtualTimer};
