//! Topology → runtime-shard placement.
//!
//! A *shard* is the scheduling domain the `romp` runtime carves a team
//! into: members of one shard share an injector and steal from each
//! other first, and only escalate across shards when every local queue
//! is dry.  On clustered parts like the T4240 a shard is one
//! cache-sharing cluster, so intra-shard stealing stays inside the
//! shared L2 and never pays a CoreNet fabric crossing.
//!
//! [`ShardLayout`] is the pure placement map: which member belongs to
//! which shard, and which shard an affinity key hashes to.  It is
//! computed once per team, either from a [`Topology`] (cluster-derived)
//! or from an explicit shard-count override.

use crate::topology::Topology;

/// Assignment of a team's members to runtime shards.
///
/// Shard ids are dense (`0..num_shards()`), every member belongs to
/// exactly one shard, and every shard has at least one member.
///
/// ```
/// use mca_platform::{ShardLayout, Topology};
///
/// // 12 workers on the T4240: SMT-major placement round-robins the
/// // three clusters, so the layout has three 4-member shards.
/// let layout = ShardLayout::from_topology(&Topology::t4240rdb(), 12);
/// assert_eq!(layout.num_shards(), 3);
/// assert_eq!(layout.members_of(0).len(), 4);
///
/// // An explicit override ignores the topology entirely.
/// let forced = ShardLayout::uniform(4, 8);
/// assert_eq!(forced.num_shards(), 4);
/// assert_eq!(forced.shard_of(5), 1); // round-robin: 5 % 4
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// `assignment[member]` = dense shard id.
    assignment: Vec<usize>,
    /// `members[shard]` = member ids in that shard, ascending.
    members: Vec<Vec<usize>>,
}

impl ShardLayout {
    /// Everything in one shard — the unsharded (pre-topology) runtime
    /// shape, and the layout every 1-member team gets.
    pub fn single(num_members: usize) -> ShardLayout {
        ShardLayout::uniform(1, num_members)
    }

    /// `num_members` members dealt round-robin across `num_shards`
    /// shards (member *i* → shard *i* mod *S*).  The shard count is
    /// clamped to `[1, num_members]` so no shard is empty.
    pub fn uniform(num_shards: usize, num_members: usize) -> ShardLayout {
        let n = num_members.max(1);
        let s = num_shards.clamp(1, n);
        let assignment: Vec<usize> = (0..n).map(|i| i % s).collect();
        ShardLayout::from_assignment(assignment, s)
    }

    /// Derive the layout from a topology: member *i* goes to the shard
    /// of the cluster that [`Topology::place_workers`] pins it to.
    /// Cluster ids are renumbered densely over the clusters actually
    /// used, so a 2-worker team on the T4240 gets 2 one-member shards,
    /// not 3 clusters with one empty.
    pub fn from_topology(topo: &Topology, num_members: usize) -> ShardLayout {
        let n = num_members.max(1);
        let placement = topo.place_workers(n);
        // Dense renumbering: first-seen cluster -> shard 0, next -> 1, ...
        let mut cluster_to_shard: Vec<Option<usize>> = vec![None; topo.num_clusters()];
        let mut next = 0usize;
        let mut assignment = Vec::with_capacity(n);
        for &hw in &placement {
            let cluster = topo.cluster_of_hw_thread(hw);
            let shard = *cluster_to_shard[cluster].get_or_insert_with(|| {
                let s = next;
                next += 1;
                s
            });
            assignment.push(shard);
        }
        ShardLayout::from_assignment(assignment, next)
    }

    fn from_assignment(assignment: Vec<usize>, num_shards: usize) -> ShardLayout {
        let mut members = vec![Vec::new(); num_shards];
        for (member, &shard) in assignment.iter().enumerate() {
            members[shard].push(member);
        }
        debug_assert!(members.iter().all(|m| !m.is_empty()));
        ShardLayout {
            assignment,
            members,
        }
    }

    /// Number of shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Number of members across all shards.
    pub fn num_members(&self) -> usize {
        self.assignment.len()
    }

    /// The shard `member` belongs to.
    ///
    /// # Panics
    /// If `member >= num_members()`.
    pub fn shard_of(&self, member: usize) -> usize {
        self.assignment[member]
    }

    /// Members of `shard`, ascending.
    ///
    /// # Panics
    /// If `shard >= num_shards()`.
    pub fn members_of(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// Home shard for an affinity key: a splitmix64 finalizer over the
    /// key, reduced mod the shard count.  Equal keys always land on the
    /// same shard; distinct keys spread uniformly.
    ///
    /// ```
    /// use mca_platform::ShardLayout;
    ///
    /// let layout = ShardLayout::uniform(4, 8);
    /// let home = layout.shard_for_key(0xFEED);
    /// assert_eq!(layout.shard_for_key(0xFEED), home); // stable
    /// assert!(home < layout.num_shards());
    /// ```
    pub fn shard_for_key(&self, key: u64) -> usize {
        (mix64(key) % self.members.len() as u64) as usize
    }
}

/// splitmix64 finalizer — cheap, stateless avalanche so sequential
/// affinity keys (client ids, connection ids) don't all pile onto the
/// low shards.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_deals_round_robin() {
        let l = ShardLayout::uniform(3, 7);
        assert_eq!(l.num_shards(), 3);
        assert_eq!(l.num_members(), 7);
        assert_eq!(l.members_of(0), &[0, 3, 6]);
        assert_eq!(l.members_of(1), &[1, 4]);
        assert_eq!(l.members_of(2), &[2, 5]);
        for m in 0..7 {
            assert!(l.members_of(l.shard_of(m)).contains(&m));
        }
    }

    #[test]
    fn uniform_clamps_to_member_count() {
        let l = ShardLayout::uniform(8, 3);
        assert_eq!(l.num_shards(), 3);
        let l1 = ShardLayout::uniform(0, 3);
        assert_eq!(l1.num_shards(), 1);
        let solo = ShardLayout::single(0);
        assert_eq!(solo.num_shards(), 1);
        assert_eq!(solo.num_members(), 1);
    }

    #[test]
    fn t4240_full_board_is_three_shards() {
        let topo = Topology::t4240rdb();
        let l = ShardLayout::from_topology(&topo, 24);
        assert_eq!(l.num_shards(), 3);
        for s in 0..3 {
            assert_eq!(l.members_of(s).len(), 8, "SMT-major fill");
        }
    }

    #[test]
    fn small_teams_get_dense_shard_ids() {
        let topo = Topology::t4240rdb();
        // place_workers round-robins clusters, so 2 workers sit on 2
        // distinct clusters -> 2 dense shards, no empties.
        let l = ShardLayout::from_topology(&topo, 2);
        assert_eq!(l.num_shards(), 2);
        assert_eq!(l.members_of(0), &[0]);
        assert_eq!(l.members_of(1), &[1]);
    }

    #[test]
    fn p4080_single_core_clusters() {
        let topo = Topology::p4080ds();
        let l = ShardLayout::from_topology(&topo, 8);
        assert_eq!(l.num_shards(), 8, "one shard per single-core cluster");
        let host = Topology::host();
        let lh = ShardLayout::from_topology(&host, 4);
        assert_eq!(lh.num_shards(), 1, "host preset is one cluster");
    }

    #[test]
    fn key_hash_is_stable_and_in_range() {
        let l = ShardLayout::uniform(4, 16);
        let mut seen = [false; 4];
        for key in 0..256u64 {
            let s = l.shard_for_key(key);
            assert!(s < 4);
            assert_eq!(s, l.shard_for_key(key));
            seen[s] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 keys should touch all 4 shards"
        );
    }
}
