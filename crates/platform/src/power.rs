//! Core power-state and energy model.
//!
//! The paper notes that "the design of e6500 cores also deploys many
//! low-power techniques, including pervasive virtualization and cascading
//! power management" (§4A).  The e6500 exposes cascaded idle states — the
//! shallow `PW10` (clock-gated, instant wake) and the deeper `PW20`
//! (L1 flushed, microsecond wake) — and the cluster/fabric remain powered
//! while any member is active.
//!
//! This module models that: per-state power draws for a core, an
//! energy integrator over a measured [`RegionProfile`], and the
//! race-to-idle accounting that makes "more threads, shorter runtime" an
//! energy win for compute-bound kernels even though peak power rises.

use crate::vtime::{CostModel, RegionProfile};

/// Idle states of the modeled core, shallow to deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// Executing instructions.
    Active,
    /// Clock-gated idle (`PW10`): fast wake, moderate savings.
    Pw10,
    /// Deep idle (`PW20`): L1 flushed, slow wake, deep savings.
    Pw20,
}

/// Power parameters for one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Watts per core while executing.
    pub active_w: f64,
    /// Watts per core in `PW10`.
    pub pw10_w: f64,
    /// Watts per core in `PW20`.
    pub pw20_w: f64,
    /// Wake latency out of `PW20`, nanoseconds — idle windows shorter than
    /// this stay in `PW10`.
    pub pw20_entry_ns: f64,
    /// Watts for the uncore (CoreNet fabric, L3, DDR controllers), drawn
    /// whenever the chip is on.
    pub uncore_w: f64,
}

impl PowerModel {
    /// Calibrated to the T4240's public envelope: ~`25 W` typical for the
    /// 12-core part at 1.8 GHz, roughly half of it uncore.
    pub fn t4240() -> Self {
        PowerModel {
            active_w: 1.1,
            pw10_w: 0.35,
            pw20_w: 0.08,
            pw20_entry_ns: 50_000.0,
            uncore_w: 11.0,
        }
    }

    /// Power draw of one core in `state`.
    pub fn core_power(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Active => self.active_w,
            PowerState::Pw10 => self.pw10_w,
            PowerState::Pw20 => self.pw20_w,
        }
    }
}

/// Energy accounting for one profiled region on the modeled board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Total energy, joules.
    pub joules: f64,
    /// Mean power over the region, watts.
    pub avg_watts: f64,
    /// Modeled elapsed seconds (from the cost model).
    pub elapsed_s: f64,
    /// Share of core-seconds spent active (0..=1).
    pub utilization: f64,
}

/// Integrate energy for a profile: each worker's core is Active for its
/// (board-scaled) CPU time and idles for the rest of the region; unused
/// cores idle throughout; long idle tails cascade from `PW10` into `PW20`.
pub fn energy_for_profile(
    power: &PowerModel,
    cost: &CostModel,
    profile: &RegionProfile,
    beta: f64,
) -> EnergyEstimate {
    let elapsed_ns = cost.elapsed_ns(profile, beta);
    let n_cores = cost.topo.num_cores() as f64;
    let smt = cost.smt_factors(profile.num_workers().max(1));
    let mut active_core_ns = 0.0;
    let mut idle_core_ns = 0.0;
    // Workers sharing a core via SMT contribute to the same core's busy
    // window; summing worker busy time and dividing by the per-core worker
    // count is equivalent under the model's symmetric placement, so the
    // simple per-worker sum with the SMT stretch already measures
    // core-occupied time.
    for (i, &ns) in profile.worker_cpu_ns.iter().enumerate() {
        let busy = (ns as f64 * cost.host_to_board_scale * smt.get(i).copied().unwrap_or(1.0))
            .min(elapsed_ns);
        active_core_ns += busy;
        idle_core_ns += elapsed_ns - busy;
    }
    // Cores with no worker at all idle for the whole region.
    let workers_cores = (profile.num_workers() as f64).min(n_cores);
    idle_core_ns += (n_cores - workers_cores).max(0.0) * elapsed_ns;

    // Cascade: idle windows beyond the PW20 entry threshold sink deep; a
    // conservative split books the first `pw20_entry_ns` of each core's
    // idle at PW10 and the remainder at PW20.
    let shallow_ns = idle_core_ns.min(n_cores * power.pw20_entry_ns);
    let deep_ns = idle_core_ns - shallow_ns;

    let core_j =
        (active_core_ns * power.active_w + shallow_ns * power.pw10_w + deep_ns * power.pw20_w)
            / 1e9;
    let uncore_j = elapsed_ns / 1e9 * power.uncore_w;
    let joules = core_j + uncore_j;
    let elapsed_s = elapsed_ns / 1e9;
    EnergyEstimate {
        joules,
        avg_watts: if elapsed_s > 0.0 {
            joules / elapsed_s
        } else {
            0.0
        },
        elapsed_s,
        utilization: if elapsed_ns > 0.0 {
            active_core_ns / (n_cores * elapsed_ns)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_profile(total_ns: u64, workers: usize) -> RegionProfile {
        RegionProfile {
            worker_cpu_ns: vec![total_ns / workers as u64; workers],
            barriers: 4,
            criticals: 0,
        }
    }

    #[test]
    fn state_powers_are_ordered() {
        let p = PowerModel::t4240();
        assert!(p.core_power(PowerState::Active) > p.core_power(PowerState::Pw10));
        assert!(p.core_power(PowerState::Pw10) > p.core_power(PowerState::Pw20));
    }

    #[test]
    fn energy_positive_and_bounded_by_peak_power() {
        let power = PowerModel::t4240();
        let cost = CostModel::t4240rdb();
        let e = energy_for_profile(&power, &cost, &even_profile(1_000_000_000, 12), 0.0);
        assert!(e.joules > 0.0);
        let peak = 12.0 * power.active_w + power.uncore_w;
        assert!(
            e.avg_watts <= peak + 1e-9,
            "avg {} vs peak {peak}",
            e.avg_watts
        );
        assert!(e.avg_watts >= power.uncore_w, "uncore is always on");
        assert!(e.utilization > 0.0 && e.utilization <= 1.0);
    }

    #[test]
    fn race_to_idle_saves_energy_for_compute_bound_work() {
        // Same total work, 1 vs 12 workers: the 12-worker run finishes ~12×
        // sooner, so the always-on uncore burns far less — the cascading
        // power management payoff the e6500 design targets.
        let power = PowerModel::t4240();
        let cost = CostModel::t4240rdb();
        let serial = energy_for_profile(&power, &cost, &even_profile(12_000_000_000, 1), 0.0);
        let parallel = energy_for_profile(&power, &cost, &even_profile(12_000_000_000, 12), 0.0);
        assert!(
            parallel.joules < serial.joules,
            "parallel {} J vs serial {} J",
            parallel.joules,
            serial.joules
        );
        assert!(
            parallel.avg_watts > serial.avg_watts,
            "peak power rises, energy falls"
        );
    }

    #[test]
    fn deep_idle_kicks_in_for_long_regions() {
        let power = PowerModel::t4240();
        let cost = CostModel::t4240rdb();
        // One worker busy, 11 cores idle for a long region: most idle time
        // must be booked at PW20 rates, so energy/second approaches
        // uncore + 1 active + 11 deep-idle cores.
        let e = energy_for_profile(&power, &cost, &even_profile(4_000_000_000, 1), 0.0);
        let ceiling = power.uncore_w + power.active_w + 11.0 * power.pw10_w;
        let floor = power.uncore_w + 11.0 * power.pw20_w;
        assert!(
            e.avg_watts < ceiling,
            "deep idle should beat all-PW10: {}",
            e.avg_watts
        );
        assert!(e.avg_watts > floor);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let power = PowerModel::t4240();
        let cost = CostModel::t4240rdb();
        let e = energy_for_profile(
            &power,
            &cost,
            &RegionProfile {
                worker_cpu_ns: vec![],
                barriers: 0,
                criticals: 0,
            },
            0.0,
        );
        assert_eq!(e.joules, 0.0);
        assert_eq!(e.avg_watts, 0.0);
    }
}
