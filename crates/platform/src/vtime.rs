//! Virtual time: reconstructing board execution times from host measurements.
//!
//! The paper's Figure 4 plots NAS benchmark execution time and speedup from
//! 1 to 24 threads on a 24-hardware-thread board.  This reproduction runs on
//! whatever host it is given — possibly a single core — so wall-clock speedup
//! cannot be observed directly.  Instead we measure what *can* be measured
//! faithfully anywhere (how much CPU work each worker actually performed and
//! how many synchronization episodes the team executed, via
//! `CLOCK_THREAD_CPUTIME_ID`), and feed those measurements through a cost
//! model of the T4240 board:
//!
//! * **Work term** — each worker's measured CPU nanoseconds, scaled from the
//!   host core to an e6500 core ([`CostModel::host_to_board_scale`]);
//! * **SMT term** — workers co-located on one dual-threaded core (decided by
//!   [`Topology::place_workers`]) run at [`CostModel::smt_efficiency`] of full
//!   speed;
//! * **Memory term** — a kernel declares a memory intensity `beta` (fraction
//!   of its serial time that is DRAM-bandwidth-bound).  When `t` workers each
//!   demand [`CostModel::single_thread_bw`] bytes/s, the memory-bound part is
//!   stretched by `max(1, t·bw1/BW_total)` — a roofline-style saturation;
//! * **Synchronization term** — each team-wide barrier costs
//!   `base + per_thread·t` nanoseconds and each critical entry serializes.
//!
//! The region's simulated elapsed time is the slowest worker plus the
//! synchronization terms.  EP (`beta≈0`) therefore scales nearly ideally and
//! the memory-bound kernels flatten around 15× at 24 threads — the paper's
//! reported shape.  All constants are public and printed by the harness.

use crate::topology::Topology;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `struct timespec` as the kernel ABI defines it on the 64-bit Linux
/// targets this crate supports (both fields are 64-bit there).
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

extern "C" {
    fn clock_gettime(clockid: i32, ts: *mut Timespec) -> i32;
}

/// Linux `CLOCK_MONOTONIC`.
const CLOCK_MONOTONIC: i32 = 1;

/// Linux `CLOCK_THREAD_CPUTIME_ID`.
const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

/// Read the host's monotonic clock in nanoseconds.
///
/// Same epoch guarantees as `std::time::Instant` (arbitrary origin, never
/// goes backwards) but yields a plain `u64`, which lets timestamps cross
/// thread and serialization boundaries that `Instant` cannot.
pub fn monotonic_ns() -> u64 {
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; CLOCK_MONOTONIC exists on
    // every Linux the crate targets.
    let rc = unsafe { clock_gettime(CLOCK_MONOTONIC, &mut ts) };
    debug_assert_eq!(rc, 0);
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// A source of "now" that is either the host's monotonic clock or a shared
/// virtual-time counter owned by a deterministic simulator.
///
/// Production code paths construct [`Clock::real`] (the default) and behave
/// exactly as if they called `clock_gettime(CLOCK_MONOTONIC)` directly.  A
/// simulation constructs one [`VirtualClock`] and hands out `Clock`s that all
/// observe the same simulated instant; the sim's event loop is then the only
/// writer of time.  Cloning is cheap (an `Arc` bump in the virtual case).
#[derive(Debug, Clone, Default)]
pub struct Clock {
    virt: Option<Arc<AtomicU64>>,
}

impl Clock {
    /// Clock backed by the host's `CLOCK_MONOTONIC`.
    pub fn real() -> Self {
        Clock { virt: None }
    }

    /// Current time in nanoseconds (host-monotonic or virtual).
    pub fn now_ns(&self) -> u64 {
        match &self.virt {
            Some(v) => v.load(Ordering::Acquire),
            None => monotonic_ns(),
        }
    }

    /// True when this clock is driven by a [`VirtualClock`] rather than the
    /// host.  Code that would block on real time (sleeps, condvar waits)
    /// must not do so under a virtual clock.
    pub fn is_virtual(&self) -> bool {
        self.virt.is_some()
    }
}

/// Writer handle for virtual time.
///
/// A deterministic simulator owns exactly one `VirtualClock` and advances it
/// as its event queue drains; every [`Clock`] obtained from
/// [`VirtualClock::clock`] observes the updates.  Time never moves backwards:
/// [`advance_to`](VirtualClock::advance_to) is a monotonic max.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// New virtual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        VirtualClock {
            now: Arc::new(AtomicU64::new(start_ns)),
        }
    }

    /// A reader [`Clock`] sharing this virtual timeline.
    pub fn clock(&self) -> Clock {
        Clock {
            virt: Some(Arc::clone(&self.now)),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advance virtual time to `t_ns` if it is later than now (monotonic
    /// max; a stale or equal timestamp is a no-op).
    pub fn advance_to(&self, t_ns: u64) {
        self.now.fetch_max(t_ns, Ordering::AcqRel);
    }
}

/// Read this thread's consumed CPU time in nanoseconds.
///
/// Uses `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`: time the calling thread has
/// actually spent executing, unaffected by preemption or oversubscription —
/// the key property that makes single-core hosts usable for this experiment.
pub fn thread_cpu_ns() -> u64 {
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; the clock id is a constant
    // supported on every Linux the crate targets.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0);
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Accumulating stopwatch over [`thread_cpu_ns`].
///
/// `start`/`stop` pairs may repeat; `total_ns` is the sum of closed
/// intervals.  Must be used from a single thread (the clock is per-thread).
#[derive(Debug, Default, Clone)]
pub struct VirtualTimer {
    started_at: Option<u64>,
    accum: u64,
}

impl VirtualTimer {
    /// Fresh, stopped timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin an interval.  Starting a running timer restarts the interval.
    pub fn start(&mut self) {
        self.started_at = Some(thread_cpu_ns());
    }

    /// Close the current interval, folding it into the total.
    pub fn stop(&mut self) {
        if let Some(s) = self.started_at.take() {
            self.accum += thread_cpu_ns().saturating_sub(s);
        }
    }

    /// Sum of all closed intervals, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.accum
    }

    /// Reset to zero, stopped.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// What a runtime run hands to the cost model: measured facts only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionProfile {
    /// Per-worker consumed CPU nanoseconds (index = thread number in team).
    pub worker_cpu_ns: Vec<u64>,
    /// Team-wide barrier episodes executed (implicit + explicit).
    pub barriers: u64,
    /// Total critical-section entries across the team.
    pub criticals: u64,
}

impl RegionProfile {
    /// Number of workers in the profiled team.
    pub fn num_workers(&self) -> usize {
        self.worker_cpu_ns.len()
    }

    /// Total CPU work across workers.
    pub fn total_cpu_ns(&self) -> u64 {
        self.worker_cpu_ns.iter().sum()
    }
}

/// Board cost model parameters.  See the module docs for the formula.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The board being modeled.
    pub topo: Topology,
    /// Per-worker relative speed when two workers share a dual-threaded core
    /// (1.0 = SMT is free; 0.5 = SMT gains nothing).
    pub smt_efficiency: f64,
    /// DRAM bytes/s a single memory-bound worker demands.
    pub single_thread_bw: f64,
    /// Fixed cost of one team barrier, nanoseconds.
    pub barrier_base_ns: f64,
    /// Additional barrier cost per participating worker, nanoseconds.
    pub barrier_per_thread_ns: f64,
    /// Serialized cost of one critical-section entry, nanoseconds.
    pub critical_ns: f64,
    /// Multiplier from host CPU nanoseconds to board (e6500) nanoseconds;
    /// covers both the clock ratio and the IPC gap.
    pub host_to_board_scale: f64,
}

impl CostModel {
    /// Calibrated model for the paper's T4240RDB board.
    pub fn t4240rdb() -> Self {
        CostModel {
            topo: Topology::t4240rdb(),
            // e6500 SMT shares the wide AltiVec-capable backend; published
            // figures put dual-thread throughput near 1.8x for independent
            // integer/float streams.
            smt_efficiency: 0.92,
            // One e6500 core streaming from DDR sustains roughly 4 GB/s.
            single_thread_bw: 4.0e9,
            barrier_base_ns: 1_500.0,
            barrier_per_thread_ns: 600.0,
            critical_ns: 900.0,
            // ~1.8 GHz in-order-ish embedded core vs a modern x86 host core.
            host_to_board_scale: 4.0,
        }
    }

    /// Calibrated model for the paper's previous-generation P4080DS board
    /// (§4C): eight single-threaded e500mc cores at 1.5 GHz, one DDR
    /// controller, small per-core backside L2.
    pub fn p4080ds() -> Self {
        let topo = Topology::p4080ds();
        CostModel {
            // No SMT on the e500mc; the factor is never applied but 1.0
            // keeps the arithmetic uniform.
            smt_efficiency: 1.0,
            // Narrower core + slower DDR2/3 controller generation.
            single_thread_bw: 2.5e9,
            barrier_base_ns: 1_800.0,
            barrier_per_thread_ns: 700.0,
            critical_ns: 1_100.0,
            // 1.5 GHz e500mc vs a modern host core.
            host_to_board_scale: 5.0,
            topo,
        }
    }

    /// Identity-ish model over the host topology: no scaling, no SMT or
    /// bandwidth effects.  Useful for tests.
    pub fn host_passthrough() -> Self {
        CostModel {
            topo: Topology::host(),
            smt_efficiency: 1.0,
            single_thread_bw: 0.0, // never saturates
            barrier_base_ns: 0.0,
            barrier_per_thread_ns: 0.0,
            critical_ns: 0.0,
            host_to_board_scale: 1.0,
        }
    }

    /// Memory-saturation stretch factor for `t` concurrent workers.
    pub fn contention_factor(&self, t: usize) -> f64 {
        if self.single_thread_bw <= 0.0 {
            return 1.0;
        }
        let demand = t as f64 * self.single_thread_bw;
        (demand / self.topo.dram_bandwidth_bytes_per_s).max(1.0)
    }

    /// Modeled cost of one team barrier at team size `t`, nanoseconds.
    pub fn barrier_cost_ns(&self, t: usize) -> f64 {
        if t <= 1 {
            return 0.0;
        }
        self.barrier_base_ns + self.barrier_per_thread_ns * t as f64
    }

    /// Per-worker SMT slowdown factors for a team of `t` under the board's
    /// default placement: 1.0 for a worker alone on its core, otherwise
    /// `1/smt_efficiency`.
    pub fn smt_factors(&self, t: usize) -> Vec<f64> {
        let placement = self.topo.place_workers(t);
        let mut per_core = vec![0usize; self.topo.num_cores()];
        for &tid in &placement {
            per_core[self.topo.hw_threads[tid].core] += 1;
        }
        placement
            .iter()
            .map(|&tid| {
                if per_core[self.topo.hw_threads[tid].core] > 1 {
                    1.0 / self.smt_efficiency
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Simulated elapsed nanoseconds of a profiled region for a kernel with
    /// memory intensity `beta` (0 = pure compute, 1 = pure streaming).
    pub fn elapsed_ns(&self, prof: &RegionProfile, beta: f64) -> f64 {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        let t = prof.num_workers().max(1);
        let stretch = self.contention_factor(t);
        let smt = self.smt_factors(t);
        let slowest = prof
            .worker_cpu_ns
            .iter()
            .enumerate()
            .map(|(i, &ns)| {
                let board_ns = ns as f64 * self.host_to_board_scale;
                let mem = board_ns * beta * stretch;
                let cpu = board_ns * (1.0 - beta) * smt.get(i).copied().unwrap_or(1.0);
                cpu + mem
            })
            .fold(0.0f64, f64::max);
        let sync = prof.barriers as f64 * self.barrier_cost_ns(t)
            + prof.criticals as f64 * self.critical_ns;
        slowest + sync
    }

    /// Convenience: simulated speedup of `parallel` over `serial`.
    pub fn speedup(&self, serial: &RegionProfile, parallel: &RegionProfile, beta: f64) -> f64 {
        self.elapsed_ns(serial, beta) / self.elapsed_ns(parallel, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic profile: `total` CPU ns split evenly over `t` workers,
    /// with `b` barriers.
    fn even(total: u64, t: usize, b: u64) -> RegionProfile {
        RegionProfile {
            worker_cpu_ns: vec![total / t as u64; t],
            barriers: b,
            criticals: 0,
        }
    }

    #[test]
    fn thread_cpu_clock_advances_under_work() {
        let a = thread_cpu_ns();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b > a, "cpu clock must advance during computation");
    }

    #[test]
    fn real_clock_is_monotonic_and_virtual_clock_is_programmable() {
        let real = Clock::real();
        assert!(!real.is_virtual());
        let a = real.now_ns();
        let b = real.now_ns();
        assert!(b >= a);

        let vc = VirtualClock::new(1_000);
        let c1 = vc.clock();
        let c2 = vc.clock();
        assert!(c1.is_virtual());
        assert_eq!(c1.now_ns(), 1_000);
        vc.advance_to(5_000);
        assert_eq!(c1.now_ns(), 5_000);
        assert_eq!(c2.now_ns(), 5_000, "clones share the timeline");
        vc.advance_to(4_000); // never backwards
        assert_eq!(c1.now_ns(), 5_000);
    }

    #[test]
    fn virtual_timer_accumulates_closed_intervals() {
        let mut t = VirtualTimer::new();
        t.start();
        let mut x = 0u64;
        for i in 0..500_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        t.stop();
        let first = t.total_ns();
        assert!(first > 0);
        t.stop(); // stopping a stopped timer is a no-op
        assert_eq!(t.total_ns(), first);
        t.reset();
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn compute_bound_scales_nearly_ideally() {
        let m = CostModel::t4240rdb();
        let serial = even(1_000_000_000, 1, 0);
        let par12 = even(1_000_000_000, 12, 10);
        let s12 = m.speedup(&serial, &par12, 0.0);
        assert!(
            s12 > 10.0 && s12 <= 12.01,
            "12 dedicated cores, beta=0: got {s12}"
        );
        let par24 = even(1_000_000_000, 24, 10);
        let s24 = m.speedup(&serial, &par24, 0.0);
        assert!(
            s24 > 18.0 && s24 < 24.01,
            "SMT-limited near-ideal: got {s24}"
        );
    }

    #[test]
    fn memory_bound_saturates_like_the_paper() {
        let m = CostModel::t4240rdb();
        let serial = even(1_000_000_000, 1, 0);
        let s24 = m.speedup(&serial, &even(1_000_000_000, 24, 50), 0.30);
        assert!(
            s24 > 10.0 && s24 < 18.0,
            "beta=0.3 should land near the paper's ~15x: got {s24}"
        );
        // And it must be monotone: more memory intensity, less speedup.
        let s24_heavy = m.speedup(&serial, &even(1_000_000_000, 24, 50), 0.8);
        assert!(s24_heavy < s24);
    }

    #[test]
    fn contention_factor_kicks_in_at_saturation() {
        let m = CostModel::t4240rdb();
        assert_eq!(m.contention_factor(1), 1.0);
        // 26.9 GB/s / 4 GB/s ≈ 6.7 workers saturate the controllers.
        assert_eq!(m.contention_factor(6), 1.0);
        assert!(m.contention_factor(8) > 1.0);
        assert!(m.contention_factor(24) > m.contention_factor(12));
    }

    #[test]
    fn barrier_costs_grow_with_team_and_vanish_serial() {
        let m = CostModel::t4240rdb();
        assert_eq!(m.barrier_cost_ns(1), 0.0);
        assert!(m.barrier_cost_ns(24) > m.barrier_cost_ns(4));
        let with = m.elapsed_ns(&even(1_000_000, 8, 100), 0.0);
        let without = m.elapsed_ns(&even(1_000_000, 8, 0), 0.0);
        assert!(with > without);
    }

    #[test]
    fn smt_factors_reflect_placement() {
        let m = CostModel::t4240rdb();
        let f12 = m.smt_factors(12);
        assert!(f12.iter().all(|&f| f == 1.0), "12 workers → one per core");
        let f24 = m.smt_factors(24);
        assert!(
            f24.iter().all(|&f| f > 1.0),
            "24 workers → every core shared"
        );
        let f13 = m.smt_factors(13);
        assert!(
            f13.iter().filter(|&&f| f > 1.0).count() == 2,
            "one core shared by 2 workers"
        );
    }

    #[test]
    fn imbalance_is_punished() {
        let m = CostModel::t4240rdb();
        let balanced = even(1_000_000_000, 4, 0);
        let skewed = RegionProfile {
            worker_cpu_ns: vec![700_000_000, 100_000_000, 100_000_000, 100_000_000],
            barriers: 0,
            criticals: 0,
        };
        assert!(m.elapsed_ns(&skewed, 0.0) > m.elapsed_ns(&balanced, 0.0));
    }

    #[test]
    fn passthrough_model_is_identity_on_max_worker() {
        let m = CostModel::host_passthrough();
        let p = RegionProfile {
            worker_cpu_ns: vec![5, 9, 7],
            barriers: 3,
            criticals: 2,
        };
        assert_eq!(m.elapsed_ns(&p, 0.0), 9.0);
        assert_eq!(
            m.elapsed_ns(&p, 1.0),
            9.0,
            "no bandwidth model → beta irrelevant"
        );
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_out_of_range_panics() {
        CostModel::t4240rdb().elapsed_ns(&even(1, 1, 0), 1.5);
    }
}
