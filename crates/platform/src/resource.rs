//! MRAPI-style resource metadata trees.
//!
//! MRAPI's metadata facility (paper §2B.4) lets a node call
//! `mrapi_resources_get` to retrieve a *resource tree* describing what the
//! system offers — CPUs, caches, memories — optionally filtered by kind.
//! The OpenMP-MCA runtime uses exactly this to discover the number of online
//! processors when sizing thread teams (paper §5B.4).
//!
//! This module builds such trees from a [`Topology`] and supports the
//! filtering, counting and attribute queries MRAPI specifies, including
//! *dynamic* attributes (values that change at run time, such as a core's
//! utilization counter) which MRAPI models with an `is_dynamic` flag.

use crate::topology::{CacheSpec, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Classes of resource the tree can describe, mirroring
/// `mrapi_resource_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Root of the tree: the whole system.
    System,
    /// A cluster of cores sharing a cache/fabric port.
    Cluster,
    /// A physical core.
    Core,
    /// A hardware thread on a core.
    HwThread,
    /// A cache at some level.
    Cache,
    /// A memory (DRAM, on-chip SRAM, remote window).
    Memory,
    /// Crossbar / coherency fabric.
    Fabric,
}

/// One attribute on a resource node.
///
/// MRAPI attributes are typed key/value pairs; a *dynamic* attribute's value
/// may change between reads (e.g. utilization), so it is backed by an atomic
/// cell shared with whoever updates it.
#[derive(Debug, Clone)]
pub enum ResourceAttr {
    /// Immutable integer attribute (sizes, counts, ids).
    StaticU64(u64),
    /// Immutable text attribute (names, ISA strings).
    StaticText(String),
    /// Immutable float attribute (bandwidths, frequencies).
    StaticF64(f64),
    /// Dynamic integer attribute; reads observe the latest stored value.
    DynamicU64(Arc<AtomicU64>),
}

impl PartialEq for ResourceAttr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ResourceAttr::StaticU64(a), ResourceAttr::StaticU64(b)) => a == b,
            (ResourceAttr::StaticText(a), ResourceAttr::StaticText(b)) => a == b,
            (ResourceAttr::StaticF64(a), ResourceAttr::StaticF64(b)) => a == b,
            (ResourceAttr::DynamicU64(a), ResourceAttr::DynamicU64(b)) => {
                a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed)
            }
            _ => false,
        }
    }
}

impl ResourceAttr {
    /// Read the attribute as an integer if it has integer shape.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ResourceAttr::StaticU64(v) => Some(*v),
            ResourceAttr::DynamicU64(c) => Some(c.load(Ordering::Acquire)),
            _ => None,
        }
    }

    /// Read the attribute as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ResourceAttr::StaticText(s) => Some(s),
            _ => None,
        }
    }

    /// Read the attribute as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ResourceAttr::StaticF64(v) => Some(*v),
            ResourceAttr::StaticU64(v) => Some(*v as f64),
            ResourceAttr::DynamicU64(c) => Some(c.load(Ordering::Acquire) as f64),
            _ => None,
        }
    }

    /// True if the attribute can change between reads (`is_dynamic` in MRAPI).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, ResourceAttr::DynamicU64(_))
    }
}

/// One node in the resource tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceNode {
    /// Resource class.
    pub kind: ResourceKind,
    /// Human-readable name, unique among siblings (`"core2"`, `"L2"`, ...).
    pub name: String,
    /// Typed attributes, keyed by attribute name.
    pub attrs: Vec<(String, ResourceAttr)>,
    /// Children in declaration order.
    pub children: Vec<ResourceNode>,
}

impl ResourceNode {
    /// Create a leaf node with no attributes.
    pub fn new(kind: ResourceKind, name: impl Into<String>) -> Self {
        ResourceNode {
            kind,
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style attribute attach.
    pub fn with_attr(mut self, key: &str, attr: ResourceAttr) -> Self {
        self.attrs.push((key.to_string(), attr));
        self
    }

    /// Builder-style child attach.
    pub fn with_child(mut self, child: ResourceNode) -> Self {
        self.children.push(child);
        self
    }

    /// Look up an attribute by name.
    pub fn attr(&self, key: &str) -> Option<&ResourceAttr> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first iteration over this node and every descendant.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a ResourceNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    fn cache_node(spec: &CacheSpec) -> ResourceNode {
        ResourceNode::new(ResourceKind::Cache, spec.level.label())
            .with_attr("size_bytes", ResourceAttr::StaticU64(spec.size_bytes))
            .with_attr(
                "line_bytes",
                ResourceAttr::StaticU64(spec.line_bytes as u64),
            )
            .with_attr("ways", ResourceAttr::StaticU64(spec.ways as u64))
            .with_attr(
                "latency_cycles",
                ResourceAttr::StaticU64(spec.latency_cycles as u64),
            )
    }
}

/// A complete resource tree, as handed back by `mrapi_resources_get`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTree {
    /// The `System` node everything else hangs off.
    pub root: ResourceNode,
}

impl ResourceTree {
    /// Build the full tree for a topology.
    ///
    /// Layout: `System → Fabric? → [Cluster → Cache*, Core → Cache*,
    /// HwThread*] , Memory*`.  Every hardware thread carries a dynamic
    /// `utilization` attribute callers may update.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut root = ResourceNode::new(ResourceKind::System, topo.name.clone())
            .with_attr("clock_hz", ResourceAttr::StaticU64(topo.clock_hz))
            .with_attr(
                "num_cores",
                ResourceAttr::StaticU64(topo.num_cores() as u64),
            )
            .with_attr(
                "num_hw_threads",
                ResourceAttr::StaticU64(topo.num_hw_threads() as u64),
            );

        let mut fabric = ResourceNode::new(ResourceKind::Fabric, topo.fabric.name.clone())
            .with_attr(
                "bandwidth_bytes_per_s",
                ResourceAttr::StaticF64(topo.fabric.bandwidth_bytes_per_s),
            )
            .with_attr(
                "latency_ns",
                ResourceAttr::StaticF64(topo.fabric.latency_ns),
            );
        if let Some(pc) = &topo.fabric.platform_cache {
            fabric = fabric.with_child(ResourceNode::cache_node(pc));
        }

        for cl in &topo.clusters {
            let mut cl_node = ResourceNode::new(ResourceKind::Cluster, format!("cluster{}", cl.id))
                .with_attr("num_cores", ResourceAttr::StaticU64(cl.cores.len() as u64));
            for spec in &cl.caches {
                cl_node = cl_node.with_child(ResourceNode::cache_node(spec));
            }
            for &core_id in &cl.cores {
                let core = &topo.cores[core_id];
                let mut core_node =
                    ResourceNode::new(ResourceKind::Core, format!("core{}", core.id))
                        .with_attr("isa", ResourceAttr::StaticText(core.isa.clone()))
                        .with_attr("simd", ResourceAttr::StaticU64(core.simd as u64));
                for spec in &core.caches {
                    core_node = core_node.with_child(ResourceNode::cache_node(spec));
                }
                for &tid in &core.hw_threads {
                    let t = &topo.hw_threads[tid];
                    core_node = core_node.with_child(
                        ResourceNode::new(ResourceKind::HwThread, format!("cpu{}", t.id))
                            .with_attr("smt_index", ResourceAttr::StaticU64(t.smt_index as u64))
                            .with_attr(
                                "utilization",
                                ResourceAttr::DynamicU64(Arc::new(AtomicU64::new(0))),
                            ),
                    );
                }
                cl_node = cl_node.with_child(core_node);
            }
            fabric = fabric.with_child(cl_node);
        }
        root = root.with_child(fabric);
        root = root.with_child(
            ResourceNode::new(ResourceKind::Memory, "DDR")
                .with_attr("size_bytes", ResourceAttr::StaticU64(topo.dram_bytes))
                .with_attr(
                    "bandwidth_bytes_per_s",
                    ResourceAttr::StaticF64(topo.dram_bandwidth_bytes_per_s),
                )
                .with_attr("latency_ns", ResourceAttr::StaticF64(topo.dram_latency_ns)),
        );
        ResourceTree { root }
    }

    /// Filter: a tree containing only nodes of `kind` (plus the root), the
    /// MRAPI "filtered resource tree" facility.
    pub fn filter_kind(&self, kind: ResourceKind) -> ResourceTree {
        let mut filtered = ResourceNode::new(self.root.kind, self.root.name.clone());
        filtered.attrs = self.root.attrs.clone();
        self.root.walk(&mut |n| {
            if n.kind == kind {
                let mut leaf = n.clone();
                leaf.children.retain(|c| c.kind == kind);
                filtered.children.push(leaf);
            }
        });
        ResourceTree { root: filtered }
    }

    /// Count nodes of a given kind anywhere in the tree.
    pub fn count_kind(&self, kind: ResourceKind) -> usize {
        let mut n = 0;
        self.root.walk(&mut |node| {
            if node.kind == kind {
                n += 1;
            }
        });
        n
    }

    /// The number of online processors — what the paper's runtime reads to
    /// size its team (§5B.4).
    pub fn online_processors(&self) -> usize {
        self.count_kind(ResourceKind::HwThread)
    }

    /// Collect every dynamic attribute cell (key, handle) for updaters.
    pub fn dynamic_cells(&self) -> Vec<(String, Arc<AtomicU64>)> {
        let mut out = Vec::new();
        self.root.walk(&mut |n| {
            for (k, a) in &n.attrs {
                if let ResourceAttr::DynamicU64(cell) = a {
                    out.push((format!("{}/{}", n.name, k), Arc::clone(cell)));
                }
            }
        });
        out
    }

    /// Render the tree as indented text (used by the `resource_tree` example).
    pub fn render(&self) -> String {
        fn rec(n: &ResourceNode, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("{:?} {}", n.kind, n.name));
            if !n.attrs.is_empty() {
                out.push_str(" [");
                for (i, (k, v)) in n.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    match v {
                        ResourceAttr::StaticU64(x) => out.push_str(&format!("{k}={x}")),
                        ResourceAttr::StaticText(s) => out.push_str(&format!("{k}={s}")),
                        ResourceAttr::StaticF64(f) => out.push_str(&format!("{k}={f:.3e}")),
                        ResourceAttr::DynamicU64(c) => {
                            out.push_str(&format!("{k}~{}", c.load(Ordering::Relaxed)))
                        }
                    }
                }
                out.push(']');
            }
            out.push('\n');
            for c in &n.children {
                rec(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(&self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> ResourceTree {
        ResourceTree::from_topology(&Topology::t4240rdb())
    }

    #[test]
    fn counts_match_topology() {
        let t = tree();
        assert_eq!(t.count_kind(ResourceKind::Cluster), 3);
        assert_eq!(t.count_kind(ResourceKind::Core), 12);
        assert_eq!(t.count_kind(ResourceKind::HwThread), 24);
        assert_eq!(t.online_processors(), 24);
        // caches: 3 cluster L2 + 12*(L1I+L1D) + 1 L3 = 28
        assert_eq!(t.count_kind(ResourceKind::Cache), 28);
    }

    #[test]
    fn filter_returns_only_kind() {
        let t = tree();
        let cores = t.filter_kind(ResourceKind::Core);
        assert_eq!(cores.root.children.len(), 12);
        assert!(cores
            .root
            .children
            .iter()
            .all(|c| c.kind == ResourceKind::Core));
        // filtered children must not contain hw threads
        for c in &cores.root.children {
            assert!(c.children.iter().all(|g| g.kind == ResourceKind::Core));
        }
    }

    #[test]
    fn attributes_readable() {
        let t = tree();
        assert_eq!(
            t.root.attr("clock_hz").unwrap().as_u64(),
            Some(1_800_000_000)
        );
        assert_eq!(t.root.attr("num_hw_threads").unwrap().as_u64(), Some(24));
        assert!(t.root.attr("missing").is_none());
    }

    #[test]
    fn dynamic_attributes_update_in_place() {
        let t = tree();
        let cells = t.dynamic_cells();
        assert_eq!(cells.len(), 24, "one utilization cell per hw thread");
        cells[0].1.store(77, Ordering::Release);
        // The same cell is observable through the tree.
        let mut seen = None;
        t.root.walk(&mut |n| {
            if n.name == "cpu0" {
                seen = n.attr("utilization").and_then(|a| a.as_u64());
            }
        });
        assert_eq!(seen, Some(77));
        let mut any_dynamic = false;
        t.root.walk(&mut |n| {
            any_dynamic |= n.attrs.iter().any(|(_, a)| a.is_dynamic());
        });
        assert!(any_dynamic);
    }

    #[test]
    fn render_contains_key_rows() {
        let s = tree().render();
        assert!(s.contains("System T4240RDB"));
        assert!(s.contains("Fabric CoreNet"));
        assert!(s.contains("cluster2"));
        assert!(s.contains("cpu23"));
        assert!(s.contains("Memory DDR"));
    }

    #[test]
    fn p4080_tree_has_no_cluster_l2() {
        let t = ResourceTree::from_topology(&Topology::p4080ds());
        assert_eq!(t.online_processors(), 8);
        // 8 cores × (L1I+L1D+L2) + 1 L3 = 25 caches
        assert_eq!(t.count_kind(ResourceKind::Cache), 25);
    }
}
