//! Tests for the auxiliary runtime API (locks, sections, wtime, flush,
//! num_procs) and lifecycle robustness (shutdown, churn, oversubscription).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use romp::{BackendKind, Runtime, Schedule};

#[test]
fn parallel_sections_runs_each_body_once() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let c = AtomicUsize::new(0);
        let s1: &(dyn Fn() + Sync) = &|| {
            a.fetch_add(1, Ordering::Relaxed);
        };
        let s2: &(dyn Fn() + Sync) = &|| {
            b.fetch_add(1, Ordering::Relaxed);
        };
        let s3: &(dyn Fn() + Sync) = &|| {
            c.fetch_add(1, Ordering::Relaxed);
        };
        rt.parallel_sections(2, &[s1, s2, s3]);
        assert_eq!(
            (
                a.load(Ordering::Relaxed),
                b.load(Ordering::Relaxed),
                c.load(Ordering::Relaxed)
            ),
            (1, 1, 1)
        );
    }
}

#[test]
fn wtime_is_monotonic() {
    let a = romp::wtime();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let b = romp::wtime();
    assert!(b > a);
    assert!(b - a < 5.0, "sane magnitude");
}

#[test]
fn num_procs_reflects_backend_metadata() {
    let native = Runtime::with_backend(BackendKind::Native).unwrap();
    let mca = Runtime::with_backend(BackendKind::Mca).unwrap();
    let got_native = Mutex::new(0usize);
    native.parallel(2, |w| {
        if w.is_master() {
            *got_native.lock().unwrap() = w.num_procs();
        }
        w.flush();
    });
    let got_mca = Mutex::new(0usize);
    mca.parallel(2, |w| {
        if w.is_master() {
            *got_mca.lock().unwrap() = w.num_procs();
        }
    });
    assert!(*got_native.lock().unwrap() >= 1);
    assert_eq!(
        *got_mca.lock().unwrap(),
        24,
        "MRAPI metadata of the modeled board"
    );
}

#[test]
fn runtime_churn_creates_and_destroys_cleanly() {
    // Repeated construct/teardown cycles must not leak nodes or wedge the
    // pool (the MCA backend deregisters its master node at shutdown).
    for _ in 0..12 {
        for kind in BackendKind::all() {
            let rt = Runtime::with_backend(kind).unwrap();
            let n = AtomicUsize::new(0);
            rt.parallel(3, |_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), 3);
            drop(rt);
        }
    }
}

#[test]
fn heavy_oversubscription_stays_correct() {
    // 48 workers on however few host cores exist: spin-then-park must keep
    // this finishing promptly and correctly.
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
    let total = AtomicU64::new(0);
    rt.parallel(48, |w| {
        w.for_range(0..4800, Schedule::Dynamic { chunk: 7 }, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        w.barrier();
        let s = w.reduce_u64(1, romp::ReduceOp::Sum);
        assert_eq!(s, 48);
    });
    assert_eq!(total.load(Ordering::Relaxed), 4800);
}

#[test]
fn many_small_regions_back_to_back() {
    // EPCC's `parallel` pattern at high rate; catches dock-slot races.
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let count = AtomicU64::new(0);
    for _ in 0..500 {
        rt.parallel(3, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 1500);
}

#[test]
fn concurrent_parallel_calls_from_many_threads_serialize_safely() {
    // The region gate must arbitrate cleanly when several host threads use
    // one runtime.
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let total = std::sync::Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let rt = rt.clone();
            let total = std::sync::Arc::clone(&total);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let t = std::sync::Arc::clone(&total);
                    rt.parallel(2, move |_| {
                        t.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 2);
}

#[test]
fn taskloop_covers_range_and_waits() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let marks: std::sync::Arc<Vec<AtomicU64>> =
            std::sync::Arc::new((0..500).map(|_| AtomicU64::new(0)).collect());
        rt.parallel(4, |w| {
            if w.is_master() {
                let m = std::sync::Arc::clone(&marks);
                w.taskloop(0..500, 13, move |i| {
                    m[i as usize].fetch_add(1, Ordering::Relaxed);
                });
                // taskloop includes the taskwait: everything done here.
                assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "{kind:?}"
        );
    }
}

#[test]
fn taskloop_grain_zero_treated_as_one() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let count = std::sync::Arc::new(AtomicU64::new(0));
    rt.parallel(2, |w| {
        if w.is_master() {
            let c = std::sync::Arc::clone(&count);
            w.taskloop(0..10, 0, move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 10);
}

#[test]
fn collapse_2d_covers_product_space() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let marks: Vec<AtomicU64> = (0..15 * 23).map(|_| AtomicU64::new(0)).collect();
        rt.parallel(4, |w| {
            w.for_range_2d(10..25, 100..123, Schedule::Dynamic { chunk: 4 }, |i, j| {
                assert!((10..25).contains(&i) && (100..123).contains(&j));
                marks[((i - 10) * 23 + (j - 100)) as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "{kind:?}: every (i,j) exactly once"
        );
    }
}

#[test]
fn collapse_2d_empty_dimensions() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let hits = AtomicU64::new(0);
    rt.parallel(2, |w| {
        w.for_range_2d(0..5, 7..7, Schedule::Static { chunk: None }, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        w.for_range_2d(3..3, 0..9, Schedule::Static { chunk: None }, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(hits.load(Ordering::Relaxed), 0);
}
