//! Stress and property tests for the runtime's own synchronization
//! primitives — the pieces that must survive heavy oversubscription on the
//! reproduction's single-core-to-many-thread setups.

use mca_sync::rng::SmallRng;
use romp::barrier::{Barrier, BarrierKind};
use romp::sync::RawMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn raw_mutex_heavy_contention_exactness() {
    let m = Arc::new(RawMutex::new());
    let counter = Arc::new(AtomicU64::new(0));
    let threads = 16;
    let reps = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let m = Arc::clone(&m);
            let c = Arc::clone(&counter);
            thread::spawn(move || {
                for _ in 0..reps {
                    m.with(|| {
                        // Non-atomic RMW: exactness proves mutual exclusion.
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * reps);
}

#[test]
fn raw_mutex_makes_progress_with_churning_waiters() {
    // Waiters join and leave continuously; nobody may starve forever.
    let m = Arc::new(RawMutex::new());
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let m = Arc::clone(&m);
            let d = Arc::clone(&done);
            thread::spawn(move || {
                for _ in 0..300 {
                    m.lock();
                    std::hint::spin_loop();
                    m.unlock();
                    thread::yield_now();
                }
                d.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(done.load(Ordering::Relaxed), 8);
}

/// A barrier-correctness harness: every thread increments a phase counter,
/// waits, and checks the full team arrived; double-barrier separates
/// rounds.  Any leak or double-release trips the assertion.
fn barrier_round_trip(kind: BarrierKind, n: usize, rounds: u64) -> bool {
    let b = Arc::new(Barrier::new(n, kind));
    let phase = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(1));
    let handles: Vec<_> = (0..n)
        .map(|tid| {
            let b = Arc::clone(&b);
            let phase = Arc::clone(&phase);
            let ok = Arc::clone(&ok);
            thread::spawn(move || {
                for r in 0..rounds {
                    phase.fetch_add(1, Ordering::SeqCst);
                    b.wait(tid);
                    if phase.load(Ordering::SeqCst) < (r + 1) * n as u64 {
                        ok.store(0, Ordering::SeqCst);
                    }
                    b.wait(tid);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    ok.load(Ordering::SeqCst) == 1 && phase.load(Ordering::SeqCst) == rounds * n as u64
}

/// The centralized barrier is correct for arbitrary team sizes.
#[test]
fn centralized_barrier_arbitrary_teams() {
    let mut rng = SmallRng::seed_from_u64(0xba11_0001);
    for _ in 0..12 {
        let n = rng.gen_index(1, 12);
        let rounds = rng.gen_range(1, 20);
        assert!(
            barrier_round_trip(BarrierKind::Centralized, n, rounds),
            "centralized barrier failed at n={n}, rounds={rounds}"
        );
    }
}

/// The tree barrier is correct for arbitrary team sizes and arities,
/// including sizes that do not divide the arity.
#[test]
fn tree_barrier_arbitrary_teams() {
    let mut rng = SmallRng::seed_from_u64(0xba11_0002);
    for _ in 0..12 {
        let n = rng.gen_index(1, 12);
        let arity = rng.gen_index(2, 6);
        let rounds = rng.gen_range(1, 20);
        let kind = BarrierKind::Tree { arity };
        assert!(
            barrier_round_trip(kind, n, rounds),
            "tree barrier failed at n={n}, arity={arity}, rounds={rounds}"
        );
    }
}

#[test]
fn barrier_team_larger_than_host_cores() {
    // The reproduction's core scenario: 24+ participants on a small host.
    assert!(barrier_round_trip(BarrierKind::Centralized, 24, 10));
    assert!(barrier_round_trip(BarrierKind::Tree { arity: 4 }, 24, 10));
}
