//! Cooperative cancellation: the core half of the lifecycle-supervision
//! story.  These tests drive [`romp::CancelToken`] through every checkpoint
//! family — barriers, worksharing grabs, criticals, taskwait, ordered —
//! and assert the invariants the serving layer builds on: regions unwind
//! to `RompError::Cancelled`, the pool survives and serves the next
//! region, user panics still outrank cancellation, and an unarmed runtime
//! behaves exactly as before.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use romp::{BackendKind, CancelReason, CancelToken, RompError, Runtime, Schedule};

fn rt() -> Runtime {
    Runtime::with_backend(BackendKind::Native).unwrap()
}

/// Fire `token` from another thread once `entered` flips, so the cancel
/// lands while the region is provably mid-flight.
fn fire_when_entered(
    token: &CancelToken,
    entered: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let token = token.clone();
    let entered = Arc::clone(entered);
    std::thread::spawn(move || {
        while !entered.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        token.cancel();
    })
}

#[test]
fn cancelled_region_unwinds_at_barrier() {
    let rt = rt();
    let token = CancelToken::new();
    rt.set_cancel_token(Some(token.clone()));
    let entered = Arc::new(AtomicBool::new(false));
    let killer = fire_when_entered(&token, &entered);
    let e2 = Arc::clone(&entered);
    let err = rt.try_parallel(4, move |w| {
        e2.store(true, Ordering::Release);
        // Barrier forever: only cancellation can end this region.
        loop {
            w.barrier();
        }
    });
    killer.join().unwrap();
    assert!(matches!(err, Err(RompError::Cancelled)), "got {err:?}");
    rt.set_cancel_token(None);
    // The pool must be fully reusable afterwards.
    let sum = rt.parallel_reduce_sum(4, 0..1000u64, |i| i);
    assert_eq!(sum, 499_500);
}

#[test]
fn cancelled_dynamic_loop_stops_grabbing_chunks() {
    let rt = rt();
    let token = CancelToken::new();
    rt.set_cancel_token(Some(token.clone()));
    let done = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&done);
    let t2 = token.clone();
    let err = rt.try_parallel(4, move |w| {
        w.for_range_nowait(0..1_000_000u64, Schedule::Dynamic { chunk: 1 }, |i| {
            if i == 10 {
                t2.cancel();
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(matches!(err, Err(RompError::Cancelled)), "got {err:?}");
    let ran = done.load(Ordering::Relaxed);
    assert!(
        ran < 1_000_000,
        "cancellation should stop the loop early, ran {ran}"
    );
    rt.set_cancel_token(None);
}

#[test]
fn cancelled_taskwait_and_critical_unwind() {
    let rt = rt();
    for construct in ["taskwait", "critical"] {
        let token = CancelToken::new();
        rt.set_cancel_token(Some(token.clone()));
        let t2 = token.clone();
        let err = rt.try_parallel(2, move |w| {
            if w.is_master() {
                t2.cancel();
            }
            w.barrier();
            match construct {
                "taskwait" => {
                    w.task(|| {});
                    w.taskwait();
                }
                _ => {
                    w.critical("cancel-test", || {});
                }
            }
        });
        assert!(
            matches!(err, Err(RompError::Cancelled)),
            "{construct}: got {err:?}"
        );
        rt.set_cancel_token(None);
    }
}

#[test]
fn pre_fired_token_skips_the_fork() {
    let rt = rt();
    let token = CancelToken::new();
    token.cancel();
    rt.set_cancel_token(Some(token));
    let ran = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&ran);
    let err = rt.try_parallel(4, move |_w| {
        r2.fetch_add(1, Ordering::Relaxed);
    });
    assert!(matches!(err, Err(RompError::Cancelled)));
    assert_eq!(ran.load(Ordering::Relaxed), 0, "closure must never run");
    rt.set_cancel_token(None);
}

#[test]
fn parallel_swallows_cancellation_without_team_of_one() {
    // `parallel()` must treat Cancelled as "stop", not as a failure that
    // warrants the team-of-one fallback (which would re-run the closure).
    let rt = rt();
    let token = CancelToken::new();
    token.cancel();
    rt.set_cancel_token(Some(token));
    let runs = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&runs);
    rt.parallel(4, move |_w| {
        r2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(runs.load(Ordering::Relaxed), 0);
    rt.set_cancel_token(None);
}

#[test]
fn user_panic_outranks_cancellation() {
    let rt = rt();
    let token = CancelToken::new();
    rt.set_cancel_token(Some(token.clone()));
    let t2 = token.clone();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.try_parallel(2, move |w| {
            if w.is_master() {
                t2.cancel();
                panic!("user panic wins");
            }
            w.barrier();
        })
    }));
    let payload = caught.expect_err("panic must propagate, not Cancelled");
    assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "user panic wins");
    rt.set_cancel_token(None);
    rt.parallel(2, |w| {
        w.barrier();
    });
}

#[test]
fn cancel_reason_is_first_wins() {
    let t = CancelToken::new();
    assert!(t.cancel_deadline());
    assert!(!t.cancel());
    assert_eq!(t.reason(), Some(CancelReason::Deadline));
}

#[test]
fn ordered_loop_cancels_cleanly() {
    let rt = rt();
    let token = CancelToken::new();
    rt.set_cancel_token(Some(token.clone()));
    let t2 = token.clone();
    let err = rt.try_parallel(2, move |w| {
        w.for_range_ordered(0..100u64, Schedule::Static { chunk: Some(1) }, |i| {
            if i == 3 {
                t2.cancel();
            }
            w.ordered(i, || {});
        });
    });
    assert!(matches!(err, Err(RompError::Cancelled)), "got {err:?}");
    rt.set_cancel_token(None);
}

#[test]
fn cancellation_latency_is_bounded() {
    // The serving watchdog's premise: a fired token unwinds a barrier-heavy
    // region promptly (checkpoints are on every hot construct).  Allow a
    // generous bound — CI machines stall — but it must not take seconds.
    let rt = rt();
    let token = CancelToken::new();
    rt.set_cancel_token(Some(token.clone()));
    let entered = Arc::new(AtomicBool::new(false));
    let killer = fire_when_entered(&token, &entered);
    let e2 = Arc::clone(&entered);
    let t0 = Instant::now();
    let err = rt.try_parallel(4, move |w| {
        e2.store(true, Ordering::Release);
        loop {
            w.barrier();
        }
    });
    let elapsed = t0.elapsed();
    killer.join().unwrap();
    assert!(matches!(err, Err(RompError::Cancelled)));
    assert!(
        elapsed < Duration::from_secs(5),
        "cancel took {elapsed:?} to unwind"
    );
    rt.set_cancel_token(None);
}

#[test]
fn unarmed_runtime_runs_identically() {
    let rt = rt();
    // No token armed: full construct sweep must behave exactly as before.
    let sum = rt.parallel_reduce_sum(4, 0..10_000u64, |i| i);
    assert_eq!(sum, 49_995_000);
    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    rt.parallel(4, move |w| {
        w.for_range(0..100u64, Schedule::Guided { chunk: 4 }, |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        w.single(|| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        w.critical("unarmed", || {});
    });
    assert_eq!(hits.load(Ordering::Relaxed), 101);
}
