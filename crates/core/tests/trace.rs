//! Integration tests for the observability layer (`romp-trace`) as wired
//! through the runtime: armed runtimes must produce balanced spans for
//! every bracketed construct on both backends, a disarmed runtime must
//! record nothing, and a forced MCA→native fallback must leave a
//! `backend.fallback` event in the trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite, MrapiStatus, MrapiSystem};
use romp::trace::{EventKind, Phase};
use romp::{BackendKind, Config, McaBackend, McaOptions, RetryPolicy, Runtime};

/// One armed region exercising every bracketed construct: barrier,
/// named critical, and explicit tasks.
fn traced_workload(rt: &Runtime) {
    let sum = AtomicU64::new(0);
    rt.parallel(4, |w| {
        w.critical("counter", || {
            sum.fetch_add(1, Ordering::Relaxed);
        });
        w.barrier();
        for _ in 0..2 {
            w.task(|| {});
        }
        w.taskwait();
    });
    assert_eq!(sum.load(Ordering::Relaxed), 4);
}

#[test]
fn armed_runtime_produces_balanced_spans_on_both_backends() {
    for kind in [BackendKind::Native, BackendKind::Mca] {
        let rt =
            Runtime::with_config(Config::default().with_backend(kind).with_tracing(true)).unwrap();
        traced_workload(&rt);
        let trace = rt.take_trace();

        for span_kind in [EventKind::Region, EventKind::Barrier, EventKind::Critical] {
            assert!(
                trace.balanced(span_kind),
                "{}: unbalanced {} spans",
                kind.label(),
                span_kind.label()
            );
            assert!(
                trace.count(span_kind, Phase::Begin) > 0,
                "{}: no {} begins recorded",
                kind.label(),
                span_kind.label()
            );
        }
        // Four members of one team open one region span each.
        assert_eq!(trace.count(EventKind::Region, Phase::Begin), 4);
        assert_eq!(
            trace.count(EventKind::TaskSpawn, Phase::Instant),
            8,
            "{}: 4 members × 2 tasks each",
            kind.label()
        );
        assert_eq!(trace.count(EventKind::TaskRun, Phase::Instant), 8);
        assert_eq!(trace.dropped, 0, "default ring must not overflow here");
    }
}

#[test]
fn armed_mca_runtime_records_mrapi_calls_and_lock_metrics() {
    let rt = Runtime::with_config(
        Config::default()
            .with_backend(BackendKind::Mca)
            .with_tracing(true),
    )
    .unwrap();
    traced_workload(&rt);
    let summary = rt.run_summary();
    let trace = rt.take_trace();
    assert!(
        trace.count(EventKind::Mrapi, Phase::Instant) > 0,
        "MRAPI status sites must appear in an armed MCA trace"
    );
    assert!(
        trace.count(EventKind::LockAcquire, Phase::Instant) > 0,
        "critical sections acquire MRAPI locks"
    );
    let names: Vec<&str> = summary
        .metrics
        .histograms
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(
        names.contains(&"mca.lock_wait_ns"),
        "lock-wait histogram registered: {names:?}"
    );
}

#[test]
fn disarmed_runtime_records_nothing() {
    let rt = Runtime::with_config(
        Config::default()
            .with_backend(BackendKind::Mca)
            .with_tracing(false),
    )
    .unwrap();
    traced_workload(&rt);
    let trace = rt.take_trace();
    assert_eq!(trace.total_events(), 0);
    assert_eq!(trace.dropped, 0);
    let summary = rt.run_summary();
    assert_eq!(summary.events, 0);
    // Always-on construct counters still fold into the summary.
    assert!(summary
        .metrics
        .counters
        .iter()
        .any(|(n, v)| n == "stats.regions" && *v > 0));
}

#[test]
fn forced_fallback_leaves_a_trace_event() {
    // Every shmem creation fails persistently: the first region's reduce
    // scratch allocation poisons the MCA backend and the runtime swaps in
    // the native fallback at the heal point.
    let sys = MrapiSystem::new_t4240();
    let plan = Arc::new(FaultPlan::new(0x7AC3).with_persistent(
        FaultSite::ShmemCreate,
        MrapiStatus::ErrMemLimit,
        0,
    ));
    sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
    let be = McaBackend::with_options(
        sys,
        McaOptions {
            lock_timeout: Duration::from_millis(50),
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_micros(10),
                max_delay: Duration::from_micros(100),
            },
        },
    )
    .unwrap();
    let rt = Runtime::with_config_and_backend(Config::default().with_tracing(true), Box::new(be))
        .unwrap();

    traced_workload(&rt);
    assert!(rt.degraded(), "persistent shmem failure must degrade");
    assert_eq!(rt.backend_kind(), BackendKind::Native);

    let summary = rt.run_summary();
    let trace = rt.take_trace();
    assert!(
        trace.count(EventKind::Fallback, Phase::Instant) > 0,
        "the MCA→native swap must be visible in the trace"
    );
    assert!(
        trace.count(EventKind::Fault, Phase::Instant) > 0,
        "injected faults are recorded at their MRAPI sites"
    );
    assert!(trace.balanced(EventKind::Region), "spans survive the swap");
    assert!(trace.balanced(EventKind::Barrier));
    assert!(trace.balanced(EventKind::Critical));
    assert!(
        summary
            .metrics
            .counters
            .iter()
            .any(|(n, v)| n == "backend.fallback" && *v > 0),
        "fallback counter incremented"
    );
}
