//! Construct-matrix integration tests: every OpenMP construct, on both
//! backends (native = stock libGOMP analogue, mca = the paper's
//! MCA-libGOMP).  This is the same discipline as the paper's §6A validation
//! step, applied at the runtime's own API level.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use romp::{BackendKind, BarrierKind, Config, ReduceOp, Runtime, Schedule};

fn runtimes() -> Vec<Runtime> {
    BackendKind::all()
        .iter()
        .map(|&k| Runtime::with_backend(k).unwrap())
        .collect()
}

#[test]
fn parallel_runs_requested_team() {
    for rt in runtimes() {
        let seen = AtomicU64::new(0);
        rt.parallel(6, |w| {
            assert_eq!(w.num_threads(), 6);
            assert!(w.thread_num() < 6);
            seen.fetch_add(1 << w.thread_num(), Ordering::Relaxed);
        });
        assert_eq!(
            seen.load(Ordering::Relaxed),
            0b111111,
            "{:?}",
            rt.backend_kind()
        );
    }
}

#[test]
fn parallel_zero_uses_default_size() {
    for rt in runtimes() {
        let n = AtomicUsize::new(0);
        rt.parallel(0, |w| {
            if w.is_master() {
                n.store(w.num_threads(), Ordering::Relaxed);
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), rt.max_threads());
    }
}

#[test]
fn mca_default_team_comes_from_metadata_tree() {
    // §5B.4: the MCA backend discovers 24 processors on the modeled T4240.
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
    assert_eq!(rt.max_threads(), 24);
}

#[test]
fn regions_reuse_the_pool() {
    for rt in runtimes() {
        for _ in 0..50 {
            let count = AtomicUsize::new(0);
            rt.parallel(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 4);
        }
        assert_eq!(rt.stats().regions, 50);
    }
}

#[test]
fn every_schedule_covers_every_iteration_exactly_once() {
    let schedules = [
        Schedule::Static { chunk: None },
        Schedule::Static { chunk: Some(3) },
        Schedule::Dynamic { chunk: 1 },
        Schedule::Dynamic { chunk: 7 },
        Schedule::Guided { chunk: 2 },
        Schedule::Auto,
        Schedule::Runtime,
    ];
    for rt in runtimes() {
        for sched in schedules {
            let n = 1000u64;
            let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            rt.parallel(5, |w| {
                w.for_range(0..n, sched, |i| {
                    marks[i as usize].fetch_add(1, Ordering::Relaxed);
                });
            });
            for (i, m) in marks.iter().enumerate() {
                assert_eq!(
                    m.load(Ordering::Relaxed),
                    1,
                    "iter {i} under {sched:?} on {:?}",
                    rt.backend_kind()
                );
            }
        }
    }
}

#[test]
fn consecutive_nowait_loops_do_not_interfere() {
    for rt in runtimes() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        rt.parallel(4, |w| {
            w.for_range_nowait(0..100, Schedule::Dynamic { chunk: 3 }, |_| {
                a.fetch_add(1, Ordering::Relaxed);
            });
            w.for_range_nowait(0..50, Schedule::Guided { chunk: 1 }, |_| {
                b.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(a.load(Ordering::Relaxed), 100);
        assert_eq!(b.load(Ordering::Relaxed), 50);
    }
}

#[test]
fn barrier_orders_phases() {
    for rt in runtimes() {
        let phase1 = AtomicUsize::new(0);
        let ok = AtomicUsize::new(0);
        rt.parallel(8, |w| {
            phase1.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            if phase1.load(Ordering::SeqCst) == 8 {
                ok.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(ok.load(Ordering::SeqCst), 8, "{:?}", rt.backend_kind());
    }
}

#[test]
fn single_runs_exactly_once_per_encounter() {
    for rt in runtimes() {
        let runs = AtomicUsize::new(0);
        rt.parallel(6, |w| {
            for _ in 0..10 {
                w.single(|| {
                    runs.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(runs.load(Ordering::Relaxed), 10);
        assert_eq!(rt.stats().singles, 10);
    }
}

#[test]
fn single_copy_broadcasts_value() {
    for rt in runtimes() {
        let sum = AtomicU64::new(0);
        rt.parallel(5, |w| {
            let v: u64 = w.single_copy(|| 41 + 1);
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 42 * 5);
    }
}

#[test]
fn master_runs_only_on_thread_zero() {
    for rt in runtimes() {
        let who = AtomicUsize::new(usize::MAX);
        let count = AtomicUsize::new(0);
        rt.parallel(4, |w| {
            w.master(|| {
                who.store(w.thread_num(), Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(who.load(Ordering::Relaxed), 0);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}

#[test]
fn sections_each_run_once() {
    for rt in runtimes() {
        let marks: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel(3, |w| {
            w.sections(7, |i| {
                marks[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }
}

#[test]
fn critical_provides_mutual_exclusion() {
    for rt in runtimes() {
        let value = AtomicU64::new(0);
        rt.parallel(8, |w| {
            for _ in 0..200 {
                w.critical("counter", || {
                    // Non-atomic RMW; only the critical section makes it safe.
                    let v = value.load(Ordering::Relaxed);
                    value.store(v + 1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            value.load(Ordering::Relaxed),
            1600,
            "{:?}",
            rt.backend_kind()
        );
        assert_eq!(rt.stats().criticals, 1600);
    }
}

#[test]
fn differently_named_criticals_are_independent() {
    for rt in runtimes() {
        let in_a = AtomicUsize::new(0);
        rt.parallel(2, |w| {
            if w.thread_num() == 0 {
                w.critical("a", || {
                    in_a.store(1, Ordering::SeqCst);
                    // Give the other thread time to take "b" concurrently.
                    let t0 = std::time::Instant::now();
                    while in_a.load(Ordering::SeqCst) != 2
                        && t0.elapsed() < std::time::Duration::from_secs(2)
                    {
                        std::thread::yield_now();
                    }
                });
            } else {
                while in_a.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                w.critical("b", || {
                    in_a.store(2, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(
            in_a.load(Ordering::SeqCst),
            2,
            "named criticals must not alias"
        );
    }
}

#[test]
fn reductions_match_serial_folds() {
    for rt in runtimes() {
        // f64 sum
        let s = rt.parallel_reduce_sum_f64(6, 0..1_000, |i| i as f64);
        assert!((s - 499_500.0).abs() < 1e-9);
        // u64 min/max/prod via the worker API
        let out = std::sync::Mutex::new((0u64, 0u64, 0u64));
        rt.parallel(4, |w| {
            let tid = w.thread_num() as u64;
            let mn = w.reduce_u64(tid + 10, ReduceOp::Min);
            let mx = w.reduce_u64(tid + 10, ReduceOp::Max);
            let pr = w.reduce_u64(tid + 1, ReduceOp::Prod);
            if w.is_master() {
                *out.lock().unwrap() = (mn, mx, pr);
            }
        });
        let (mn, mx, pr) = *out.lock().unwrap();
        assert_eq!(mn, 10);
        assert_eq!(mx, 13);
        assert_eq!(pr, 24);
    }
}

#[test]
fn generic_reduction_combines_all_contributions() {
    for rt in runtimes() {
        let result = std::sync::Mutex::new(Vec::new());
        rt.parallel(5, |w| {
            let v = w.reduce_with(vec![w.thread_num()], |mut a, b| {
                a.extend(b);
                a
            });
            if w.is_master() {
                let mut v = v;
                v.sort_unstable();
                *result.lock().unwrap() = v;
            }
        });
        assert_eq!(*result.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}

#[test]
fn back_to_back_reductions_are_isolated() {
    for rt in runtimes() {
        let out = std::sync::Mutex::new((0.0f64, 0.0f64));
        rt.parallel(6, |w| {
            let a = w.reduce_f64(1.0, ReduceOp::Sum);
            let b = w.reduce_f64(2.0, ReduceOp::Sum);
            if w.is_master() {
                *out.lock().unwrap() = (a, b);
            }
        });
        let (a, b) = *out.lock().unwrap();
        assert_eq!(a, 6.0);
        assert_eq!(b, 12.0);
    }
}

#[test]
fn ordered_loop_runs_ordered_blocks_in_sequence() {
    for rt in runtimes() {
        let log = std::sync::Mutex::new(Vec::new());
        rt.parallel(4, |w| {
            w.for_range_ordered(0..64, Schedule::Dynamic { chunk: 3 }, |i| {
                // Unordered part may run in any order; ordered part must be
                // strictly ascending.
                w.ordered(i, || {
                    log.lock().unwrap().push(i);
                });
            });
        });
        let log = log.into_inner().unwrap();
        assert_eq!(
            log,
            (0..64).collect::<Vec<u64>>(),
            "{:?}",
            rt.backend_kind()
        );
    }
}

#[test]
fn tasks_complete_by_taskwait_and_barrier() {
    for rt in runtimes() {
        let done = Arc::new(AtomicUsize::new(0));
        rt.parallel(4, |w| {
            if w.thread_num() == 1 {
                for _ in 0..20 {
                    let d = Arc::clone(&done);
                    w.task(move || {
                        d.fetch_add(1, Ordering::Relaxed);
                    });
                }
                w.taskwait();
                assert_eq!(done.load(Ordering::Relaxed), 20);
            }
            w.barrier();
            assert_eq!(done.load(Ordering::Relaxed), 20);
        });
        assert_eq!(rt.stats().tasks, 20);
    }
}

#[test]
fn tasks_spawned_by_tasks_finish_before_region_end() {
    for rt in runtimes() {
        let done = Arc::new(AtomicUsize::new(0));
        let d_out = Arc::clone(&done);
        rt.parallel(3, move |w| {
            if w.is_master() {
                let d1 = Arc::clone(&d_out);
                let team_spawner = {
                    let d2 = Arc::clone(&d_out);
                    move || {
                        d2.fetch_add(1, Ordering::Relaxed);
                    }
                };
                w.task(move || {
                    d1.fetch_add(1, Ordering::Relaxed);
                });
                w.task(team_spawner);
            }
        });
        assert_eq!(
            done.load(Ordering::Relaxed),
            2,
            "implicit barrier completes tasks"
        );
    }
}

#[test]
fn nested_parallel_serializes() {
    for rt in runtimes() {
        let inner_sizes = std::sync::Mutex::new(Vec::new());
        let rt2 = rt.clone();
        rt.parallel(3, |w| {
            let _ = w;
            rt2.parallel(4, |iw| {
                inner_sizes.lock().unwrap().push(iw.num_threads());
            });
        });
        let sizes = inner_sizes.into_inner().unwrap();
        assert_eq!(sizes.len(), 3, "each member ran the nested region");
        assert!(
            sizes.iter().all(|&s| s == 1),
            "nested teams serialize to size 1"
        );
    }
}

#[test]
fn worker_panic_propagates_to_caller() {
    for rt in runtimes() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.parallel(4, |w| {
                if w.thread_num() == 2 {
                    panic!("worker exploded");
                }
            });
        }));
        assert!(result.is_err(), "{:?}", rt.backend_kind());
        // The runtime survives the panic and can run another region.
        let n = AtomicUsize::new(0);
        rt.parallel(4, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }
}

#[test]
fn tree_barrier_configuration_works_end_to_end() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_config(
            Config::default()
                .with_backend(kind)
                .with_barrier(BarrierKind::Tree { arity: 2 }),
        )
        .unwrap();
        let sum = rt.parallel_reduce_sum(9, 0..10_000u64, |i| i);
        assert_eq!(sum, 49_995_000);
    }
}

#[test]
fn profiling_captures_worker_cpu_time() {
    for rt in runtimes() {
        rt.set_profiling(true);
        rt.reset_profile();
        rt.parallel(3, |w| {
            // Burn measurable CPU on every worker.
            let mut x = w.thread_num() as u64;
            for i in 0..2_000_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
            w.barrier();
        });
        let prof = rt.take_profile();
        assert_eq!(prof.num_workers(), 3);
        assert!(
            prof.worker_cpu_ns.iter().all(|&ns| ns > 0),
            "every worker should have accrued CPU time: {:?}",
            prof.worker_cpu_ns
        );
        assert!(prof.barriers >= 2, "explicit + implicit barrier recorded");
        rt.set_profiling(false);
    }
}

#[test]
fn stats_track_constructs() {
    for rt in runtimes() {
        rt.reset_stats();
        rt.parallel(2, |w| {
            w.for_range(0..10, Schedule::Static { chunk: None }, |_| {});
            w.single(|| {});
            w.barrier();
        });
        let s = rt.stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.loops, 1);
        assert_eq!(s.singles, 1);
        // for_range's implicit + single's implicit + explicit + region end.
        assert_eq!(s.barriers, 4);
    }
}

#[test]
fn omp_in_parallel_reflects_context() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    assert!(!Runtime::in_parallel());
    let seen = AtomicUsize::new(0);
    rt.parallel(2, |_| {
        if Runtime::in_parallel() {
            seen.fetch_add(1, Ordering::Relaxed);
        }
    });
    // Only the master thread's flag is thread-local-visible here; workers
    // run `run_region_member` without the flag, so they are allowed to
    // launch their own (serialized) nested regions. The master must see it.
    assert!(seen.load(Ordering::Relaxed) >= 1);
    assert!(!Runtime::in_parallel());
}

#[test]
fn parallel_map_collects_by_thread() {
    for rt in runtimes() {
        let v = rt.parallel_map(5, |w| w.thread_num() * 10);
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
    }
}
