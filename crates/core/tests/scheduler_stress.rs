//! Stress tests for the work-stealing task scheduler and the lock-free
//! worksharing construct ring, at the public runtime API.
//!
//! The scheduler's contract: tasks queued anywhere run exactly once, are
//! all complete when a barrier (or `taskwait`, or the implicit region-end
//! barrier) returns, and a panic inside a task surfaces from
//! [`Runtime::parallel`] no matter which member's stack the task actually
//! ran on.  The construct ring's contract: concurrently encountered
//! worksharing constructs never alias, even thousands of constructs deep —
//! many laps past the 64-slot ring capacity.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use mca_sync::rng::SmallRng;
use romp::{BackendKind, Runtime, Schedule};

fn native_rt() -> Runtime {
    Runtime::with_backend(BackendKind::Native).unwrap()
}

/// One member queues far more tasks than its 256-slot local ring holds
/// (forcing the injector path) while every other member is already idle in
/// `taskwait` (forcing the steal path); each task must run exactly once
/// and `taskwait` must not return early.
#[test]
fn taskwait_completes_under_heavy_stealing() {
    let rt = native_rt();
    const TASKS: usize = 2000;
    for _ in 0..5 {
        let ran: Arc<Vec<AtomicU32>> = Arc::new((0..TASKS).map(|_| AtomicU32::new(0)).collect());
        let queued = std::sync::atomic::AtomicBool::new(false);
        rt.parallel(6, |w| {
            if w.thread_num() == 0 {
                for i in 0..TASKS {
                    let ran = Arc::clone(&ran);
                    w.task(move || {
                        ran[i].fetch_add(1, Ordering::Relaxed);
                    });
                }
                queued.store(true, Ordering::Release);
            } else {
                // Enter taskwait only once work is really outstanding, so
                // this member drains exclusively by stealing.
                while !queued.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
            w.taskwait();
            for (i, r) in ran.iter().enumerate() {
                assert_eq!(r.load(Ordering::Relaxed), 1, "task {i} ran exactly once");
            }
        });
    }
}

/// Tasks queued by every member are all complete once the explicit
/// barrier returns — the OpenMP barrier-as-task-scheduling-point rule.
#[test]
fn barrier_completes_all_members_tasks() {
    let rt = native_rt();
    let hits = Arc::new(AtomicU64::new(0));
    let per_member = 300u64;
    let team = 4u64;
    rt.parallel(team as usize, |w| {
        for _ in 0..per_member {
            let hits = Arc::clone(&hits);
            w.task(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        w.barrier();
        assert_eq!(hits.load(Ordering::Relaxed), per_member * team);
    });
}

/// A panic inside a task reaches the caller of `parallel()` even when the
/// task was queued by one member and stolen by another.  Member 0 queues
/// the bomb and then spins inside the region, so the bomb is necessarily
/// executed by a thief (or by member 0's own barrier drain at region end —
/// either way the payload must surface).
#[test]
fn stolen_task_panic_propagates_from_parallel() {
    let rt = native_rt();
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.parallel(4, |w| {
            if w.thread_num() == 0 {
                w.task(|| panic!("stolen task boom"));
            }
            w.barrier();
        });
    }));
    let payload = result.expect_err("panic must propagate");
    assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "stolen task boom");
    // The runtime must stay usable after a task panic.
    let ok = AtomicU64::new(0);
    rt.parallel(4, |_| {
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 4);
}

/// Randomized ring-wrap stress: a parallel region runs hundreds of nowait
/// constructs back-to-back — many laps of the 64-slot construct ring — at
/// arbitrary team sizes.  If the ring ever aliased two live constructs
/// (one member on seq N reading state initialized for seq N+64), a
/// `single` would run twice or not at all, or a loop would drop or repeat
/// iterations.
#[test]
fn construct_ring_never_aliases_across_wraps() {
    let mut rng = SmallRng::seed_from_u64(0x41a5_0001);
    for _ in 0..6 {
        let threads = rng.gen_index(1, 7);
        let constructs = rng.gen_index(150, 400);
        let iters_per_loop = rng.gen_range(1, 40);
        let rt = native_rt();
        let singles = AtomicU64::new(0);
        let loop_hits = AtomicU64::new(0);
        rt.parallel(threads, |w| {
            for _ in 0..constructs {
                w.single_nowait(|| {
                    singles.fetch_add(1, Ordering::Relaxed);
                });
                w.for_range_nowait(0..iters_per_loop, Schedule::Dynamic { chunk: 3 }, |_| {
                    loop_hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            singles.load(Ordering::Relaxed),
            constructs as u64,
            "each of {constructs} singles ran exactly once (team {threads})"
        );
        assert_eq!(
            loop_hits.load(Ordering::Relaxed),
            constructs as u64 * iters_per_loop,
            "every loop iteration covered exactly once (team {threads})"
        );
    }
}

/// Task-scheduler churn across many short regions: rings and counters are
/// per-team, so nothing may leak from one region into the next.
#[test]
fn taskloop_churn_across_regions() {
    let rt = native_rt();
    let mut rng = SmallRng::seed_from_u64(0x41a5_0002);
    for _ in 0..12 {
        let n = rng.gen_range(1, 500);
        let grain = rng.gen_range(1, 32);
        let threads = rng.gen_index(1, 6);
        let sum = Arc::new(AtomicU64::new(0));
        rt.parallel(threads, |w| {
            if w.thread_num() == 0 {
                let sum = Arc::clone(&sum);
                w.taskloop(0..n, grain, move |i| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
            // Idle members reach the implicit region-end barrier and steal
            // taskloop chunks from there.
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
