//! Cooperative cancellation for `parallel` regions.
//!
//! A [`CancelToken`] is a cheap, cloneable flag that an external supervisor
//! (the serving dispatcher, a watchdog thread, a test harness) fires to ask
//! a running region to stop.  The runtime checks the token at *cooperative
//! points* — barrier entry and exit, worksharing chunk grabs, `critical`
//! acquisition, `taskwait`, construct-slot stalls — and unwinds the region
//! cleanly to a typed [`RompError::Cancelled`](crate::RompError::Cancelled).
//!
//! Cancellation is cooperative, never preemptive: a member deep inside user
//! arithmetic keeps computing until its next checkpoint.  That is the same
//! trade OpenMP 4.0 `omp cancel` makes, and it is what keeps the mechanism
//! free when unused — an unarmed region pays one `Option` test per
//! checkpoint and nothing else (Table I re-runs confirm zero overhead).
//!
//! Internally a cancelled member unwinds by panicking with the private
//! `CancelUnwind` sentinel.  The team's existing `catch_unwind` net (the
//! one that already isolates user panics) catches it; `record_panic`
//! recognises the sentinel and discards it instead of treating it as a user
//! panic, and the forking thread reports `RompError::Cancelled`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const ARMED: u8 = 0;
const REQUESTED: u8 = 1;
const DEADLINE: u8 = 2;

/// Why a token was fired — surfaced so supervisors can distinguish an
/// explicit `Cancel` request from a deadline expiry when classifying the
/// job outcome (`Cancelled` vs `TimedOut`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An explicit cancellation request (client `Cancel`, shutdown, …).
    Requested,
    /// A supervisor fired the token because a deadline elapsed.
    Deadline,
}

/// A shared cancellation flag. Clones observe the same underlying state.
///
/// Firing is first-wins and sticky: once fired, the token stays fired and
/// the first reason is the one reported.  Tokens are single-use by design —
/// arm a fresh token per job.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token with an explicit-request reason. Returns `true` if
    /// this call was the one that fired it (first-wins).
    pub fn cancel(&self) -> bool {
        self.fire(REQUESTED)
    }

    /// Fire the token with a deadline-expired reason. Returns `true` if
    /// this call was the one that fired it (first-wins).
    pub fn cancel_deadline(&self) -> bool {
        self.fire(DEADLINE)
    }

    fn fire(&self, why: u8) -> bool {
        self.state
            .compare_exchange(ARMED, why, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Has the token been fired?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != ARMED
    }

    /// Why the token was fired, or `None` if it has not been.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Acquire) {
            REQUESTED => Some(CancelReason::Requested),
            DEADLINE => Some(CancelReason::Deadline),
            _ => None,
        }
    }
}

/// The sentinel payload a cancelled member unwinds with.  `record_panic`
/// filters it out so cancellation is never mistaken for a user panic.
pub(crate) struct CancelUnwind;

/// Keep the default panic hook from printing a "thread panicked" report
/// (and backtrace) for every [`CancelUnwind`] — cancellation is a normal
/// control path, and a long-lived server cancelling jobs must not fill
/// stderr with phantom crashes.  Installed lazily on the first actual
/// cancellation, so programs that never cancel never touch the hook.
pub(crate) fn silence_cancel_unwind_reports() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<CancelUnwind>() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert!(t.cancel_deadline());
        assert!(!t.cancel()); // already fired
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.reason(), Some(CancelReason::Requested));
    }
}
