//! Runtime configuration — the OpenMP internal control variables (ICVs).
//!
//! Honoured environment variables, matching libGOMP where one exists:
//!
//! | variable           | meaning                                   |
//! |--------------------|-------------------------------------------|
//! | `OMP_NUM_THREADS`  | default team size                         |
//! | `OMP_SCHEDULE`     | schedule for `Schedule::Runtime` loops    |
//! | `OMP_DYNAMIC`      | allow the runtime to shrink teams         |
//! | `ROMP_BACKEND`     | `native` or `mca` (reproduction's switch) |
//! | `ROMP_BARRIER`     | `centralized` or `tree[:arity]`           |
//! | `ROMP_SHARDS`      | force the runtime shard count (see [`Config::shards`]) |
//! | `ROMP_LOCK_TIMEOUT_MS` | per-attempt MRAPI lock wait before a deadlock report |
//! | `ROMP_RETRY_ATTEMPTS`  | bounded retries for transient MRAPI statuses |
//! | `ROMP_FAULT_SEED`  | seed a deterministic MRAPI fault schedule |
//! | `ROMP_TRACE`       | `1`/`true` arms the [`romp_trace`] recorder  |
//! | `ROMP_TRACE_OUT`   | chrome://tracing JSON path written on runtime drop |

use std::time::Duration;

use crate::backend::BackendKind;
use crate::barrier::BarrierKind;
use crate::schedule::Schedule;

/// Bounded exponential backoff for transient MRAPI statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based): `base * 2^(retry-1)`
    /// capped at `max_delay`.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }
}

/// Construction-time configuration for a [`crate::Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Which backend provides threads/locks/memory/metadata.
    pub backend: BackendKind,
    /// Default team size; `None` means "ask the backend for the number of
    /// online processors" (the paper's §5B.4 metadata path).
    pub num_threads: Option<usize>,
    /// The `schedule(runtime)` schedule (`OMP_SCHEDULE`).
    pub runtime_schedule: Schedule,
    /// Whether the runtime may shrink requested team sizes (`OMP_DYNAMIC`).
    pub dynamic: bool,
    /// Barrier algorithm for all teams.
    pub barrier: BarrierKind,
    /// Force the runtime shard count (`ROMP_SHARDS`, `--shards N` on the
    /// serve binary).  `None` derives shards from the topology handed to
    /// [`crate::Runtime::with_topology`] — one shard per cluster in use —
    /// or runs unsharded when no topology was given.  Values are clamped
    /// to the team size at team construction, so `shards: Some(4)` on a
    /// 2-thread team yields 2 shards.
    pub shards: Option<usize>,
    /// Collect per-worker CPU-time profiles for the virtual-time engine.
    pub profiling: bool,
    /// How long one MRAPI lock acquisition may wait before the runtime
    /// emits a deadlock report (holder node, lock key, wait time) and
    /// retries the wait (`ROMP_LOCK_TIMEOUT_MS`).
    pub lock_timeout: Duration,
    /// Bounded exponential backoff for transient MRAPI statuses.
    pub retry: RetryPolicy,
    /// Seed a deterministic MRAPI fault-injection schedule
    /// ([`mca_mrapi::FaultPlan::from_seed`]) on the MCA backend — the chaos
    /// harness's knob.  `None` (the default) installs no probe; the native
    /// backend ignores it.
    pub fault_seed: Option<u64>,
    /// Arm the [`romp_trace`] event recorder (`ROMP_TRACE`).  Disarmed
    /// (the default), every trace site is a single relaxed load.
    pub trace: bool,
    /// Where [`crate::Runtime`] writes the chrome://tracing JSON when the
    /// runtime is dropped with tracing armed (`ROMP_TRACE_OUT`).  `None`
    /// keeps the trace in memory for [`crate::Runtime::take_trace`].
    pub trace_out: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            backend: BackendKind::Native,
            num_threads: None,
            runtime_schedule: Schedule::Static { chunk: None },
            dynamic: false,
            barrier: BarrierKind::Centralized,
            shards: None,
            profiling: false,
            lock_timeout: Duration::from_millis(100),
            retry: RetryPolicy::default(),
            fault_seed: None,
            trace: false,
            trace_out: None,
        }
    }
}

impl Config {
    /// Default configuration overlaid with the environment.
    pub fn from_env() -> Self {
        Self::from_vars(|k| std::env::var(k).ok())
    }

    /// Testable core of [`Config::from_env`]: read variables through `get`.
    /// Unparsable values are ignored (libGOMP warns-and-ignores likewise).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = Config::default();
        if let Some(v) = get("ROMP_BACKEND").and_then(|s| BackendKind::parse(&s)) {
            cfg.backend = v;
        }
        if let Some(n) = get("OMP_NUM_THREADS").and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                cfg.num_threads = Some(n);
            }
        }
        if let Some(s) = get("OMP_SCHEDULE").and_then(|s| Schedule::parse(&s)) {
            cfg.runtime_schedule = s;
        }
        if let Some(d) = get("OMP_DYNAMIC") {
            cfg.dynamic = matches!(d.trim().to_ascii_lowercase().as_str(), "true" | "1" | "yes");
        }
        if let Some(ms) = get("ROMP_LOCK_TIMEOUT_MS").and_then(|s| s.trim().parse::<u64>().ok()) {
            if ms > 0 {
                cfg.lock_timeout = Duration::from_millis(ms);
            }
        }
        if let Some(n) = get("ROMP_RETRY_ATTEMPTS").and_then(|s| s.trim().parse::<u32>().ok()) {
            if n > 0 {
                cfg.retry.max_attempts = n;
            }
        }
        if let Some(seed) = get("ROMP_FAULT_SEED").and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse::<u64>().ok(),
            }
        }) {
            cfg.fault_seed = Some(seed);
        }
        if let Some(t) = get("ROMP_TRACE") {
            cfg.trace = matches!(t.trim().to_ascii_lowercase().as_str(), "true" | "1" | "yes");
        }
        if let Some(path) = get("ROMP_TRACE_OUT") {
            let path = path.trim().to_string();
            if !path.is_empty() {
                cfg.trace_out = Some(path);
            }
        }
        if let Some(n) = get("ROMP_SHARDS").and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                cfg.shards = Some(n);
            }
        }
        if let Some(b) = get("ROMP_BARRIER") {
            let b = b.trim().to_ascii_lowercase();
            if b == "centralized" {
                cfg.barrier = BarrierKind::Centralized;
            } else if let Some(rest) = b.strip_prefix("tree") {
                let arity = rest
                    .strip_prefix(':')
                    .and_then(|a| a.parse::<usize>().ok())
                    .filter(|&a| a >= 2)
                    .unwrap_or(4);
                cfg.barrier = BarrierKind::Tree { arity };
            }
        }
        cfg
    }

    /// Builder: set the backend.
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Builder: set the default team size.
    pub fn with_num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builder: set the barrier algorithm.
    pub fn with_barrier(mut self, kind: BarrierKind) -> Self {
        self.barrier = kind;
        self
    }

    /// Builder: force the runtime shard count (overrides any topology).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Builder: enable per-worker CPU profiling.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Builder: set the per-attempt MRAPI lock wait.
    pub fn with_lock_timeout(mut self, t: Duration) -> Self {
        self.lock_timeout = t;
        self
    }

    /// Builder: set the transient-status retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: seed a deterministic MRAPI fault schedule.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Builder: arm (or disarm) the trace recorder.
    ///
    /// ```
    /// use romp::{BackendKind, Config, Runtime};
    /// use romp::trace::{EventKind, Phase};
    ///
    /// let rt = Runtime::with_config(
    ///     Config::default().with_backend(BackendKind::Mca).with_tracing(true),
    /// ).unwrap();
    /// rt.parallel(2, |w| w.barrier());
    /// let trace = rt.take_trace();
    /// assert_eq!(trace.count(EventKind::Region, Phase::Begin), 2);
    /// assert!(trace.balanced(EventKind::Barrier));
    /// ```
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Builder: arm tracing and write the chrome trace to `path` when the
    /// runtime is dropped.
    pub fn with_trace_out(mut self, path: impl Into<String>) -> Self {
        self.trace = true;
        self.trace_out = Some(path.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn default_is_native_auto_sized() {
        let c = Config::default();
        assert_eq!(c.backend, BackendKind::Native);
        assert_eq!(c.num_threads, None);
        assert!(!c.dynamic);
    }

    #[test]
    fn env_overlay() {
        let c = Config::from_vars(vars(&[
            ("ROMP_BACKEND", "mca"),
            ("OMP_NUM_THREADS", "12"),
            ("OMP_SCHEDULE", "dynamic,4"),
            ("OMP_DYNAMIC", "true"),
            ("ROMP_BARRIER", "tree:8"),
            ("ROMP_SHARDS", "3"),
        ]));
        assert_eq!(c.backend, BackendKind::Mca);
        assert_eq!(c.num_threads, Some(12));
        assert_eq!(c.runtime_schedule, Schedule::Dynamic { chunk: 4 });
        assert!(c.dynamic);
        assert_eq!(c.barrier, BarrierKind::Tree { arity: 8 });
        assert_eq!(c.shards, Some(3));
    }

    #[test]
    fn bad_values_ignored() {
        let c = Config::from_vars(vars(&[
            ("ROMP_BACKEND", "fortran"),
            ("OMP_NUM_THREADS", "0"),
            ("OMP_SCHEDULE", "chaotic"),
            ("ROMP_BARRIER", "tree:1"),
            ("ROMP_SHARDS", "0"),
        ]));
        assert_eq!(c.backend, BackendKind::Native);
        assert_eq!(c.num_threads, None);
        assert_eq!(c.shards, None, "zero shards ignored");
        assert_eq!(c.runtime_schedule, Schedule::Static { chunk: None });
        assert_eq!(
            c.barrier,
            BarrierKind::Tree { arity: 4 },
            "bad arity falls back to 4"
        );
    }

    #[test]
    fn fault_and_recovery_vars() {
        let c = Config::from_vars(vars(&[
            ("ROMP_LOCK_TIMEOUT_MS", "250"),
            ("ROMP_RETRY_ATTEMPTS", "3"),
            ("ROMP_FAULT_SEED", "0xC0FFEE"),
        ]));
        assert_eq!(c.lock_timeout, Duration::from_millis(250));
        assert_eq!(c.retry.max_attempts, 3);
        assert_eq!(c.fault_seed, Some(0xC0FFEE));
        let d = Config::from_vars(vars(&[("ROMP_FAULT_SEED", "12345")]));
        assert_eq!(d.fault_seed, Some(12345));
        assert_eq!(d.lock_timeout, Duration::from_millis(100), "default");
    }

    #[test]
    fn trace_vars() {
        let c = Config::from_vars(vars(&[
            ("ROMP_TRACE", "1"),
            ("ROMP_TRACE_OUT", "/tmp/romp-trace.json"),
        ]));
        assert!(c.trace);
        assert_eq!(c.trace_out.as_deref(), Some("/tmp/romp-trace.json"));
        let d = Config::from_vars(vars(&[("ROMP_TRACE", "off"), ("ROMP_TRACE_OUT", "  ")]));
        assert!(!d.trace);
        assert_eq!(d.trace_out, None, "blank path ignored");
        let e = Config::default().with_trace_out("x.json");
        assert!(e.trace, "with_trace_out arms tracing");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_delay(1), Duration::from_micros(50));
        assert_eq!(r.backoff_delay(2), Duration::from_micros(100));
        assert_eq!(r.backoff_delay(3), Duration::from_micros(200));
        assert_eq!(r.backoff_delay(30), r.max_delay, "capped");
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_backend(BackendKind::Mca)
            .with_num_threads(6)
            .with_barrier(BarrierKind::Tree { arity: 2 })
            .with_shards(2)
            .with_profiling(true);
        assert_eq!(c.backend, BackendKind::Mca);
        assert_eq!(c.num_threads, Some(6));
        assert_eq!(c.shards, Some(2));
        assert!(c.profiling);
    }
}
