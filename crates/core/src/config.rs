//! Runtime configuration — the OpenMP internal control variables (ICVs).
//!
//! Honoured environment variables, matching libGOMP where one exists:
//!
//! | variable           | meaning                                   |
//! |--------------------|-------------------------------------------|
//! | `OMP_NUM_THREADS`  | default team size                         |
//! | `OMP_SCHEDULE`     | schedule for `Schedule::Runtime` loops    |
//! | `OMP_DYNAMIC`      | allow the runtime to shrink teams         |
//! | `ROMP_BACKEND`     | `native` or `mca` (reproduction's switch) |
//! | `ROMP_BARRIER`     | `centralized` or `tree[:arity]`           |

use crate::backend::BackendKind;
use crate::barrier::BarrierKind;
use crate::schedule::Schedule;

/// Construction-time configuration for a [`crate::Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Which backend provides threads/locks/memory/metadata.
    pub backend: BackendKind,
    /// Default team size; `None` means "ask the backend for the number of
    /// online processors" (the paper's §5B.4 metadata path).
    pub num_threads: Option<usize>,
    /// The `schedule(runtime)` schedule (`OMP_SCHEDULE`).
    pub runtime_schedule: Schedule,
    /// Whether the runtime may shrink requested team sizes (`OMP_DYNAMIC`).
    pub dynamic: bool,
    /// Barrier algorithm for all teams.
    pub barrier: BarrierKind,
    /// Collect per-worker CPU-time profiles for the virtual-time engine.
    pub profiling: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            backend: BackendKind::Native,
            num_threads: None,
            runtime_schedule: Schedule::Static { chunk: None },
            dynamic: false,
            barrier: BarrierKind::Centralized,
            profiling: false,
        }
    }
}

impl Config {
    /// Default configuration overlaid with the environment.
    pub fn from_env() -> Self {
        Self::from_vars(|k| std::env::var(k).ok())
    }

    /// Testable core of [`Config::from_env`]: read variables through `get`.
    /// Unparsable values are ignored (libGOMP warns-and-ignores likewise).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = Config::default();
        if let Some(v) = get("ROMP_BACKEND").and_then(|s| BackendKind::parse(&s)) {
            cfg.backend = v;
        }
        if let Some(n) = get("OMP_NUM_THREADS").and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                cfg.num_threads = Some(n);
            }
        }
        if let Some(s) = get("OMP_SCHEDULE").and_then(|s| Schedule::parse(&s)) {
            cfg.runtime_schedule = s;
        }
        if let Some(d) = get("OMP_DYNAMIC") {
            cfg.dynamic = matches!(d.trim().to_ascii_lowercase().as_str(), "true" | "1" | "yes");
        }
        if let Some(b) = get("ROMP_BARRIER") {
            let b = b.trim().to_ascii_lowercase();
            if b == "centralized" {
                cfg.barrier = BarrierKind::Centralized;
            } else if let Some(rest) = b.strip_prefix("tree") {
                let arity = rest
                    .strip_prefix(':')
                    .and_then(|a| a.parse::<usize>().ok())
                    .filter(|&a| a >= 2)
                    .unwrap_or(4);
                cfg.barrier = BarrierKind::Tree { arity };
            }
        }
        cfg
    }

    /// Builder: set the backend.
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Builder: set the default team size.
    pub fn with_num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builder: set the barrier algorithm.
    pub fn with_barrier(mut self, kind: BarrierKind) -> Self {
        self.barrier = kind;
        self
    }

    /// Builder: enable per-worker CPU profiling.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn default_is_native_auto_sized() {
        let c = Config::default();
        assert_eq!(c.backend, BackendKind::Native);
        assert_eq!(c.num_threads, None);
        assert!(!c.dynamic);
    }

    #[test]
    fn env_overlay() {
        let c = Config::from_vars(vars(&[
            ("ROMP_BACKEND", "mca"),
            ("OMP_NUM_THREADS", "12"),
            ("OMP_SCHEDULE", "dynamic,4"),
            ("OMP_DYNAMIC", "true"),
            ("ROMP_BARRIER", "tree:8"),
        ]));
        assert_eq!(c.backend, BackendKind::Mca);
        assert_eq!(c.num_threads, Some(12));
        assert_eq!(c.runtime_schedule, Schedule::Dynamic { chunk: 4 });
        assert!(c.dynamic);
        assert_eq!(c.barrier, BarrierKind::Tree { arity: 8 });
    }

    #[test]
    fn bad_values_ignored() {
        let c = Config::from_vars(vars(&[
            ("ROMP_BACKEND", "fortran"),
            ("OMP_NUM_THREADS", "0"),
            ("OMP_SCHEDULE", "chaotic"),
            ("ROMP_BARRIER", "tree:1"),
        ]));
        assert_eq!(c.backend, BackendKind::Native);
        assert_eq!(c.num_threads, None);
        assert_eq!(c.runtime_schedule, Schedule::Static { chunk: None });
        assert_eq!(
            c.barrier,
            BarrierKind::Tree { arity: 4 },
            "bad arity falls back to 4"
        );
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_backend(BackendKind::Mca)
            .with_num_threads(6)
            .with_barrier(BarrierKind::Tree { arity: 2 })
            .with_profiling(true);
        assert_eq!(c.backend, BackendKind::Mca);
        assert_eq!(c.num_threads, Some(6));
        assert!(c.profiling);
    }
}
