//! The per-thread region context: every OpenMP construct lives here.
//!
//! A [`Worker`] is what the region closure receives — the analogue of the
//! implicit context an OpenMP compiler threads through outlined functions.
//! It exposes the constructs the paper's Table I measures (`parallel` is the
//! runtime's job; `for`, `barrier`, `single`, `critical`, `reduction` are
//! here) plus `master`, `sections`, `ordered`, copyprivate `single`, generic
//! reductions, and explicit tasks with `taskwait`.
//!
//! Construct identity: constructs that need shared state (dynamic/guided
//! loops, `single`, `sections`, generic reductions) draw a per-worker
//! sequence number.  OpenMP requires every team member to encounter
//! worksharing constructs in the same order, so equal sequence numbers on
//! different workers name the same construct — the same invariant libGOMP's
//! `work_share` chaining relies on.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::runtime::RtInner;
use crate::schedule::{guided_chunk, static_block, static_chunk_starts, Schedule};
use crate::team::{ConstructState, TeamShared, REDUCE_STRIDE};

/// FNV-1a over `bytes` — stable tag for named criticals in trace events.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Reduction combiners for the word-typed fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `+` (wrapping for integers).
    Sum,
    /// `*` (wrapping for integers).
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND (integers only).
    BitAnd,
    /// Bitwise OR (integers only).
    BitOr,
    /// Bitwise XOR (integers only).
    BitXor,
}

impl ReduceOp {
    fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::BitAnd => a & b,
            ReduceOp::BitOr => a | b,
            ReduceOp::BitXor => a ^ b,
        }
    }

    fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            _ => panic!("bitwise reduction ops are integer-only"),
        }
    }

    /// Identity element for u64.
    pub fn identity_u64(self) -> u64 {
        match self {
            ReduceOp::Sum | ReduceOp::BitOr | ReduceOp::BitXor => 0,
            ReduceOp::Prod => 1,
            ReduceOp::Min | ReduceOp::BitAnd => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

/// A team member's handle inside a parallel region.
pub struct Worker<'a> {
    team: &'a Arc<TeamShared>,
    rt: &'a RtInner,
    tid: usize,
    seq: Cell<u64>,
}

impl<'a> Worker<'a> {
    pub(crate) fn new(team: &'a Arc<TeamShared>, rt: &'a RtInner, tid: usize) -> Self {
        Worker {
            team,
            rt,
            tid,
            seq: Cell::new(0),
        }
    }

    /// `omp_get_thread_num`.
    #[inline]
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// `omp_get_num_threads`.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.team.size
    }

    /// Whether this member is the master (thread 0).
    #[inline]
    pub fn is_master(&self) -> bool {
        self.tid == 0
    }

    /// Which runtime shard this member belongs to (always 0 on an
    /// unsharded runtime).
    ///
    /// ```
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    /// use romp::{Config, Runtime};
    ///
    /// let rt = Runtime::with_config(Config::default().with_shards(2)).unwrap();
    /// let max_shard = AtomicUsize::new(0);
    /// rt.parallel(4, |w| {
    ///     assert!(w.shard_num() < w.num_shards());
    ///     max_shard.fetch_max(w.shard_num(), Ordering::Relaxed);
    /// });
    /// assert_eq!(max_shard.into_inner(), 1, "4 members span both shards");
    /// ```
    #[inline]
    pub fn shard_num(&self) -> usize {
        self.team.layout.shard_of(self.tid)
    }

    /// How many shards this member's team is split into.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.team.layout.num_shards()
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Fetch-or-create the shared state for construct `key` — a lock-free
    /// construct-ring lookup (see [`crate::team::ConstructRing`]); no team
    /// lock on any worksharing fast path.
    fn construct(&self, key: u64, init: impl FnOnce() -> ConstructState) -> Arc<ConstructState> {
        self.team.construct(self.tid, key, init)
    }

    /// Mark this member done with construct `key`; the last one releases
    /// the ring slot.
    fn construct_done(&self, key: u64, state: &Arc<ConstructState>) {
        self.team.construct_done(key, state);
    }

    // ------------------------------------------------------------------
    // barrier
    // ------------------------------------------------------------------

    /// `#pragma omp barrier` — also a task scheduling point: queued explicit
    /// tasks are guaranteed complete when the barrier returns.
    ///
    /// Barriers are also *cancellation points*: a member whose team has
    /// been cancelled unwinds here instead of arriving, both on entry (the
    /// common case) and after release (a member woken by a broken barrier).
    pub fn barrier(&self) {
        self.team.cancel_checkpoint();
        self.barrier_quiet();
        self.team.cancel_checkpoint();
    }

    /// The barrier body without cancellation points — never unwinds.  The
    /// end-of-region epilogue uses this directly: nothing outside the
    /// region's `catch_unwind` net may panic.
    pub(crate) fn barrier_quiet(&self) {
        if self.tid == 0 {
            self.team.counters.barriers.fetch_add(1, Ordering::Relaxed);
            self.rt.stats.activity.fetch_add(1, Ordering::Relaxed);
        }
        self.team
            .tracer
            .begin(romp_trace::EventKind::Barrier, self.tid as u32, 0);
        self.team.drain_tasks(self.tid);
        let team = self.team;
        let tid = self.tid;
        self.team.barrier.wait_idle(tid, || team.drain_tasks(tid));
        // Tasks spawned by tasks during the wait: finish them before
        // proceeding, so the OpenMP completion guarantee holds.  A
        // cancelled team forfeits that guarantee — unwound members will
        // never run their share, so waiting would hang.
        while self.team.outstanding_tasks.load(Ordering::Acquire) > 0 {
            if self.team.cancel_pending() {
                break;
            }
            if !self.team.drain_tasks(tid) {
                std::thread::yield_now();
            }
        }
        self.team
            .tracer
            .end(romp_trace::EventKind::Barrier, self.tid as u32, 0);
    }

    // ------------------------------------------------------------------
    // worksharing loops
    // ------------------------------------------------------------------

    fn resolve(&self, sched: Schedule) -> Schedule {
        match sched {
            Schedule::Runtime => match self.rt.cfg.runtime_schedule {
                Schedule::Runtime => Schedule::Static { chunk: None },
                other => other,
            },
            Schedule::Auto => Schedule::Static { chunk: None },
            other => other,
        }
    }

    /// Worksharing loop over `range`, chunk-at-a-time, **no implicit
    /// barrier** (`nowait`).  The primitive the other loop forms wrap;
    /// kernels that want slice access use it directly.
    pub fn for_chunks_nowait(
        &self,
        range: Range<u64>,
        sched: Schedule,
        mut f: impl FnMut(Range<u64>),
    ) {
        if self.tid == 0 {
            self.team.counters.loops.fetch_add(1, Ordering::Relaxed);
            self.rt.stats.activity.fetch_add(1, Ordering::Relaxed);
        }
        self.team.cancel_checkpoint();
        let n = range.end.saturating_sub(range.start);
        let nthreads = self.team.size;
        match self.resolve(sched) {
            Schedule::Static { chunk: None } | Schedule::Auto | Schedule::Runtime => {
                let (s, e) = static_block(n, nthreads, self.tid);
                if s < e {
                    f(range.start + s..range.start + e);
                }
            }
            Schedule::Static { chunk: Some(c) } => {
                for (s, e) in static_chunk_starts(n, c, nthreads, self.tid) {
                    f(range.start + s..range.start + e);
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1) as u64;
                let key = self.next_seq();
                let state = self.construct(key, || ConstructState::new(range.start, n));
                loop {
                    self.team.cancel_checkpoint();
                    let s = state.cursor.fetch_add(chunk, Ordering::AcqRel);
                    if s >= range.end {
                        break;
                    }
                    f(s..(s + chunk).min(range.end));
                }
                self.construct_done(key, &state);
            }
            Schedule::Guided { chunk } => {
                let key = self.next_seq();
                let state = self.construct(key, || ConstructState::new(range.start, n));
                loop {
                    self.team.cancel_checkpoint();
                    let rem = state.remaining.load(Ordering::Acquire);
                    if rem == 0 {
                        break;
                    }
                    let take = guided_chunk(rem, nthreads, chunk);
                    if state
                        .remaining
                        .compare_exchange(rem, rem - take, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    let s = state.cursor.fetch_add(take, Ordering::AcqRel);
                    f(s..s + take);
                }
                self.construct_done(key, &state);
            }
        }
    }

    /// Worksharing loop, one call per iteration, with the implicit
    /// end-of-loop barrier (`#pragma omp for`).
    pub fn for_range(&self, range: Range<u64>, sched: Schedule, mut f: impl FnMut(u64)) {
        self.for_chunks_nowait(range, sched, |chunk| {
            for i in chunk {
                f(i);
            }
        });
        self.barrier();
    }

    /// `#pragma omp for nowait`.
    pub fn for_range_nowait(&self, range: Range<u64>, sched: Schedule, mut f: impl FnMut(u64)) {
        self.for_chunks_nowait(range, sched, |chunk| {
            for i in chunk {
                f(i);
            }
        });
    }

    /// `collapse(2)` worksharing: the Cartesian product `outer × inner` is
    /// flattened into one iteration space and workshared under `sched`;
    /// the body receives `(i, j)`.  Implicit end barrier.
    pub fn for_range_2d(
        &self,
        outer: Range<u64>,
        inner: Range<u64>,
        sched: Schedule,
        mut f: impl FnMut(u64, u64),
    ) {
        let ilen = inner.end.saturating_sub(inner.start);
        let olen = outer.end.saturating_sub(outer.start);
        let total = olen.saturating_mul(ilen);
        self.for_chunks_nowait(0..total, sched, |chunk| {
            for flat in chunk {
                let i = outer.start + flat / ilen.max(1);
                let j = inner.start + flat % ilen.max(1);
                f(i, j);
            }
        });
        self.barrier();
    }

    /// Ordered worksharing loop: `body` receives each owned iteration index;
    /// inside it, [`Worker::ordered`] blocks until every lower iteration's
    /// ordered block has run (`#pragma omp for ordered`).
    pub fn for_range_ordered(&self, range: Range<u64>, sched: Schedule, body: impl Fn(u64)) {
        self.barrier();
        if self.tid == 0 {
            *self.team.ordered_cursor.lock() = range.start;
        }
        self.barrier();
        self.for_chunks_nowait(range.clone(), sched, |chunk| {
            for i in chunk {
                body(i);
            }
        });
        self.barrier();
    }

    /// The `#pragma omp ordered` block for iteration `index` (use inside
    /// [`Worker::for_range_ordered`]).
    pub fn ordered<R>(&self, index: u64, f: impl FnOnce() -> R) -> R {
        let mut cur = self.team.ordered_cursor.lock();
        while *cur != index {
            // Bounded wait with a cancellation point: a lower iteration's
            // owner may have unwound and will never notify.
            self.team.cancel_checkpoint();
            self.team
                .ordered_cv
                .wait_for(&mut cur, std::time::Duration::from_millis(1));
        }
        let out = f();
        *cur = index + 1;
        drop(cur);
        self.team.ordered_cv.notify_all();
        out
    }

    // ------------------------------------------------------------------
    // single / master / sections
    // ------------------------------------------------------------------

    /// `#pragma omp single` (with the implicit barrier): exactly one member
    /// runs `f`; returns `Some` on that member.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let out = self.single_nowait(f);
        self.barrier();
        out
    }

    /// `#pragma omp single nowait`.
    pub fn single_nowait<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let key = self.next_seq();
        let state = self.construct(key, || ConstructState::new(0, 0));
        let won = state
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        let out = if won {
            self.team.counters.singles.fetch_add(1, Ordering::Relaxed);
            Some(f())
        } else {
            None
        };
        self.construct_done(key, &state);
        out
    }

    /// `single copyprivate`: one member computes the value, everyone
    /// receives a clone (two barriers, like libGOMP's implementation).
    pub fn single_copy<T: Clone + Send + 'static>(&self, f: impl FnOnce() -> T) -> T {
        let key = self.next_seq();
        let state = self.construct(key, || ConstructState::new(0, 0));
        let won = state
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            self.team.counters.singles.fetch_add(1, Ordering::Relaxed);
            *state.stage.lock() = Some(Box::new(f()));
        }
        self.barrier();
        let value = state
            .stage
            .lock()
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .expect("copyprivate stage must hold the produced value")
            .clone();
        self.barrier();
        self.construct_done(key, &state);
        value
    }

    /// `#pragma omp master`: runs only on thread 0, no barrier.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.tid == 0 {
            Some(f())
        } else {
            None
        }
    }

    /// `#pragma omp sections`: `n` section bodies indexed 0..n, distributed
    /// dynamically; implicit end barrier.
    pub fn sections(&self, n: usize, f: impl Fn(usize)) {
        let key = self.next_seq();
        let state = self.construct(key, || ConstructState::new(0, n as u64));
        loop {
            self.team.cancel_checkpoint();
            let i = state.cursor.fetch_add(1, Ordering::AcqRel);
            if i >= n as u64 {
                break;
            }
            f(i as usize);
        }
        self.construct_done(key, &state);
        self.barrier();
    }

    // ------------------------------------------------------------------
    // critical
    // ------------------------------------------------------------------

    /// `#pragma omp critical(name)` — one global lock per name, provided by
    /// the backend (MRAPI mutexes under the MCA backend; §5B.3).
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        // Cancellation point *before* acquisition only: never unwind while
        // holding the lock, and never between acquire and release.
        self.team.cancel_checkpoint();
        self.team.counters.criticals.fetch_add(1, Ordering::Relaxed);
        self.rt.stats.activity.fetch_add(1, Ordering::Relaxed);
        // The span covers acquisition + body, tagged with a stable hash of
        // the critical's name so traces can tell sections apart.
        let name_tag = fnv1a(name.as_bytes());
        self.team
            .tracer
            .begin(romp_trace::EventKind::Critical, self.tid as u32, name_tag);
        let lock = self.rt.critical_lock(name);
        lock.lock();
        let out = f();
        // The guard was held; residual unlock errors were already retried
        // inside the lock and must not unwind user code.
        let _ = lock.unlock();
        self.team
            .tracer
            .end(romp_trace::EventKind::Critical, self.tid as u32, name_tag);
        out
    }

    // ------------------------------------------------------------------
    // reductions
    // ------------------------------------------------------------------

    fn reduce_bits(&self, bits: u64, combine: impl Fn(u64, u64) -> u64) -> u64 {
        // Contribution slots are strided so each member writes its own
        // 128-byte line pair; without the stride, 16 members share two
        // lines and the stores ping-pong them around the team.
        let words = self.team.reduce_words.words();
        let result = self.team.size * REDUCE_STRIDE;
        words[self.tid * REDUCE_STRIDE].store(bits, Ordering::Release);
        self.barrier();
        if self.tid == 0 {
            let mut acc = words[0].load(Ordering::Acquire);
            for t in 1..self.team.size {
                acc = combine(acc, words[t * REDUCE_STRIDE].load(Ordering::Acquire));
            }
            words[result].store(acc, Ordering::Release);
        }
        self.barrier();
        words[result].load(Ordering::Acquire)
    }

    /// `reduction(op: f64)` — every member contributes `value`, every member
    /// receives the combined result.  The scratch buffer is backend shared
    /// memory (the paper's `gomp_malloc`-through-MRAPI path).
    pub fn reduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        f64::from_bits(self.reduce_bits(value.to_bits(), |a, b| {
            op.apply_f64(f64::from_bits(a), f64::from_bits(b)).to_bits()
        }))
    }

    /// `reduction(op: u64)`.
    pub fn reduce_u64(&self, value: u64, op: ReduceOp) -> u64 {
        self.reduce_bits(value, |a, b| op.apply_u64(a, b))
    }

    /// Generic reduction over any `Clone + Send` type with a caller-supplied
    /// associative combiner.  Combination order is unspecified (as in
    /// OpenMP).
    pub fn reduce_with<T: Clone + Send + 'static>(
        &self,
        value: T,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let key = self.next_seq();
        let state = self.construct(key, || ConstructState::new(0, 0));
        {
            let mut stage = state.stage.lock();
            *stage = Some(match stage.take() {
                None => Box::new(value),
                Some(acc) => {
                    let acc = *acc.downcast::<T>().expect("homogeneous reduction type");
                    Box::new(combine(acc, value))
                }
            });
        }
        self.barrier();
        let out = state
            .stage
            .lock()
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .expect("reduction stage holds the accumulator")
            .clone();
        self.barrier();
        self.construct_done(key, &state);
        out
    }

    // ------------------------------------------------------------------
    // tasks
    // ------------------------------------------------------------------

    /// `#pragma omp task`: queue `f` for execution by any team member at the
    /// next task scheduling point (barriers, `taskwait`).  Requires
    /// `'static` captures (move `Arc`s/atomics in), since tasks may run on
    /// another member's stack.
    pub fn task(&self, f: impl FnOnce() + Send + 'static) {
        self.team.push_task(self.tid, Box::new(f));
    }

    /// [`Worker::task`] with an explicit affinity key: the key hashes to
    /// a home shard ([`mca_platform::ShardLayout::shard_for_key`]) and
    /// the task is queued there — on this member's own ring when it
    /// already sits in the home shard, into the home shard's injector
    /// otherwise.  Tasks sharing a key therefore share a cache domain;
    /// other shards only run them by cross-shard stealing once their own
    /// work is dry.  On an unsharded runtime this is exactly `task`.
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU64, Ordering};
    /// use std::sync::Arc;
    /// use romp::{Config, Runtime};
    ///
    /// let rt = Runtime::with_config(Config::default().with_shards(4)).unwrap();
    /// let ran = Arc::new(AtomicU64::new(0));
    /// rt.parallel(8, |w| {
    ///     if w.is_master() {
    ///         for key in 0..16u64 {
    ///             let ran = Arc::clone(&ran);
    ///             w.task_with_affinity(key, move || {
    ///                 ran.fetch_add(1, Ordering::Relaxed);
    ///             });
    ///         }
    ///     }
    ///     w.barrier(); // task scheduling point: all 16 complete here
    /// });
    /// assert_eq!(ran.load(Ordering::Relaxed), 16);
    /// ```
    pub fn task_with_affinity(&self, key: u64, f: impl FnOnce() + Send + 'static) {
        self.team.push_task_keyed(self.tid, key, Box::new(f));
    }

    /// `#pragma omp taskloop`: split `range` into tasks of `grain`
    /// iterations each, queue them for the team, and wait for completion.
    /// The body is shared by all tasks (wrapped in an `Arc`), so it needs
    /// only `Fn` — but like [`Worker::task`] it must be `'static`.
    pub fn taskloop(&self, range: Range<u64>, grain: u64, f: impl Fn(u64) + Send + Sync + 'static) {
        let grain = grain.max(1);
        let f = std::sync::Arc::new(f);
        let mut start = range.start;
        while start < range.end {
            let end = (start + grain).min(range.end);
            let f = std::sync::Arc::clone(&f);
            self.task(move || {
                for i in start..end {
                    f(i);
                }
            });
            start = end;
        }
        self.taskwait();
    }

    /// `#pragma omp taskwait`: run/await queued tasks until none remain.
    /// Pops this member's own ring first, then steals, so the common case
    /// (wait for tasks you just queued) never touches a shared line.
    pub fn taskwait(&self) {
        while self.team.outstanding_tasks.load(Ordering::Acquire) > 0 {
            self.team.cancel_checkpoint();
            if !self.team.drain_tasks(self.tid) {
                std::thread::yield_now();
            }
        }
    }

    // ------------------------------------------------------------------
    // memory & environment
    // ------------------------------------------------------------------

    /// `#pragma omp flush`: a sequentially-consistent memory fence.  All of
    /// this runtime's synchronization already carries acquire/release
    /// edges; `flush` exists for code ported from OpenMP that relies on
    /// explicit fences between plain (atomic) accesses.
    pub fn flush(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// `omp_get_num_procs`: the backend's online-processor count (the
    /// MRAPI metadata value on the MCA backend, §5B.4).
    pub fn num_procs(&self) -> usize {
        self.rt.backend().online_processors()
    }
}

impl std::fmt::Debug for Worker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("tid", &self.tid)
            .field("team", &self.team.size)
            .finish()
    }
}
