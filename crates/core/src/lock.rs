//! The OpenMP lock API (`omp_init_lock` family).
//!
//! OpenMP exposes explicit locks alongside `critical`; this runtime's locks
//! come from the backend, so on the MCA backend an [`OmpLock`] is an MRAPI
//! mutex — the user-facing face of the §5B.3 mapping.

use std::sync::Arc;

use crate::backend::RegionLock;
use crate::RompError;

/// An explicit OpenMP-style lock.
///
/// Cloning shares the lock.  Prefer [`OmpLock::with`] (RAII-style) over the
/// raw `set`/`unset` pair.
#[derive(Clone)]
pub struct OmpLock {
    inner: Arc<dyn RegionLock>,
}

impl OmpLock {
    pub(crate) fn new(inner: Arc<dyn RegionLock>) -> Self {
        OmpLock { inner }
    }

    /// `omp_set_lock`: acquire, blocking as needed.
    pub fn set(&self) {
        self.inner.lock();
    }

    /// `omp_unset_lock`: release; the caller must hold the lock.  Misuse
    /// (unsetting a lock not held) is silently absorbed, matching the
    /// undefined-but-not-fatal OpenMP behaviour; use
    /// [`OmpLock::try_unset`] to observe it.
    pub fn unset(&self) {
        let _ = self.inner.unlock();
    }

    /// Release, reporting misuse (double unset, stale MRAPI key) as a
    /// recoverable [`RompError`] instead of swallowing it.
    pub fn try_unset(&self) -> Result<(), RompError> {
        self.inner.unlock()
    }

    /// `omp_test_lock`: acquire without blocking; `true` on success.
    pub fn test(&self) -> bool {
        self.inner.try_lock()
    }

    /// Run `f` under the lock.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        self.set();
        let out = f();
        self.unset();
        out
    }
}

impl std::fmt::Debug for OmpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OmpLock")
    }
}

#[cfg(test)]
mod tests {
    use crate::{BackendKind, Runtime};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn lock_api_both_backends() {
        for kind in BackendKind::all() {
            let rt = Runtime::with_backend(kind).unwrap();
            let lock = rt.new_lock();
            lock.set();
            assert!(!lock.test());
            lock.unset();
            assert!(lock.test());
            lock.unset();
        }
    }

    #[test]
    fn lock_protects_team_updates() {
        for kind in BackendKind::all() {
            let rt = Runtime::with_backend(kind).unwrap();
            let lock = rt.new_lock();
            let value = AtomicU64::new(0);
            rt.parallel(4, |_w| {
                for _ in 0..250 {
                    lock.with(|| {
                        // Non-atomic RMW made safe only by the lock.
                        let v = value.load(Ordering::Relaxed);
                        value.store(v + 1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(value.load(Ordering::Relaxed), 1000, "{kind:?}");
        }
    }
}
