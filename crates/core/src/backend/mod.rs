//! The backend abstraction: everything the paper swapped out of libGOMP.
//!
//! The paper's §5B identifies four libGOMP touch-points it reroutes through
//! MCA: worker-thread creation (node management), runtime-internal shared
//! allocation (memory mapping), mutexes (synchronization), and processor
//! discovery (metadata).  [`Backend`] is exactly that seam; the rest of the
//! runtime is backend-agnostic, so measuring `native` against `mca` isolates
//! the cost of the MCA layer — the paper's Table I experiment.

mod mca;
mod native;

pub use mca::McaBackend;
pub use native::NativeBackend;

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::RompError;

/// Which backend a runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Stock-libGOMP analogue: `std::thread` + the runtime's own locks.
    Native,
    /// The paper's MCA-libGOMP: MRAPI nodes, mutexes, shmem, metadata.
    Mca,
}

impl BackendKind {
    /// Parse `"native"` / `"mca"` (case-insensitive), as accepted by the
    /// `ROMP_BACKEND` environment variable.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "native" | "gomp" => Some(BackendKind::Native),
            "mca" | "mrapi" | "mca-gomp" => Some(BackendKind::Mca),
            _ => None,
        }
    }

    /// Both kinds, for test/bench matrices.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Native, BackendKind::Mca]
    }

    /// Display label (`"native"` / `"mca"`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Native => "native",
            BackendKind::Mca => "mca",
        }
    }
}

/// A mutual-exclusion lock supplied by the backend — the `gomp_mutex`
/// replacement seam of §5B.3.
pub trait RegionLock: Send + Sync {
    /// Acquire, blocking as needed.
    fn lock(&self);
    /// Release; caller must hold the lock.
    fn unlock(&self);
    /// Acquire without blocking; `true` on success.
    fn try_lock(&self) -> bool;
}

/// A shared word buffer supplied by the backend — the `gomp_malloc`
/// replacement seam of §5B.2 (reduction scratch, copyprivate staging).
pub trait SharedWords: Send + Sync {
    /// The words; all access is through atomics, so any worker may touch
    /// any word.
    fn words(&self) -> &[AtomicU64];
}

/// Join handle for a pool worker thread.
pub trait WorkerJoin: Send {
    /// Wait for the worker to exit (used at runtime shutdown).
    fn join(self: Box<Self>);
}

/// The services the runtime obtains from its backing layer.
pub trait Backend: Send + Sync + 'static {
    /// Which kind this is.
    fn kind(&self) -> BackendKind;

    /// Short label for reports.
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// How many processors are online — §5B.4's metadata query; sizes the
    /// default team.
    fn online_processors(&self) -> usize;

    /// Spawn a long-lived pool worker running `body` — §5B.1's node
    /// management.  `label` names the thread for diagnostics.
    fn spawn_worker(
        &self,
        label: String,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<Box<dyn WorkerJoin>, RompError>;

    /// A fresh mutual-exclusion lock — §5B.3's synchronization mapping.
    fn new_lock(&self) -> Arc<dyn RegionLock>;

    /// A shared buffer of `words` u64 cells — §5B.2's memory mapping.
    fn alloc_shared_words(&self, words: usize) -> Arc<dyn SharedWords>;

    /// Called once when the runtime shuts down.
    fn shutdown(&self) {}
}

/// Construct a backend of the given kind.
pub fn make_backend(kind: BackendKind) -> Result<Box<dyn Backend>, RompError> {
    match kind {
        BackendKind::Native => Ok(Box::new(NativeBackend::new())),
        BackendKind::Mca => Ok(Box::new(McaBackend::new()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn kind_parsing() {
        assert_eq!(BackendKind::parse("native"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse(" MCA "), Some(BackendKind::Mca));
        assert_eq!(BackendKind::parse("mrapi"), Some(BackendKind::Mca));
        assert_eq!(BackendKind::parse("pthread"), None);
    }

    /// Exercise the full trait surface uniformly for both backends.
    #[test]
    fn backend_contract_matrix() {
        for kind in BackendKind::all() {
            let be = make_backend(kind).unwrap();
            assert_eq!(be.kind(), kind);
            assert!(be.online_processors() >= 1, "{}", be.name());

            // Locks exclude.
            let lock = be.new_lock();
            lock.lock();
            assert!(!lock.try_lock(), "{}: relock must fail", be.name());
            lock.unlock();
            assert!(lock.try_lock());
            lock.unlock();

            // Shared words are shared and atomic.
            let buf = be.alloc_shared_words(4);
            assert_eq!(buf.words().len(), 4);
            buf.words()[2].store(99, Ordering::Release);
            assert_eq!(buf.words()[2].load(Ordering::Acquire), 99);

            // Workers run and join.
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let j = be
                .spawn_worker(
                    "contract-test".into(),
                    Box::new(move || {
                        f2.store(7, Ordering::Release);
                    }),
                )
                .unwrap();
            j.join();
            assert_eq!(flag.load(Ordering::Acquire), 7, "{}", be.name());
            be.shutdown();
        }
    }

    #[test]
    fn mca_backend_reports_board_processors() {
        let be = McaBackend::new().unwrap();
        // The MCA backend sizes teams from the MRAPI metadata tree of the
        // modeled T4240 board: 24 hardware threads.
        assert_eq!(be.online_processors(), 24);
    }
}
