//! The backend abstraction: everything the paper swapped out of libGOMP.
//!
//! The paper's §5B identifies four libGOMP touch-points it reroutes through
//! MCA: worker-thread creation (node management), runtime-internal shared
//! allocation (memory mapping), mutexes (synchronization), and processor
//! discovery (metadata).  [`Backend`] is exactly that seam; the rest of the
//! runtime is backend-agnostic, so measuring `native` against `mca` isolates
//! the cost of the MCA layer — the paper's Table I experiment.

mod mca;
mod native;

pub use mca::{McaBackend, McaOptions};
pub use native::NativeBackend;

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use crate::config::Config;
use crate::RompError;

/// Which backend a runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Stock-libGOMP analogue: `std::thread` + the runtime's own locks.
    Native,
    /// The paper's MCA-libGOMP: MRAPI nodes, mutexes, shmem, metadata.
    Mca,
}

impl BackendKind {
    /// Parse `"native"` / `"mca"` (case-insensitive), as accepted by the
    /// `ROMP_BACKEND` environment variable.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "native" | "gomp" => Some(BackendKind::Native),
            "mca" | "mrapi" | "mca-gomp" => Some(BackendKind::Mca),
            _ => None,
        }
    }

    /// Both kinds, for test/bench matrices.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Native, BackendKind::Mca]
    }

    /// Display label (`"native"` / `"mca"`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Native => "native",
            BackendKind::Mca => "mca",
        }
    }
}

/// One over-long MRAPI lock wait, as reported by the MCA backend: which
/// node held which lock key and how long the waiter had been waiting when
/// the report was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The MRAPI mutex registry key being waited on.
    pub mutex_key: u32,
    /// The MRAPI node holding the mutex at report time (`None` when the
    /// holder released between the timeout and the snapshot).
    pub holder_node: Option<u32>,
    /// Name of the waiting thread.
    pub waiter: String,
    /// Cumulative wait at report time.
    pub waited: Duration,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lock wait: mutex_key={:#x} holder_node={:?} waiter={:?} waited={:?}",
            self.mutex_key, self.holder_node, self.waiter, self.waited
        )
    }
}

/// A mutual-exclusion lock supplied by the backend — the `gomp_mutex`
/// replacement seam of §5B.3.
pub trait RegionLock: Send + Sync {
    /// Acquire, blocking as needed.  Never panics: on the MCA backend a
    /// persistent MRAPI failure degrades the lock to native services
    /// internally, preserving mutual exclusion.
    fn lock(&self);
    /// Release.  Misuse (double unlock, stale key) and MRAPI unlock
    /// failures are reported as `Err`; in every case the caller no longer
    /// holds the lock afterwards.
    fn unlock(&self) -> Result<(), RompError>;
    /// Acquire without blocking; `true` on success.
    fn try_lock(&self) -> bool;
}

/// A shared word buffer supplied by the backend — the `gomp_malloc`
/// replacement seam of §5B.2 (reduction scratch, copyprivate staging).
pub trait SharedWords: Send + Sync {
    /// The words; all access is through atomics, so any worker may touch
    /// any word.
    fn words(&self) -> &[AtomicU64];
}

/// Join handle for a pool worker thread.
pub trait WorkerJoin: Send {
    /// Wait for the worker to exit (used at runtime shutdown).
    fn join(self: Box<Self>);
}

/// The services the runtime obtains from its backing layer.
pub trait Backend: Send + Sync + 'static {
    /// Which kind this is.
    fn kind(&self) -> BackendKind;

    /// Short label for reports.
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// How many processors are online — §5B.4's metadata query; sizes the
    /// default team.
    fn online_processors(&self) -> usize;

    /// Spawn a long-lived pool worker running `body` — §5B.1's node
    /// management.  `label` names the thread for diagnostics.
    fn spawn_worker(
        &self,
        label: String,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<Box<dyn WorkerJoin>, RompError>;

    /// A fresh mutual-exclusion lock — §5B.3's synchronization mapping.
    fn new_lock(&self) -> Result<Arc<dyn RegionLock>, RompError>;

    /// A shared buffer of `words` u64 cells — §5B.2's memory mapping.
    fn alloc_shared_words(&self, words: usize) -> Result<Arc<dyn SharedWords>, RompError>;

    /// The backend to degrade to when this one fails persistently
    /// (MCA→native); `None` means there is no further fallback.
    fn fallback(&self) -> Option<Box<dyn Backend>> {
        None
    }

    /// Whether this backend has recorded a persistent, unrecoverable
    /// failure and should be replaced by [`Backend::fallback`] at the next
    /// region boundary.
    fn poisoned(&self) -> bool {
        false
    }

    /// Externally poison this backend: a supervisor (the serving watchdog's
    /// escalation path) has decided it must be replaced at the next region
    /// boundary, typically because work is wedged inside it.  Returns
    /// whether the backend accepted — `false` for backends with no
    /// fallback to degrade to (the native backend ignores poisoning).
    fn poison(&self, _reason: RompError) -> bool {
        false
    }

    /// The failure that set [`Backend::poisoned`], for the degradation
    /// warning.
    fn failure_reason(&self) -> Option<RompError> {
        None
    }

    /// Drain accumulated over-long lock-wait diagnostics.
    fn take_deadlock_reports(&self) -> Vec<DeadlockReport> {
        Vec::new()
    }

    /// Hand the backend the runtime's tracer so backend internals (MRAPI
    /// calls, lock waits, degradations) can record events and metrics.
    /// Called once from runtime assembly, before any worker spawns.  The
    /// default keeps backends that have nothing extra to report untraced.
    fn attach_tracer(&self, _tracer: &Arc<romp_trace::Tracer>) {}

    /// Called once when the runtime shuts down.
    fn shutdown(&self) {}
}

/// Construct the backend `cfg` asks for, wiring in its recovery policy
/// (lock timeout, retry backoff) and — on the MCA backend — the seeded
/// fault plan, when `cfg.fault_seed` is set.
pub fn make_backend(cfg: &Config) -> Result<Box<dyn Backend>, RompError> {
    match cfg.backend {
        BackendKind::Native => Ok(Box::new(NativeBackend::new())),
        BackendKind::Mca => {
            let system = mca_mrapi::MrapiSystem::new_t4240();
            if let Some(seed) = cfg.fault_seed {
                system.set_fault_probe(Some(Arc::new(mca_mrapi::FaultPlan::from_seed(seed))));
            }
            Ok(Box::new(McaBackend::with_options(
                system,
                mca::McaOptions {
                    lock_timeout: cfg.lock_timeout,
                    retry: cfg.retry,
                },
            )?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn kind_parsing() {
        assert_eq!(BackendKind::parse("native"), Some(BackendKind::Native));
        assert_eq!(BackendKind::parse(" MCA "), Some(BackendKind::Mca));
        assert_eq!(BackendKind::parse("mrapi"), Some(BackendKind::Mca));
        assert_eq!(BackendKind::parse("pthread"), None);
    }

    /// Exercise the full trait surface uniformly for both backends.
    #[test]
    fn backend_contract_matrix() {
        for kind in BackendKind::all() {
            let be = make_backend(&Config::default().with_backend(kind)).unwrap();
            assert_eq!(be.kind(), kind);
            assert!(be.online_processors() >= 1, "{}", be.name());
            assert!(!be.poisoned(), "{}: fresh backend is healthy", be.name());

            // Locks exclude, and double unlock is a recoverable error.
            let lock = be.new_lock().unwrap();
            lock.lock();
            assert!(!lock.try_lock(), "{}: relock must fail", be.name());
            lock.unlock().unwrap();
            assert!(lock.unlock().is_err(), "{}: double unlock errs", be.name());
            assert!(lock.try_lock());
            lock.unlock().unwrap();

            // Shared words are shared and atomic.
            let buf = be.alloc_shared_words(4).unwrap();
            assert_eq!(buf.words().len(), 4);
            buf.words()[2].store(99, Ordering::Release);
            assert_eq!(buf.words()[2].load(Ordering::Acquire), 99);

            // Workers run and join.
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let j = be
                .spawn_worker(
                    "contract-test".into(),
                    Box::new(move || {
                        f2.store(7, Ordering::Release);
                    }),
                )
                .unwrap();
            j.join();
            assert_eq!(flag.load(Ordering::Acquire), 7, "{}", be.name());
            be.shutdown();
        }
    }

    #[test]
    fn mca_backend_reports_board_processors() {
        let be = McaBackend::new().unwrap();
        // The MCA backend sizes teams from the MRAPI metadata tree of the
        // modeled T4240 board: 24 hardware threads.
        assert_eq!(be.online_processors(), 24);
    }
}
