//! The MCA backend — the paper's MCA-libGOMP plumbing.
//!
//! Every service is routed through MRAPI, mirroring §5B:
//!
//! * **Node management** (§5B.1): the backend initializes a master MRAPI
//!   node at construction; each pool worker is created with the
//!   `mrapi_thread_create` extension, registering the worker in the
//!   domain-global database, and is finalized when the pool thread joins;
//! * **Memory mapping** (§5B.2, Listing 3): runtime-internal shared buffers
//!   are MRAPI shared-memory segments created with the `use_malloc`
//!   attribute — the paper's `gomp_malloc` replacement;
//! * **Synchronization** (§5B.3, Listing 4): [`RegionLock`]s are MRAPI
//!   mutexes; lock/unlock run the exact `mrapi_mutex_lock(handle, &key,
//!   timeout, &status)` protocol;
//! * **Metadata** (§5B.4): the online-processor count comes from the MRAPI
//!   resource tree of the modeled board.
//!
//! # Fault model (DESIGN.md §5)
//!
//! No MRAPI status ever panics.  Transient statuses (`Timeout`, key/id
//! clashes) are retried with bounded exponential backoff — id-clash
//! retries pick a fresh key, so two backends racing on a shared system
//! converge instead of failing.  Lock waits are *timed*: an attempt that
//! exceeds [`McaOptions::lock_timeout`] cuts a [`DeadlockReport`] (which
//! node holds which key, how long the waiter has waited) and keeps
//! waiting — pure contention never degrades anything.  A *persistent*
//! failure (invalid handle, memory limit, retry exhaustion) poisons the
//! backend for runtime-level fallback and, on the lock path, flips the
//! individual lock over to a native mutex embedded in it, preserving
//! mutual exclusion through the transition (see [`McaLock`]).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mca_mrapi::shmem::ShmemAttributes;
use mca_mrapi::sync::MutexAttributes;
use mca_mrapi::{
    DomainId, FaultSite, MrapiError, MrapiStatus, MrapiSystem, Node, NodeId, ShmemHandle,
    SiteObserver, WorkerNode,
};
use mca_sync::Mutex as PlMutex;
use romp_trace::{Counter, EventKind, Histogram, Tracer};

use super::{
    Backend, BackendKind, DeadlockReport, NativeBackend, RegionLock, SharedWords, WorkerJoin,
};
use crate::config::RetryPolicy;
use crate::sync::RawMutex;
use crate::RompError;

/// Domain the OpenMP runtime occupies, one per backend instance.
const OMP_DOMAIN: DomainId = DomainId(0x0E0);
/// The master (initial) node id.
const MASTER_NODE: NodeId = NodeId(0);
/// Most deadlock reports retained between drains.
const MAX_REPORTS: usize = 64;

/// Recovery policy for the MCA backend: how long one lock attempt may
/// wait before a [`DeadlockReport`] is cut, and how transient MRAPI
/// statuses are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McaOptions {
    /// Per-attempt MRAPI lock wait before a deadlock report.
    pub lock_timeout: Duration,
    /// Bounded exponential backoff for transient statuses.
    pub retry: RetryPolicy,
}

impl Default for McaOptions {
    fn default() -> Self {
        McaOptions {
            lock_timeout: Duration::from_millis(100),
            retry: RetryPolicy::default(),
        }
    }
}

/// State shared between the backend and every lock it handed out.
struct McaShared {
    lock_timeout: Duration,
    retry: RetryPolicy,
    /// Set on the first persistent failure; the runtime checks it at
    /// region boundaries and swaps in [`Backend::fallback`].
    poisoned: AtomicBool,
    /// The failure that poisoned the backend (first one wins).
    reason: PlMutex<Option<RompError>>,
    /// Over-long lock-wait diagnostics, capped at [`MAX_REPORTS`].
    reports: PlMutex<Vec<DeadlockReport>>,
    /// Whether the one-shot over-long-wait warning has been printed.
    warned: AtomicBool,
    /// Fast gate for `trace`: the hot paths pay one relaxed load when
    /// tracing is disarmed (mirroring the MRAPI fault-probe gate).
    trace_armed: AtomicBool,
    /// Armed-mode instruments, installed by `attach_tracer`.
    trace: PlMutex<Option<Arc<McaTrace>>>,
}

impl McaShared {
    fn poison(&self, err: &RompError) {
        let mut reason = self.reason.lock();
        if reason.is_none() {
            *reason = Some(err.clone());
        }
        drop(reason);
        self.poisoned.store(true, Ordering::Release);
    }

    /// The armed trace instruments, or `None` (one relaxed load) when
    /// tracing is disarmed.
    #[inline]
    fn trace(&self) -> Option<Arc<McaTrace>> {
        if !self.trace_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.trace.lock().clone()
    }
}

/// The MCA backend's armed-mode instruments: the tracer plus pre-resolved
/// metric handles, so hot paths never take the registry's name lookup.
struct McaTrace {
    tracer: Arc<Tracer>,
    /// Lock wait-time distribution, nanoseconds.
    lock_wait: Arc<Histogram>,
    /// Lock-wait timeouts reported (one per `lock_timeout` expiry).
    lock_timeouts: Arc<Counter>,
    /// Transient-status retries across every MRAPI call site.
    retries: Arc<Counter>,
    /// Bytes allocated through MRAPI shared memory.
    shmem_bytes: Arc<Counter>,
    /// Deadlock reports cut (capped copies of `McaShared::reports`).
    deadlocks: Arc<Counter>,
}

impl McaTrace {
    fn new(tracer: &Arc<Tracer>) -> Self {
        let m = tracer.metrics();
        McaTrace {
            tracer: Arc::clone(tracer),
            lock_wait: m.histogram_ns("mca.lock_wait_ns"),
            lock_timeouts: m.counter("mca.lock_timeouts"),
            retries: m.counter("mrapi.retries"),
            shmem_bytes: m.counter("mca.shmem_bytes"),
            deadlocks: m.counter("mca.deadlock_reports"),
        }
    }
}

/// Forwards MRAPI boundary crossings into the trace: every crossing is an
/// [`EventKind::Mrapi`] instant, and an injected failure additionally cuts
/// an [`EventKind::Fault`] instant.
struct McaObserver {
    trace: Arc<McaTrace>,
}

impl SiteObserver for McaObserver {
    fn observe(&self, site: FaultSite, injected: Option<MrapiStatus>) {
        let t = &self.trace.tracer;
        let code = injected.map(|s| s as u64).unwrap_or(u64::MAX);
        t.instant(EventKind::Mrapi, u32::MAX, site.index() as u64, code);
        if let Some(status) = injected {
            t.instant(
                EventKind::Fault,
                u32::MAX,
                site.index() as u64,
                status as u64,
            );
        }
    }
}

/// Statuses worth retrying: timed waits and id clashes (clash retries use
/// a fresh key/id, so they resolve unless the registry is truly wedged).
fn retryable(s: MrapiStatus) -> bool {
    matches!(
        s,
        MrapiStatus::Timeout
            | MrapiStatus::ErrMutexAlreadyLocked
            | MrapiStatus::ErrMutexExists
            | MrapiStatus::ErrShmExists
            | MrapiStatus::ErrNodeInitFailed
    )
}

/// Run `attempt` under the backend's retry policy.  Transient statuses
/// back off exponentially; persistent statuses return immediately as
/// [`RompError::Mrapi`]; running out of attempts returns
/// [`RompError::Exhausted`].  When `shared` is given and tracing is armed,
/// every backed-off retry bumps the `mrapi.retries` counter (`None` only
/// during master initialization, before the shared state exists).
fn with_retries<T>(
    policy: &RetryPolicy,
    op: &'static str,
    shared: Option<&McaShared>,
    mut attempt: impl FnMut() -> Result<T, MrapiError>,
) -> Result<T, RompError> {
    let attempts = policy.max_attempts.max(1);
    let mut last = MrapiError(MrapiStatus::Timeout);
    for n in 1..=attempts {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) if retryable(e.0) => {
                last = e;
                if n < attempts {
                    if let Some(tr) = shared.and_then(|s| s.trace()) {
                        tr.retries.incr();
                    }
                    std::thread::sleep(policy.backoff_delay(n));
                }
            }
            Err(e) => return Err(RompError::Mrapi(e)),
        }
    }
    Err(RompError::Exhausted { op, attempts, last })
}

/// The MCA-libGOMP backend.
pub struct McaBackend {
    system: MrapiSystem,
    master: Node,
    next_node: AtomicU32,
    next_key: AtomicU32,
    shared: Arc<McaShared>,
}

impl McaBackend {
    /// Initialize on a fresh MRAPI system modeling the T4240RDB (each
    /// runtime gets its own domain database, like each process on the
    /// board), with default recovery options.
    pub fn new() -> Result<Self, RompError> {
        Self::on_system(MrapiSystem::new_t4240())
    }

    /// Initialize on a caller-provided MRAPI system (shared-system setups,
    /// tests with other topologies), with default recovery options.
    pub fn on_system(system: MrapiSystem) -> Result<Self, RompError> {
        Self::with_options(system, McaOptions::default())
    }

    /// Initialize with an explicit recovery policy.
    pub fn with_options(system: MrapiSystem, opts: McaOptions) -> Result<Self, RompError> {
        // Master initialization itself retries: a fault plan may inject
        // ErrNodeInitFailed here, and a bounded retry is the difference
        // between a chaos run that starts degraded-to-native and one that
        // never starts at all.
        let master = with_retries(&opts.retry, "mrapi_initialize", None, || {
            system.initialize(OMP_DOMAIN, MASTER_NODE)
        })?;
        Ok(McaBackend {
            system,
            master,
            next_node: AtomicU32::new(1),
            next_key: AtomicU32::new(1),
            shared: Arc::new(McaShared {
                lock_timeout: opts.lock_timeout,
                retry: opts.retry,
                poisoned: AtomicBool::new(false),
                reason: PlMutex::new(None),
                reports: PlMutex::new(Vec::new()),
                warned: AtomicBool::new(false),
                trace_armed: AtomicBool::new(false),
                trace: PlMutex::new(None),
            }),
        })
    }

    /// The master MRAPI node (for tests and diagnostics).
    pub fn master_node(&self) -> &Node {
        &self.master
    }

    fn fresh_key(&self) -> u32 {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }
}

/// Who currently holds an [`McaLock`].
enum HeldBy {
    None,
    /// Held through MRAPI; the key must be returned to `mrapi_mutex_unlock`.
    Mrapi(mca_mrapi::sync::MutexKey),
    /// Held through the embedded native mutex (degraded mode).
    Native,
}

/// Lock is serviced by MRAPI (the normal state).
const MODE_MCA: u8 = 0;
/// Lock has degraded to its embedded native mutex.
const MODE_NATIVE: u8 = 1;

/// An MRAPI-mutex-backed lock, carrying the outstanding lock key as MRAPI
/// requires (Listing 4's `mrapi_key_t`) — plus a one-way escape hatch.
///
/// When MRAPI fails persistently the lock flips `mode` to
/// [`MODE_NATIVE`] and services all later acquisitions from the embedded
/// [`RawMutex`].  Mutual exclusion holds *through* the flip:
///
/// * every MRAPI acquirer bumps `mrapi_holder` (SeqCst RMW) and then
///   re-checks `mode`; if the flip landed first it undoes the MRAPI
///   acquisition and takes the native path instead;
/// * every native acquirer takes the native mutex and then spins until
///   `mrapi_holder` is zero before entering the critical section.
///
/// In the SeqCst total order either the acquirer's increment precedes the
/// flip — then the native locker's drain observes it and waits for the
/// matching decrement — or the flip precedes the mode re-check, and the
/// MRAPI acquirer stands down.  Either way two threads are never inside
/// the critical section at once.
struct McaLock {
    shared: Arc<McaShared>,
    mutex: mca_mrapi::MrapiMutex,
    held: PlMutex<HeldBy>,
    mode: AtomicU8,
    /// Number of threads holding (or briefly over-holding) the MRAPI mutex.
    mrapi_holder: AtomicUsize,
    native: RawMutex,
}

impl McaLock {
    fn new(mutex: mca_mrapi::MrapiMutex, shared: Arc<McaShared>) -> Self {
        McaLock {
            shared,
            mutex,
            held: PlMutex::new(HeldBy::None),
            mode: AtomicU8::new(MODE_MCA),
            mrapi_holder: AtomicUsize::new(0),
            native: RawMutex::new(),
        }
    }

    fn degraded(&self) -> bool {
        self.mode.load(Ordering::SeqCst) == MODE_NATIVE
    }

    /// Flip to native servicing (one-way) and poison the backend.
    #[cold]
    fn degrade(&self, err: &RompError) {
        self.shared.poison(err);
        self.mode.store(MODE_NATIVE, Ordering::SeqCst);
        if let Some(tr) = self.shared.trace() {
            // `a` = the abandoned mutex's key; distinguishes a single-lock
            // degradation from the runtime-level backend swap (a = 0).
            tr.tracer
                .instant(EventKind::Fallback, u32::MAX, self.mutex.key() as u64, 0);
        }
    }

    /// Acquire through the embedded native mutex, draining any MRAPI
    /// holder that slipped in before the mode flip.
    fn lock_native(&self) {
        self.native.lock();
        while self.mrapi_holder.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        *self.held.lock() = HeldBy::Native;
    }

    /// Record one over-long wait; first one per backend also warns.
    #[cold]
    fn note_timeout(&self, waited: Duration) {
        let report = DeadlockReport {
            mutex_key: self.mutex.key(),
            holder_node: self.mutex.holder_node().map(|n| n.0),
            waiter: std::thread::current()
                .name()
                .unwrap_or("<unnamed>")
                .to_string(),
            waited,
        };
        let mut reports = self.shared.reports.lock();
        if reports.len() < MAX_REPORTS {
            reports.push(report.clone());
        }
        drop(reports);
        if let Some(tr) = self.shared.trace() {
            tr.deadlocks.incr();
        }
        if !self.shared.warned.swap(true, Ordering::Relaxed) {
            eprintln!("romp[WARN] backend=mca {report}");
        }
    }
}

impl RegionLock for McaLock {
    fn lock(&self) {
        let tr = self.shared.trace();
        let t0 = tr.as_ref().map(|_| Instant::now());
        let key = self.mutex.key() as u64;
        // True once this acquisition has opened a LockContend span (first
        // timed-out wait); the span closes when the lock is finally taken.
        let mut contended = false;
        // Close out the acquisition in the trace: end any contention span,
        // cut the LockAcquire instant, feed the wait-time histogram.
        let finish = |contended: bool| {
            if let (Some(tr), Some(t0)) = (tr.as_ref(), t0) {
                let wait_ns = t0.elapsed().as_nanos() as u64;
                if contended {
                    tr.tracer.end(EventKind::LockContend, u32::MAX, key);
                }
                tr.tracer
                    .instant(EventKind::LockAcquire, u32::MAX, key, wait_ns);
                tr.lock_wait.record(wait_ns);
            }
        };
        let mut waited = Duration::ZERO;
        let mut failures = 0u32;
        loop {
            if self.degraded() {
                self.lock_native();
                return finish(contended);
            }
            match self.mutex.lock(self.shared.lock_timeout) {
                Ok(k) => {
                    self.mrapi_holder.fetch_add(1, Ordering::SeqCst);
                    if self.degraded() {
                        // The flip landed while we were acquiring: stand
                        // down and take the native path.
                        let _ = self.mutex.unlock(&k);
                        self.mrapi_holder.fetch_sub(1, Ordering::SeqCst);
                        self.lock_native();
                        return finish(contended);
                    }
                    *self.held.lock() = HeldBy::Mrapi(k);
                    return finish(contended);
                }
                // A timed-out wait is contention (or a wedged holder),
                // never a reason to degrade: report and keep waiting.
                // If the holder wedged, its own failed unlock flips the
                // mode and the next iteration goes native.
                Err(MrapiError(MrapiStatus::Timeout))
                | Err(MrapiError(MrapiStatus::ErrMutexAlreadyLocked)) => {
                    waited += self.shared.lock_timeout;
                    if let Some(tr) = tr.as_ref() {
                        if !contended {
                            tr.tracer.begin(EventKind::LockContend, u32::MAX, key);
                            contended = true;
                        }
                        tr.tracer.instant(
                            EventKind::LockTimeout,
                            u32::MAX,
                            key,
                            waited.as_nanos() as u64,
                        );
                        tr.lock_timeouts.incr();
                    }
                    self.note_timeout(waited);
                    // Escalation escape hatch: a supervisor that poisoned
                    // the whole backend (watchdog grace-period expiry) is
                    // declaring the wedge permanent.  Flip this lock to
                    // native; the next iteration takes the handover path,
                    // which still drains `mrapi_holder` before admitting a
                    // native acquirer, so mutual exclusion holds.
                    if self.shared.poisoned.load(Ordering::Acquire) {
                        self.mode.store(MODE_NATIVE, Ordering::SeqCst);
                    }
                }
                Err(e) => {
                    failures += 1;
                    if failures < self.shared.retry.max_attempts {
                        std::thread::sleep(self.shared.retry.backoff_delay(failures));
                    } else {
                        self.degrade(&RompError::Exhausted {
                            op: "mrapi_mutex_lock",
                            attempts: failures,
                            last: e,
                        });
                        self.lock_native();
                        return finish(contended);
                    }
                }
            }
        }
    }

    fn unlock(&self) -> Result<(), RompError> {
        let prev = std::mem::replace(&mut *self.held.lock(), HeldBy::None);
        match prev {
            HeldBy::None => Err(RompError::Lock(MrapiError(MrapiStatus::ErrMutexNotLocked))),
            HeldBy::Native => {
                self.native.unlock();
                Ok(())
            }
            HeldBy::Mrapi(k) => {
                let mut failures = 0u32;
                loop {
                    match self.mutex.unlock(&k) {
                        Ok(()) => {
                            self.mrapi_holder.fetch_sub(1, Ordering::SeqCst);
                            return Ok(());
                        }
                        Err(e) => {
                            failures += 1;
                            if failures < self.shared.retry.max_attempts {
                                std::thread::sleep(self.shared.retry.backoff_delay(failures));
                            } else {
                                // The MRAPI mutex is wedged: abandon it.
                                // Degrading first means every waiter that
                                // times out on the wedged mutex finds the
                                // native path; decrementing the holder
                                // count afterwards releases their drain.
                                let err = RompError::Exhausted {
                                    op: "mrapi_mutex_unlock",
                                    attempts: failures,
                                    last: e,
                                };
                                self.degrade(&err);
                                self.mrapi_holder.fetch_sub(1, Ordering::SeqCst);
                                return Err(err);
                            }
                        }
                    }
                }
            }
        }
    }

    fn try_lock(&self) -> bool {
        if self.degraded() {
            if self.native.try_lock() {
                while self.mrapi_holder.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
                *self.held.lock() = HeldBy::Native;
                return true;
            }
            return false;
        }
        match self.mutex.try_lock() {
            Ok(k) => {
                self.mrapi_holder.fetch_add(1, Ordering::SeqCst);
                if self.degraded() {
                    let _ = self.mutex.unlock(&k);
                    self.mrapi_holder.fetch_sub(1, Ordering::SeqCst);
                    return false;
                }
                *self.held.lock() = HeldBy::Mrapi(k);
                true
            }
            // Contention and injected statuses alike: a failed try_lock
            // is always a legal answer.
            Err(_) => false,
        }
    }
}

/// Shared words carved from an MRAPI shmem segment (heap-backed via the
/// `use_malloc` extension).
struct ShmemWords(ShmemHandle);

impl SharedWords for ShmemWords {
    fn words(&self) -> &[AtomicU64] {
        self.0.as_words()
    }
}

struct McaJoin(WorkerNode<()>);

impl WorkerJoin for McaJoin {
    fn join(self: Box<Self>) {
        let _ = self.0.join();
    }
}

impl Backend for McaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mca
    }

    fn online_processors(&self) -> usize {
        // §5B.4: read the processor count from the MRAPI metadata tree.
        self.master.online_processors().unwrap_or(1)
    }

    fn spawn_worker(
        &self,
        label: String,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<Box<dyn WorkerJoin>, RompError> {
        // A failed creation attempt consumes the closure it was given, so
        // the body lives in a shared slot each attempt's wrapper drains.
        type BodySlot = Arc<PlMutex<Option<Box<dyn FnOnce() + Send>>>>;
        let slot: BodySlot = Arc::new(PlMutex::new(Some(body)));
        let res = with_retries(
            &self.shared.retry,
            "mrapi_thread_create",
            Some(&self.shared),
            || {
                // Fresh node id per attempt: ErrNodeInitFailed means the id
                // was taken (or an injected clash), and ids are never reused.
                let id = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
                let attrs = mca_mrapi::NodeAttributes {
                    affinity_hw_thread: None,
                    name: Some(label.clone()),
                };
                let slot = Arc::clone(&slot);
                self.master
                    .thread_create_with_attrs(id, attrs, move |_node| {
                        if let Some(b) = slot.lock().take() {
                            b()
                        }
                    })
            },
        );
        match res {
            Ok(worker) => Ok(Box::new(McaJoin(worker))),
            Err(e) => {
                self.shared.poison(&e);
                Err(e)
            }
        }
    }

    fn new_lock(&self) -> Result<Arc<dyn RegionLock>, RompError> {
        let res = with_retries(
            &self.shared.retry,
            "mrapi_mutex_create",
            Some(&self.shared),
            || {
                // Fresh key per attempt (clash recovery).
                self.master
                    .mutex_create(0x4000_0000 | self.fresh_key(), &MutexAttributes::default())
            },
        );
        match res {
            Ok(mutex) => Ok(Arc::new(McaLock::new(mutex, Arc::clone(&self.shared)))),
            Err(e) => {
                self.shared.poison(&e);
                Err(e)
            }
        }
    }

    fn alloc_shared_words(&self, words: usize) -> Result<Arc<dyn SharedWords>, RompError> {
        // Listing 3: shm_attr.use_malloc = MCA_TRUE.
        let attrs = ShmemAttributes {
            use_malloc: true,
            ..Default::default()
        };
        let bytes = (words * 8).max(8);
        let res = with_retries(
            &self.shared.retry,
            "mrapi_shmem_create",
            Some(&self.shared),
            || {
                self.master
                    .shmem_create(0x8000_0000 | self.fresh_key(), bytes, &attrs)
            },
        );
        match res {
            Ok(handle) => {
                if let Some(tr) = self.shared.trace() {
                    tr.shmem_bytes.add(bytes as u64);
                }
                Ok(Arc::new(ShmemWords(handle)))
            }
            Err(e) => {
                self.shared.poison(&e);
                Err(e)
            }
        }
    }

    fn fallback(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(NativeBackend::new()))
    }

    fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    fn poison(&self, reason: RompError) -> bool {
        self.shared.poison(&reason);
        true
    }

    fn failure_reason(&self) -> Option<RompError> {
        self.shared.reason.lock().clone()
    }

    fn take_deadlock_reports(&self) -> Vec<DeadlockReport> {
        std::mem::take(&mut *self.shared.reports.lock())
    }

    fn attach_tracer(&self, tracer: &Arc<Tracer>) {
        if !tracer.armed() {
            // Keep the disarmed hot paths at a single relaxed load: no
            // instruments, no MRAPI observer, gate stays cold.
            return;
        }
        let trace = Arc::new(McaTrace::new(tracer));
        *self.shared.trace.lock() = Some(Arc::clone(&trace));
        self.shared.trace_armed.store(true, Ordering::Release);
        // Every MRAPI boundary crossing now lands in the trace, riding the
        // same gated slow path as fault injection.
        self.system
            .set_site_observer(Some(Arc::new(McaObserver { trace })));
    }

    fn shutdown(&self) {
        // Master finalization happens on drop of the last Node clone; the
        // registry entry is removed eagerly here so repeated
        // construct/destroy cycles in one process don't collide.
        if self.master.is_initialized() {
            let _ = self.master.clone().finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_mrapi::{FaultPlan, FaultProbe, FaultSite};

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
        }
    }

    #[test]
    fn workers_register_in_domain_database() {
        let be = McaBackend::new().unwrap();
        let sys = be.system.clone();
        assert_eq!(sys.node_count(OMP_DOMAIN), 1, "master only");
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g2 = Arc::clone(&gate);
        let j = be
            .spawn_worker(
                "w".into(),
                Box::new(move || {
                    g2.wait(); // hold the node alive until counted
                    g2.wait();
                }),
            )
            .unwrap();
        gate.wait();
        assert_eq!(sys.node_count(OMP_DOMAIN), 2, "worker node registered");
        gate.wait();
        j.join();
        assert_eq!(
            sys.node_count(OMP_DOMAIN),
            1,
            "worker node finalized on join"
        );
    }

    #[test]
    fn shared_words_are_malloc_backed_shmem() {
        let be = McaBackend::new().unwrap();
        let before = be.system.simulated_transfer_ns();
        let buf = be.alloc_shared_words(8).unwrap();
        buf.words()[0].store(1, Ordering::Release);
        assert_eq!(
            be.system.simulated_transfer_ns(),
            before,
            "use_malloc path must not charge IPC costs (Listing 3 semantics)"
        );
    }

    #[test]
    fn listing_4_lock_protocol() {
        let be = McaBackend::new().unwrap();
        let lock = be.new_lock().unwrap();
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock().unwrap();
        assert!(lock.try_lock());
        lock.unlock().unwrap();
    }

    #[test]
    fn distinct_locks_do_not_alias() {
        let be = McaBackend::new().unwrap();
        let a = be.new_lock().unwrap();
        let b = be.new_lock().unwrap();
        a.lock();
        assert!(b.try_lock(), "b must be independent of a");
        b.unlock().unwrap();
        a.unlock().unwrap();
    }

    #[test]
    fn shutdown_allows_recreation_on_shared_system() {
        let sys = MrapiSystem::new_t4240();
        let be = McaBackend::on_system(sys.clone()).unwrap();
        be.shutdown();
        // Master slot freed: a second backend can claim it.
        let be2 = McaBackend::on_system(sys).unwrap();
        be2.shutdown();
    }

    #[test]
    fn double_unlock_reports_not_locked() {
        let be = McaBackend::new().unwrap();
        let lock = be.new_lock().unwrap();
        lock.lock();
        lock.unlock().unwrap();
        let err = lock.unlock().unwrap_err();
        assert_eq!(err.status(), Some(MrapiStatus::ErrMutexNotLocked));
        // The lock stays usable after the misuse report.
        lock.lock();
        lock.unlock().unwrap();
        assert!(!be.poisoned(), "misuse is recoverable, not poisoning");
    }

    #[test]
    fn transient_create_faults_are_retried_with_fresh_keys() {
        let sys = MrapiSystem::new_t4240();
        // 20% injected clash rate on both creation sites; the seeded
        // schedule is deterministic, so this test is not flaky.
        let plan = Arc::new(
            FaultPlan::new(0x5EED_0001)
                .with_fail_rate(FaultSite::MutexCreate, 200_000)
                .with_fail_rate(FaultSite::NodeCreate, 200_000),
        );
        sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
        let be = McaBackend::with_options(
            sys,
            McaOptions {
                lock_timeout: Duration::from_millis(50),
                retry: fast_retry(),
            },
        )
        .unwrap();
        for _ in 0..20 {
            let lock = be.new_lock().unwrap();
            lock.lock();
            lock.unlock().unwrap();
        }
        let ran = Arc::new(AtomicU64::new(0));
        let joins: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&ran);
                be.spawn_worker(
                    format!("w{i}"),
                    Box::new(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    }),
                )
                .unwrap()
            })
            .collect();
        for j in joins {
            j.join();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        assert!(!be.poisoned(), "transient faults never poison the backend");
    }

    #[test]
    fn over_long_waits_produce_deadlock_reports() {
        let be = McaBackend::with_options(
            MrapiSystem::new_t4240(),
            McaOptions {
                lock_timeout: Duration::from_millis(2),
                retry: fast_retry(),
            },
        )
        .unwrap();
        let lock = be.new_lock().unwrap();
        lock.lock();
        let l2 = Arc::clone(&lock);
        let waiter = std::thread::Builder::new()
            .name("waiter-1".into())
            .spawn(move || {
                l2.lock();
                l2.unlock().unwrap();
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        lock.unlock().unwrap();
        waiter.join().unwrap();
        let reports = be.take_deadlock_reports();
        assert!(!reports.is_empty(), "over-long wait must be reported");
        let r = &reports[0];
        assert_eq!(r.holder_node, Some(MASTER_NODE.0), "holder identified");
        assert_eq!(r.waiter, "waiter-1");
        assert!(r.waited >= Duration::from_millis(2));
        assert!(!be.poisoned(), "timeouts alone never poison the backend");
        assert!(be.take_deadlock_reports().is_empty(), "drain empties");
    }

    #[test]
    fn persistent_unlock_failure_degrades_lock_but_preserves_exclusion() {
        let sys = MrapiSystem::new_t4240();
        // Every MRAPI unlock fails: the first unlocker wedges the MRAPI
        // mutex, degrades the lock, and all traffic — including threads
        // mid-wait on the wedged mutex — must migrate to the native path
        // without ever breaking mutual exclusion.
        let plan = Arc::new(FaultPlan::new(0x5EED_0002).with_persistent(
            FaultSite::MutexUnlock,
            MrapiStatus::ErrMutexInvalid,
            0,
        ));
        sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
        let be = McaBackend::with_options(
            sys,
            McaOptions {
                lock_timeout: Duration::from_millis(5),
                retry: fast_retry(),
            },
        )
        .unwrap();
        let lock = be.new_lock().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        lock.lock();
                        // Non-atomic read-modify-write: only mutual
                        // exclusion makes the final count exact.
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        let _ = lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400, "exclusion preserved");
        assert!(be.poisoned(), "persistent failure poisons the backend");
        assert!(
            be.failure_reason().is_some(),
            "the poisoning failure is recorded"
        );
        // The degraded lock keeps working.
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock().unwrap();
    }

    #[test]
    fn persistent_create_failure_poisons_for_fallback() {
        let sys = MrapiSystem::new_t4240();
        let plan = Arc::new(FaultPlan::new(0x5EED_0003).with_persistent(
            FaultSite::ShmemCreate,
            MrapiStatus::ErrMemLimit,
            0,
        ));
        sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
        let be = McaBackend::with_options(
            sys,
            McaOptions {
                lock_timeout: Duration::from_millis(50),
                retry: fast_retry(),
            },
        )
        .unwrap();
        let err = match be.alloc_shared_words(4) {
            Ok(_) => panic!("allocation must fail under the persistent fault"),
            Err(e) => e,
        };
        assert_eq!(err.status(), Some(MrapiStatus::ErrMemLimit));
        assert!(be.poisoned());
        let fb = be.fallback().expect("mca degrades to native");
        assert_eq!(fb.kind(), BackendKind::Native);
        assert!(fb.alloc_shared_words(4).is_ok(), "fallback serves the op");
    }
}
