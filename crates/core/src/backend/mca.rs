//! The MCA backend — the paper's MCA-libGOMP plumbing.
//!
//! Every service is routed through MRAPI, mirroring §5B:
//!
//! * **Node management** (§5B.1): the backend initializes a master MRAPI
//!   node at construction; each pool worker is created with the
//!   `mrapi_thread_create` extension, registering the worker in the
//!   domain-global database, and is finalized when the pool thread joins;
//! * **Memory mapping** (§5B.2, Listing 3): runtime-internal shared buffers
//!   are MRAPI shared-memory segments created with the `use_malloc`
//!   attribute — the paper's `gomp_malloc` replacement;
//! * **Synchronization** (§5B.3, Listing 4): [`RegionLock`]s are MRAPI
//!   mutexes; lock/unlock run the exact `mrapi_mutex_lock(handle, &key,
//!   MRAPI_TIMEOUT_INFINITE, &status)` protocol;
//! * **Metadata** (§5B.4): the online-processor count comes from the MRAPI
//!   resource tree of the modeled board.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use mca_mrapi::shmem::ShmemAttributes;
use mca_mrapi::sync::MutexAttributes;
use mca_mrapi::{
    DomainId, MrapiSystem, Node, NodeId, ShmemHandle, WorkerNode, MRAPI_TIMEOUT_INFINITE,
};
use mca_sync::Mutex as PlMutex;

use super::{Backend, BackendKind, RegionLock, SharedWords, WorkerJoin};
use crate::RompError;

/// Domain the OpenMP runtime occupies, one per backend instance.
const OMP_DOMAIN: DomainId = DomainId(0x0E0);
/// The master (initial) node id.
const MASTER_NODE: NodeId = NodeId(0);

/// The MCA-libGOMP backend.
pub struct McaBackend {
    #[allow(dead_code)]
    system: MrapiSystem,
    master: Node,
    next_node: AtomicU32,
    next_key: AtomicU32,
}

impl McaBackend {
    /// Initialize on a fresh MRAPI system modeling the T4240RDB (each
    /// runtime gets its own domain database, like each process on the
    /// board).
    pub fn new() -> Result<Self, RompError> {
        Self::on_system(MrapiSystem::new_t4240())
    }

    /// Initialize on a caller-provided MRAPI system (shared-system setups,
    /// tests with other topologies).
    pub fn on_system(system: MrapiSystem) -> Result<Self, RompError> {
        let master = system.initialize(OMP_DOMAIN, MASTER_NODE)?;
        Ok(McaBackend {
            system,
            master,
            next_node: AtomicU32::new(1),
            next_key: AtomicU32::new(1),
        })
    }

    /// The master MRAPI node (for tests and diagnostics).
    pub fn master_node(&self) -> &Node {
        &self.master
    }

    fn fresh_key(&self) -> u32 {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }
}

/// An MRAPI-mutex-backed lock, carrying the outstanding lock key as MRAPI
/// requires (Listing 4's `mrapi_key_t`).
struct McaLock {
    mutex: mca_mrapi::MrapiMutex,
    key_slot: PlMutex<Option<mca_mrapi::MutexKey>>,
}

impl RegionLock for McaLock {
    fn lock(&self) {
        let k = self
            .mutex
            .lock(MRAPI_TIMEOUT_INFINITE)
            .expect("MRAPI mutex lock failed");
        *self.key_slot.lock() = Some(k);
    }

    fn unlock(&self) {
        let k = self.key_slot.lock().take().expect("unlock without lock");
        self.mutex.unlock(&k).expect("MRAPI mutex unlock failed");
    }

    fn try_lock(&self) -> bool {
        match self.mutex.try_lock() {
            Ok(k) => {
                *self.key_slot.lock() = Some(k);
                true
            }
            Err(_) => false,
        }
    }
}

/// Shared words carved from an MRAPI shmem segment (heap-backed via the
/// `use_malloc` extension).
struct ShmemWords(ShmemHandle);

impl SharedWords for ShmemWords {
    fn words(&self) -> &[AtomicU64] {
        self.0.as_words()
    }
}

struct McaJoin(WorkerNode<()>);

impl WorkerJoin for McaJoin {
    fn join(self: Box<Self>) {
        let _ = self.0.join();
    }
}

impl Backend for McaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mca
    }

    fn online_processors(&self) -> usize {
        // §5B.4: read the processor count from the MRAPI metadata tree.
        self.master.online_processors().unwrap_or(1)
    }

    fn spawn_worker(
        &self,
        label: String,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<Box<dyn WorkerJoin>, RompError> {
        let id = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
        let attrs = mca_mrapi::NodeAttributes {
            affinity_hw_thread: None,
            name: Some(label),
        };
        let worker = self
            .master
            .thread_create_with_attrs(id, attrs, move |_node| body())?;
        Ok(Box::new(McaJoin(worker)))
    }

    fn new_lock(&self) -> Arc<dyn RegionLock> {
        let mutex = self
            .master
            .mutex_create(0x4000_0000 | self.fresh_key(), &MutexAttributes::default())
            .expect("MRAPI mutex create failed");
        Arc::new(McaLock {
            mutex,
            key_slot: PlMutex::new(None),
        })
    }

    fn alloc_shared_words(&self, words: usize) -> Arc<dyn SharedWords> {
        // Listing 3: shm_attr.use_malloc = MCA_TRUE.
        let attrs = ShmemAttributes {
            use_malloc: true,
            ..Default::default()
        };
        let handle = self
            .master
            .shmem_create(0x8000_0000 | self.fresh_key(), (words * 8).max(8), &attrs)
            .expect("MRAPI shmem create failed");
        Arc::new(ShmemWords(handle))
    }

    fn shutdown(&self) {
        // Master finalization happens on drop of the last Node clone; the
        // registry entry is removed eagerly here so repeated
        // construct/destroy cycles in one process don't collide.
        if self.master.is_initialized() {
            let _ = self.master.clone().finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_register_in_domain_database() {
        let be = McaBackend::new().unwrap();
        let sys = be.system.clone();
        assert_eq!(sys.node_count(OMP_DOMAIN), 1, "master only");
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g2 = Arc::clone(&gate);
        let j = be
            .spawn_worker(
                "w".into(),
                Box::new(move || {
                    g2.wait(); // hold the node alive until counted
                    g2.wait();
                }),
            )
            .unwrap();
        gate.wait();
        assert_eq!(sys.node_count(OMP_DOMAIN), 2, "worker node registered");
        gate.wait();
        j.join();
        assert_eq!(
            sys.node_count(OMP_DOMAIN),
            1,
            "worker node finalized on join"
        );
    }

    #[test]
    fn shared_words_are_malloc_backed_shmem() {
        let be = McaBackend::new().unwrap();
        let before = be.system.simulated_transfer_ns();
        let buf = be.alloc_shared_words(8);
        buf.words()[0].store(1, Ordering::Release);
        assert_eq!(
            be.system.simulated_transfer_ns(),
            before,
            "use_malloc path must not charge IPC costs (Listing 3 semantics)"
        );
    }

    #[test]
    fn listing_4_lock_protocol() {
        let be = McaBackend::new().unwrap();
        let lock = be.new_lock();
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn distinct_locks_do_not_alias() {
        let be = McaBackend::new().unwrap();
        let a = be.new_lock();
        let b = be.new_lock();
        a.lock();
        assert!(b.try_lock(), "b must be independent of a");
        b.unlock();
        a.unlock();
    }

    #[test]
    fn shutdown_allows_recreation_on_shared_system() {
        let sys = MrapiSystem::new_t4240();
        let be = McaBackend::on_system(sys.clone()).unwrap();
        be.shutdown();
        // Master slot freed: a second backend can claim it.
        let be2 = McaBackend::on_system(sys).unwrap();
        be2.shutdown();
    }
}
