//! The native backend — stand-in for stock libGOMP.
//!
//! Uses the host's threads directly, the runtime's own spin-then-park lock
//! ([`crate::sync::RawMutex`]), plain heap allocation for shared buffers,
//! and `std::thread::available_parallelism` for processor discovery.  This
//! is the baseline every Table I ratio divides by.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use mca_mrapi::{MrapiError, MrapiStatus};

use super::{Backend, BackendKind, RegionLock, SharedWords, WorkerJoin};
use crate::sync::RawMutex;
use crate::RompError;

/// The stock-libGOMP analogue backend.
#[derive(Debug, Default)]
pub struct NativeBackend {
    _priv: (),
}

impl NativeBackend {
    /// Create the backend (infallible).
    pub fn new() -> Self {
        NativeBackend { _priv: () }
    }
}

struct NativeLock {
    raw: RawMutex,
    /// Tracks holding so double unlock is a reportable error (in the MRAPI
    /// status vocabulary, like the MCA backend) instead of silent state
    /// corruption.  Flipped only while `raw` is held, so no extra race.
    held: AtomicBool,
}

impl RegionLock for NativeLock {
    fn lock(&self) {
        self.raw.lock();
        self.held.store(true, Ordering::Relaxed);
    }
    fn unlock(&self) -> Result<(), RompError> {
        if !self.held.swap(false, Ordering::Relaxed) {
            return Err(RompError::Lock(MrapiError(MrapiStatus::ErrMutexNotLocked)));
        }
        self.raw.unlock();
        Ok(())
    }
    fn try_lock(&self) -> bool {
        if self.raw.try_lock() {
            self.held.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

struct HeapWords(Box<[AtomicU64]>);

impl SharedWords for HeapWords {
    fn words(&self) -> &[AtomicU64] {
        &self.0
    }
}

struct NativeJoin(thread::JoinHandle<()>);

impl WorkerJoin for NativeJoin {
    fn join(self: Box<Self>) {
        let _ = self.0.join();
    }
}

impl Backend for NativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Native
    }

    fn online_processors(&self) -> usize {
        thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    }

    fn spawn_worker(
        &self,
        label: String,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<Box<dyn WorkerJoin>, RompError> {
        let handle = thread::Builder::new()
            .name(label)
            .spawn(body)
            .map_err(|e| RompError::Config(format!("thread spawn failed: {e}")))?;
        Ok(Box::new(NativeJoin(handle)))
    }

    fn new_lock(&self) -> Result<Arc<dyn RegionLock>, RompError> {
        Ok(Arc::new(NativeLock {
            raw: RawMutex::new(),
            held: AtomicBool::new(false),
        }))
    }

    fn alloc_shared_words(&self, words: usize) -> Result<Arc<dyn SharedWords>, RompError> {
        let buf = (0..words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(Arc::new(HeapWords(buf)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn lock_excludes_across_threads() {
        let be = NativeBackend::new();
        let lock = be.new_lock().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        lock.lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        lock.unlock().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn shared_words_zero_initialized() {
        let be = NativeBackend::new();
        let b = be.alloc_shared_words(16).unwrap();
        assert!(b.words().iter().all(|w| w.load(Ordering::Relaxed) == 0));
    }
}
