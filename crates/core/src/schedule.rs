//! Loop schedules and their partition arithmetic.
//!
//! OpenMP's worksharing loop supports several schedules; the partition math
//! is kept here as pure functions so it can be property-tested exhaustively
//! (every schedule must tile the iteration space exactly: no gaps, no
//! overlap).  The shared-state parts (the chunk cursor for `dynamic` and
//! `guided`) live with the team in [`crate::worker`].

/// An OpenMP loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations divided into near-equal contiguous blocks, one per thread
    /// (`chunk = None`), or round-robin chunks of the given size.
    Static {
        /// Round-robin chunk size; `None` = one contiguous block per thread.
        chunk: Option<usize>,
    },
    /// Threads grab fixed-size chunks from a shared cursor.
    Dynamic {
        /// Iterations taken per grab (≥ 1).
        chunk: usize,
    },
    /// Threads grab shrinking chunks: `max(remaining / (2·nthreads), chunk)`.
    Guided {
        /// The floor a shrinking chunk never goes below (≥ 1).
        chunk: usize,
    },
    /// Implementation-defined; this runtime maps it to blocked static,
    /// which is what libGOMP does for balanced loops.
    Auto,
    /// Take the schedule from the ICV (`OMP_SCHEDULE`), like
    /// `schedule(runtime)`.
    Runtime,
}

impl Schedule {
    /// Parse the `OMP_SCHEDULE` syntax: `kind[,chunk]` with kinds
    /// `static|dynamic|guided|auto`.
    pub fn parse(s: &str) -> Option<Schedule> {
        let mut parts = s.trim().splitn(2, ',');
        let kind = parts.next()?.trim().to_ascii_lowercase();
        let chunk: Option<usize> = match parts.next() {
            Some(c) => Some(c.trim().parse().ok().filter(|&v| v > 0)?),
            None => None,
        };
        match kind.as_str() {
            "static" => Some(Schedule::Static { chunk }),
            "dynamic" => Some(Schedule::Dynamic {
                chunk: chunk.unwrap_or(1),
            }),
            "guided" => Some(Schedule::Guided {
                chunk: chunk.unwrap_or(1),
            }),
            "auto" => Some(Schedule::Auto),
            _ => None,
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::Static { chunk: None }
    }
}

/// The contiguous block `[start, end)` thread `tid` owns under blocked
/// static scheduling of `n` iterations across `nthreads`.
///
/// The first `n % nthreads` threads get one extra iteration, matching
/// libGOMP.
pub fn static_block(n: u64, nthreads: usize, tid: usize) -> (u64, u64) {
    debug_assert!(tid < nthreads);
    let t = nthreads as u64;
    let q = n / t;
    let r = n % t;
    let tid = tid as u64;
    if tid < r {
        let start = tid * (q + 1);
        (start, start + q + 1)
    } else {
        let start = r * (q + 1) + (tid - r) * q;
        (start, start + q)
    }
}

/// Iterator over the chunk start offsets thread `tid` owns under
/// round-robin static chunking (`schedule(static, chunk)`).
pub fn static_chunk_starts(
    n: u64,
    chunk: usize,
    nthreads: usize,
    tid: usize,
) -> impl Iterator<Item = (u64, u64)> {
    let chunk = chunk.max(1) as u64;
    let stride = chunk * nthreads as u64;
    let first = tid as u64 * chunk;
    (0..)
        .map(move |k| first + k * stride)
        .take_while(move |&s| s < n)
        .map(move |s| (s, (s + chunk).min(n)))
}

/// Next guided chunk size for `remaining` iterations over `nthreads`
/// threads with minimum chunk `min_chunk`.
pub fn guided_chunk(remaining: u64, nthreads: usize, min_chunk: usize) -> u64 {
    let half_share = remaining / (2 * nthreads as u64);
    half_share.max(min_chunk as u64).max(1).min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_block_examples() {
        // 10 iterations over 4 threads: 3,3,2,2.
        assert_eq!(static_block(10, 4, 0), (0, 3));
        assert_eq!(static_block(10, 4, 1), (3, 6));
        assert_eq!(static_block(10, 4, 2), (6, 8));
        assert_eq!(static_block(10, 4, 3), (8, 10));
        // Fewer iterations than threads.
        assert_eq!(static_block(2, 4, 0), (0, 1));
        assert_eq!(
            static_block(2, 4, 3),
            (2, 2),
            "trailing threads get empty blocks"
        );
        // Empty loop.
        assert_eq!(static_block(0, 3, 1), (0, 0));
    }

    #[test]
    fn static_chunks_example() {
        // n=10, chunk=2, threads=3: t0 gets [0,2) and [6,8); t1 [2,4),[8,10); t2 [4,6).
        let t0: Vec<_> = static_chunk_starts(10, 2, 3, 0).collect();
        assert_eq!(t0, vec![(0, 2), (6, 8)]);
        let t2: Vec<_> = static_chunk_starts(10, 2, 3, 2).collect();
        assert_eq!(t2, vec![(4, 6)]);
        // Final partial chunk is clipped.
        let t1: Vec<_> = static_chunk_starts(9, 2, 3, 1).collect();
        assert_eq!(t1, vec![(2, 4), (8, 9)]);
    }

    #[test]
    fn guided_chunks_shrink_to_minimum() {
        let mut remaining = 1000u64;
        let mut sizes = Vec::new();
        while remaining > 0 {
            let c = guided_chunk(remaining, 4, 5);
            sizes.push(c);
            remaining -= c;
        }
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "monotone non-increasing: {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(
            sizes[..sizes.len() - 1].iter().all(|&c| c >= 5),
            "min chunk respected"
        );
        assert_eq!(sizes[0], 125, "first chunk = n/(2*threads)");
    }

    #[test]
    fn parse_omp_schedule_syntax() {
        assert_eq!(
            Schedule::parse("static"),
            Some(Schedule::Static { chunk: None })
        );
        assert_eq!(
            Schedule::parse("static,4"),
            Some(Schedule::Static { chunk: Some(4) })
        );
        assert_eq!(
            Schedule::parse(" DYNAMIC , 16 "),
            Some(Schedule::Dynamic { chunk: 16 })
        );
        assert_eq!(
            Schedule::parse("guided"),
            Some(Schedule::Guided { chunk: 1 })
        );
        assert_eq!(Schedule::parse("auto"), Some(Schedule::Auto));
        assert_eq!(Schedule::parse("bogus"), None);
        assert_eq!(Schedule::parse("static,0"), None, "zero chunk invalid");
        assert_eq!(Schedule::parse("static,x"), None);
    }

    // Randomized properties over a fixed-seed SmallRng: deterministic,
    // reproducible, and dependency-free (the workspace builds hermetically).

    /// Blocked static scheduling tiles [0, n) exactly.
    #[test]
    fn static_block_tiles_exactly() {
        let mut rng = mca_sync::rng::SmallRng::seed_from_u64(0x5eed_0001);
        for _ in 0..256 {
            let n = rng.gen_range(0, 10_000);
            let nthreads = rng.gen_index(1, 64);
            let mut covered = 0u64;
            let mut prev_end = 0u64;
            for tid in 0..nthreads {
                let (s, e) = static_block(n, nthreads, tid);
                assert!(s <= e);
                assert_eq!(s, prev_end, "blocks must be contiguous");
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, n);
            assert_eq!(prev_end, n);
        }
    }

    /// Blocked static is balanced: sizes differ by at most one.
    #[test]
    fn static_block_balanced() {
        let mut rng = mca_sync::rng::SmallRng::seed_from_u64(0x5eed_0002);
        for _ in 0..256 {
            let n = rng.gen_range(0, 10_000);
            let nthreads = rng.gen_index(1, 64);
            let sizes: Vec<u64> = (0..nthreads)
                .map(|t| {
                    let (s, e) = static_block(n, nthreads, t);
                    e - s
                })
                .collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    /// Chunked static tiles [0, n) exactly with no overlap.
    #[test]
    fn static_chunks_tile_exactly() {
        let mut rng = mca_sync::rng::SmallRng::seed_from_u64(0x5eed_0003);
        for _ in 0..128 {
            let n = rng.gen_range(0, 5_000);
            let chunk = rng.gen_index(1, 97);
            let nthreads = rng.gen_index(1, 17);
            let mut seen = vec![false; n as usize];
            for tid in 0..nthreads {
                for (s, e) in static_chunk_starts(n, chunk, nthreads, tid) {
                    assert!(e <= n);
                    for i in s..e {
                        assert!(!seen[i as usize], "iteration {i} assigned twice");
                        seen[i as usize] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    /// Guided chunking always terminates and covers everything.
    #[test]
    fn guided_consumes_everything() {
        let mut rng = mca_sync::rng::SmallRng::seed_from_u64(0x5eed_0004);
        for _ in 0..256 {
            let n = rng.gen_range(1, 100_000);
            let nthreads = rng.gen_index(1, 33);
            let min = rng.gen_index(1, 65);
            let mut remaining = n;
            let mut steps = 0u32;
            while remaining > 0 {
                let c = guided_chunk(remaining, nthreads, min);
                assert!(c >= 1 && c <= remaining);
                remaining -= c;
                steps += 1;
                assert!(steps < 1_000_000);
            }
        }
    }
}
