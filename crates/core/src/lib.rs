//! # romp — an OpenMP-style runtime with pluggable MCA backends
//!
//! This crate is the reproduction's core: the role that **libGOMP** (GNU's
//! OpenMP runtime) plays in the paper, rebuilt in Rust with the low-level
//! services behind a [`Backend`] trait so that the paper's experiment — *swap
//! the OS-facing plumbing for MCA/MRAPI and show it costs nothing* — can be
//! run as an apples-to-apples comparison:
//!
//! * [`backend::NativeBackend`] (= stock libGOMP): `std::thread` workers,
//!   the runtime's own atomics-based locks, `available_parallelism` for
//!   processor discovery, plain heap for runtime-internal shared buffers;
//! * [`backend::McaBackend`] (= the paper's MCA-libGOMP): workers created
//!   through MRAPI's node-management extension (`mrapi_thread_create`,
//!   §5A.1/§5B.1), locks through MRAPI mutexes (§5B.3, Listing 4),
//!   runtime-internal shared buffers through MRAPI shared memory with the
//!   `use_malloc` attribute (§5A.2/§5B.2, Listing 3), and processor counts
//!   from MRAPI metadata resource trees (§5B.4).
//!
//! On top of the backend sits a full fork/join runtime: a persistent worker
//! pool, `parallel` regions, worksharing loops (static / dynamic / guided /
//! auto / runtime schedules), `barrier`, `single` (with copyprivate),
//! `master`, `sections`, named `critical`, `ordered`, reductions, explicit
//! tasks with `taskwait`, and an OpenMP-style lock API.
//!
//! ## Quick start
//!
//! ```
//! use romp::{Runtime, BackendKind, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
//!
//! // #pragma omp parallel for reduction(+:sum)
//! let sum: u64 = rt.parallel_reduce_sum(8, 0..10_000u64, |i| i);
//! assert_eq!(sum, 49_995_000);
//!
//! // An explicit region with worksharing and a barrier.
//! let hits = AtomicU64::new(0);
//! rt.parallel(4, |w| {
//!     w.for_range(0..100u64, Schedule::Dynamic { chunk: 8 }, |_i| {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//!     w.barrier();
//!     if w.thread_num() == 0 {
//!         assert_eq!(hits.load(Ordering::Relaxed), 100);
//!     }
//! });
//! ```
//!
//! ## Fidelity notes
//!
//! * Worker threads are MRAPI *nodes*, registered in the domain-global
//!   database for the lifetime of the pool thread and finalized when the
//!   runtime shuts down — the lifecycle of §5B.1.
//! * Nested `parallel` follows the OpenMP default (`OMP_NESTED=false`):
//!   a nested region executes with a team of one (the encountering thread).
//! * The environment is honoured like libGOMP's: `OMP_NUM_THREADS`,
//!   `OMP_SCHEDULE`, `OMP_DYNAMIC`, plus `ROMP_BACKEND=native|mca` to pick
//!   the backend (the reproduction's switch between the two toolchains).

#![warn(missing_docs)]

pub mod backend;
pub mod barrier;
pub mod cancel;
pub mod config;
pub mod lock;
pub mod schedule;
pub mod stats;
pub mod sync;
pub mod team;
pub mod worker;

mod runtime;

/// The observability layer ([`romp_trace`]), re-exported so downstream
/// crates can name trace types without a separate dependency edge.
pub use romp_trace as trace;

pub use backend::{
    Backend, BackendKind, DeadlockReport, McaBackend, McaOptions, RegionLock, SharedWords,
};
pub use barrier::BarrierKind;
pub use cancel::{CancelReason, CancelToken};
pub use config::{Config, RetryPolicy};
pub use lock::OmpLock;
pub use runtime::Runtime;
pub use schedule::Schedule;
pub use stats::RuntimeStats;
pub use worker::{ReduceOp, Worker};

/// `omp_get_wtime`: seconds since an arbitrary fixed point, for portable
/// elapsed-time measurement in ported OpenMP code.
pub fn wtime() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// The typed error every fallible runtime operation reports.
///
/// The fault model (DESIGN.md §5) requires that no MRAPI status ever
/// aborts the process: statuses become `Mrapi`/`Exhausted` values, lock
/// misuse becomes `Lock`, and only the caller decides what is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RompError {
    /// An MRAPI operation failed with a non-transient status.
    Mrapi(mca_mrapi::MrapiError),
    /// Invalid configuration value (message explains).
    Config(String),
    /// An MRAPI operation still failed after bounded retries with backoff.
    Exhausted {
        /// The spec-level operation that gave up (`"mrapi_mutex_create"`…).
        op: &'static str,
        /// How many attempts were made.
        attempts: u32,
        /// The status of the final attempt.
        last: mca_mrapi::MrapiError,
    },
    /// A pool worker could not be spawned on any available backend.
    Spawn(String),
    /// Recoverable lock misuse (double unlock, stale key), reported in the
    /// MRAPI status vocabulary on both backends.
    Lock(mca_mrapi::MrapiError),
    /// The region was asked to stop via a [`CancelToken`] and unwound at a
    /// cooperative checkpoint before completing.
    Cancelled,
}

impl RompError {
    /// The underlying MRAPI status, when there is one.
    pub fn status(&self) -> Option<mca_mrapi::MrapiStatus> {
        match self {
            RompError::Mrapi(e) | RompError::Lock(e) => Some(e.0),
            RompError::Exhausted { last, .. } => Some(last.0),
            RompError::Config(_) | RompError::Spawn(_) | RompError::Cancelled => None,
        }
    }
}

impl std::fmt::Display for RompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RompError::Mrapi(e) => write!(f, "MRAPI error: {e}"),
            RompError::Config(m) => write!(f, "configuration error: {m}"),
            RompError::Exhausted { op, attempts, last } => {
                write!(f, "{op} failed after {attempts} attempts: {last}")
            }
            RompError::Spawn(m) => write!(f, "worker spawn failed: {m}"),
            RompError::Lock(e) => write!(f, "lock misuse: {e}"),
            RompError::Cancelled => write!(f, "region cancelled at a cooperative checkpoint"),
        }
    }
}

impl std::error::Error for RompError {}

impl From<mca_mrapi::MrapiError> for RompError {
    fn from(e: mca_mrapi::MrapiError) -> Self {
        RompError::Mrapi(e)
    }
}
