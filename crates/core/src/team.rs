//! Teams, the worker pool, and the fork/join machinery.
//!
//! Mirrors libGOMP's "dock" design: the runtime keeps a pool of sleeping
//! worker threads; `parallel` wakes `n-1` of them (spawning more through the
//! backend if the pool is short), hands every member the region closure and
//! a shared `TeamShared`, runs thread 0 on the encountering thread, and
//! joins at the implicit end-of-region barrier.  Workers go back to sleep in
//! their dock slot afterwards, so steady-state region launch costs no thread
//! creation — the behaviour EPCC's `parallel` overhead measures.
//!
//! Two lock-free structures carry the region's hot paths:
//!
//! * the **construct ring** (`ConstructRing`) hands out shared
//!   per-construct state (dynamic/guided cursors, `single` arbitration,
//!   reduction staging) without a team-global lock — see the type docs for
//!   the claim/ready protocol;
//! * the **sharded two-level task scheduler** gives every member a bounded
//!   local ring ([`mca_sync::deque::RingQueue`]) and every *shard* (a
//!   cluster-aligned member group from [`mca_platform::ShardLayout`]) its
//!   own overflow [`Injector`]; idle members pop locally, drain their
//!   shard's injector, steal round-robin from shard-mates, and only cross
//!   the shard boundary — other shards' injectors, then rings — once every
//!   local source is dry.  The local/remote split is counted in the
//!   team's counters and, when tracing is armed, in the
//!   `steals.{local,remote}` metrics.

use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mca_platform::ShardLayout;
use mca_sync::deque::{Injector, RingQueue, Steal};
use mca_sync::{CachePadded, Condvar, Mutex as PlMutex};
use romp_trace::{EventKind, Tracer};

use crate::backend::SharedWords;
use crate::barrier::Barrier;
use crate::cancel::{CancelToken, CancelUnwind};

/// A queued explicit task.  Lifetime-erased to the region (see the SAFETY
/// discussion in [`crate::worker::Worker::task`]).
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Capacity of each member's local task ring; overflow spills into the
/// team-wide injector, so this only bounds the lock-free fast path.
const LOCAL_TASK_RING: usize = 256;

/// Reduction scratch is strided so each member's slot owns a full
/// 128-byte prefetch pair: slot `i` lives at word `i * REDUCE_STRIDE`.
pub(crate) const REDUCE_STRIDE: usize = 16;

/// Slots in the lock-free construct ring.  Bounds how many worksharing
/// constructs the fastest member may run ahead of the slowest before the
/// fast member has to wait (a lap); 64 is far beyond any real nowait chain.
pub(crate) const CONSTRUCT_RING: usize = 64;

/// Shared per-construct state (dynamic/guided loop cursors, `single`
/// arbitration, copyprivate staging), keyed by construct sequence number.
pub(crate) struct ConstructState {
    /// Next unclaimed iteration (dynamic/guided/sections cursor).
    pub cursor: CachePadded<AtomicU64>,
    /// Iterations not yet handed out (guided's shrinking share).
    pub remaining: CachePadded<AtomicU64>,
    /// `single`'s first-arriver flag.
    pub claimed: AtomicBool,
    /// Copyprivate / generic-reduction staging slot.
    pub stage: PlMutex<Option<Box<dyn Any + Send>>>,
    /// Members that completed the construct (for slot release).
    pub finished: AtomicUsize,
}

impl ConstructState {
    pub(crate) fn new(start: u64, total: u64) -> Self {
        ConstructState {
            cursor: CachePadded::new(AtomicU64::new(start)),
            remaining: CachePadded::new(AtomicU64::new(total)),
            claimed: AtomicBool::new(false),
            stage: PlMutex::new(None),
            finished: AtomicUsize::new(0),
        }
    }
}

/// One construct-ring slot.  `claim` and `ready` hold `seq + 1` of the
/// construct occupying the slot (0 = vacant); storing the full sequence
/// number rather than a parity bit makes lapped slots unambiguous.
struct ConstructSlot {
    /// Who owns the slot: CAS'd `0 → seq + 1` by the member that arrives
    /// first; reset to 0 only after the construct is fully released.
    claim: AtomicU64,
    /// Publication flag: set to `seq + 1` *after* `state` is written, so a
    /// reader that observes it acquires the initialized state.
    ready: AtomicU64,
    state: UnsafeCell<Option<Arc<ConstructState>>>,
}

// SAFETY: `state` is written by exactly one thread at a time — the claim
// winner before `ready` is published, or the last finisher after every
// other member has passed its `finished` increment — and only read between
// an Acquire of `ready == seq + 1` and that reader's own `finished`
// increment.
unsafe impl Sync for ConstructSlot {}

/// Lock-free table of in-flight worksharing constructs.
///
/// OpenMP requires every team member to encounter worksharing constructs in
/// the same order, so a construct is fully named by its per-member sequence
/// number, and at most `size` constructs are live at once (members can't be
/// more than the ring's length apart without someone having finished).  The
/// table is therefore a fixed ring indexed by `seq % CONSTRUCT_RING`:
///
/// * **lookup/insert** — spin on `ready == seq + 1` (already published), or
///   win the `claim` CAS and publish the state yourself; no team lock, no
///   allocation beyond the state `Arc` itself;
/// * **release** — the last member through the construct clears the slot
///   (`state`, then `ready`, then `claim`), making it claimable for
///   `seq + CONSTRUCT_RING`;
/// * **backpressure** — a member lapping the ring (its `seq` maps onto a
///   slot still owned by `seq - CONSTRUCT_RING`) waits for the stragglers,
///   running queued tasks meanwhile so task-starved laggards still make
///   progress.
pub(crate) struct ConstructRing {
    slots: Box<[ConstructSlot]>,
}

impl ConstructRing {
    fn new() -> Self {
        let slots = (0..CONSTRUCT_RING)
            .map(|_| ConstructSlot {
                claim: AtomicU64::new(0),
                ready: AtomicU64::new(0),
                state: UnsafeCell::new(None),
            })
            .collect();
        ConstructRing { slots }
    }

    /// Fetch-or-create the state for construct `seq`.  `stall` is invoked
    /// while waiting (on another member's initialization, or on a lapped
    /// slot); it should do useful work or yield.
    fn get(
        &self,
        seq: u64,
        init: impl FnOnce() -> ConstructState,
        mut stall: impl FnMut(),
    ) -> Arc<ConstructState> {
        let slot = &self.slots[(seq as usize) % CONSTRUCT_RING];
        let tag = seq + 1;
        let mut init = Some(init);
        loop {
            if slot.ready.load(Ordering::Acquire) == tag {
                // Published by a teammate: the Acquire above pairs with the
                // Release in the publisher, so the state write is visible.
                // SAFETY: see ConstructSlot — the slot can't be released or
                // reused until this member increments `finished`.
                let state = unsafe { (*slot.state.get()).as_ref() };
                return Arc::clone(state.expect("ready slot holds a state"));
            }
            match slot
                .claim
                .compare_exchange(0, tag, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // This member initializes the construct.
                    let state = Arc::new((init.take().expect("claim won once"))());
                    // SAFETY: winning the CAS makes this thread the slot's
                    // unique writer until `ready` is published.
                    unsafe { *slot.state.get() = Some(Arc::clone(&state)) };
                    slot.ready.store(tag, Ordering::Release);
                    return state;
                }
                Err(current) if current == tag => {
                    // A teammate won the claim; its publication is imminent.
                    std::hint::spin_loop();
                }
                Err(_lapped) => {
                    // The slot still belongs to construct seq - RING: this
                    // member lapped the ring ahead of stragglers.
                    stall();
                }
            }
        }
    }

    /// Release the slot for construct `seq`; call only from the last member
    /// through the construct.
    fn release(&self, seq: u64) {
        let slot = &self.slots[(seq as usize) % CONSTRUCT_RING];
        debug_assert_eq!(slot.ready.load(Ordering::Relaxed), seq + 1);
        // SAFETY: every member has incremented `finished` (AcqRel), so no
        // reader can still be dereferencing the cell.
        unsafe { *slot.state.get() = None };
        slot.ready.store(0, Ordering::Release);
        // Clearing `claim` last re-opens the slot: a claimant for
        // seq + RING CASes 0 → its tag and only then writes the cell.
        slot.claim.store(0, Ordering::Release);
    }
}

/// Per-team always-on counters; folded into the runtime's totals at join.
/// Each counter is cache-padded: they are bumped from different members on
/// different constructs and must not ping-pong one line between them.
#[derive(Default)]
pub(crate) struct TeamCounters {
    pub barriers: CachePadded<AtomicU64>,
    pub criticals: CachePadded<AtomicU64>,
    pub singles: CachePadded<AtomicU64>,
    pub loops: CachePadded<AtomicU64>,
    pub tasks: CachePadded<AtomicU64>,
    /// Ring steals from a shard-mate (stayed inside the cluster).
    pub steals_local: CachePadded<AtomicU64>,
    /// Work taken across a shard boundary (another shard's injector or
    /// a member ring in another shard) — the fabric-crossing steals.
    pub steals_remote: CachePadded<AtomicU64>,
}

/// Everything a team shares for the duration of one parallel region.
pub(crate) struct TeamShared {
    /// Team size (≥ 1).
    pub size: usize,
    /// The team barrier (implicit and explicit uses).
    pub barrier: Barrier,
    /// In-flight worksharing constructs, indexed by sequence number.
    pub constructs: ConstructRing,
    /// Reduction scratch: `size` value slots + one result slot, each strided
    /// to [`REDUCE_STRIDE`] words, allocated through the backend — the
    /// gomp_malloc substitution of §5B.2.
    pub reduce_words: Arc<dyn SharedWords>,
    /// Per-member local task rings (work-stealing fast path).
    pub task_rings: Box<[CachePadded<RingQueue<Task>>]>,
    /// How the members are grouped into shards (cluster-aligned when the
    /// runtime was built from a topology; one shard otherwise).
    pub layout: ShardLayout,
    /// Per-shard overflow + external submission queues for tasks.
    pub shard_injectors: Box<[Injector<Task>]>,
    /// Home shard for this region's job, from the runtime's ambient
    /// affinity key: plain `task()` spawns from members *outside* the
    /// home shard are routed to its injector, keeping the job's task
    /// graph concentrated where its cache state lives.
    pub home_shard: Option<usize>,
    /// Tasks queued or running, not yet finished.
    pub outstanding_tasks: AtomicUsize,
    /// `ordered` cursor: the loop index allowed to run its ordered block.
    pub ordered_cursor: PlMutex<u64>,
    pub ordered_cv: Condvar,
    /// First panic payload from any member (re-thrown by the master).
    pub panic: PlMutex<Option<Box<dyn Any + Send>>>,
    /// The supervisor's cancel token, if this region was launched with one
    /// armed.  `None` costs checkpoints a single branch.
    pub cancel: Option<CancelToken>,
    /// Team-local cancellation latch: set once by the first member to
    /// observe a fired token (or a cancelled nested region), so teammates
    /// see the decision without re-reading the shared token.
    pub cancelled: AtomicBool,
    /// End-of-region join latch.  Every member increments it after its
    /// implicit barrier (or after unwinding, on a cancelled team); the
    /// master waits for `size` before returning, which is what keeps the
    /// lifetime-erased region closure alive for every dereference even
    /// when cancellation breaks the normal barrier protocol.
    pub joined: CachePadded<AtomicUsize>,
    /// Per-member CPU time for this region (profiling only).
    pub cpu_ns: Vec<AtomicU64>,
    pub counters: TeamCounters,
    /// The runtime's event recorder; disarmed it costs one relaxed load
    /// per would-be event.
    pub tracer: Arc<Tracer>,
}

impl TeamShared {
    pub(crate) fn new(
        size: usize,
        barrier: Barrier,
        reduce_words: Arc<dyn SharedWords>,
        tracer: Arc<Tracer>,
        cancel: Option<CancelToken>,
        layout: ShardLayout,
        affinity: Option<u64>,
    ) -> Self {
        debug_assert_eq!(layout.num_members(), size);
        let home_shard = affinity.map(|k| layout.shard_for_key(k));
        TeamShared {
            size,
            barrier,
            constructs: ConstructRing::new(),
            reduce_words,
            task_rings: (0..size)
                .map(|_| CachePadded::new(RingQueue::new(LOCAL_TASK_RING)))
                .collect(),
            shard_injectors: (0..layout.num_shards()).map(|_| Injector::new()).collect(),
            home_shard,
            layout,
            outstanding_tasks: AtomicUsize::new(0),
            ordered_cursor: PlMutex::new(0),
            ordered_cv: Condvar::new(),
            panic: PlMutex::new(None),
            cancel,
            cancelled: AtomicBool::new(false),
            joined: CachePadded::new(AtomicUsize::new(0)),
            cpu_ns: (0..size).map(|_| AtomicU64::new(0)).collect(),
            counters: TeamCounters::default(),
            tracer,
        }
    }

    /// Words the reduction scratch needs for a team of `size`.
    pub(crate) fn reduce_words_len(size: usize) -> usize {
        (size + 1) * REDUCE_STRIDE
    }

    /// Fetch-or-create the state for construct `seq`, as member `tid`.
    pub(crate) fn construct(
        &self,
        tid: usize,
        seq: u64,
        init: impl FnOnce() -> ConstructState,
    ) -> Arc<ConstructState> {
        self.constructs.get(seq, init, || {
            // A lapped member could stall forever behind teammates that
            // have already unwound; cancellation must reach this loop too.
            self.cancel_checkpoint();
            // Lapped the ring: help stragglers along by running their
            // queued tasks (a laggard may be stuck in taskwait behind work
            // sitting in a queue) instead of burning the core.
            if !self.run_one_task(tid) {
                std::thread::yield_now();
            }
        })
    }

    /// Has cancellation been requested for this team — via the supervisor
    /// token or the team-local latch?  One branch when no token is armed.
    #[inline]
    pub(crate) fn cancel_pending(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Latch the cancellation team-wide: breaks the barrier so blocked
    /// teammates wake and observe the latch.  Idempotent.
    pub(crate) fn latch_cancel(&self) {
        if !self.cancelled.swap(true, Ordering::AcqRel) {
            self.barrier.cancel();
        }
    }

    /// A cooperative cancellation point: if cancellation is pending, latch
    /// it and unwind with the [`CancelUnwind`] sentinel (caught by the
    /// region's `catch_unwind` net and filtered by [`record_panic`]).
    ///
    /// [`record_panic`]: TeamShared::record_panic
    #[inline]
    pub(crate) fn cancel_checkpoint(&self) {
        if self.cancel_pending() {
            self.latch_cancel();
            crate::cancel::silence_cancel_unwind_reports();
            std::panic::panic_any(CancelUnwind);
        }
    }

    /// End-of-region join: every member checks in once; the master (tid 0)
    /// does not return until all have, because the region closure and the
    /// runtime pointer die with the master's frame.
    pub(crate) fn join_member(&self, tid: usize) {
        self.joined.fetch_add(1, Ordering::AcqRel);
        if tid == 0 {
            let mut spins = 0u32;
            while self.joined.load(Ordering::Acquire) < self.size {
                if spins < 64 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Mark member done with construct `seq`; the last one releases the
    /// ring slot.
    pub(crate) fn construct_done(&self, seq: u64, state: &Arc<ConstructState>) {
        if state.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            self.constructs.release(seq);
        }
    }

    /// Queue a task on behalf of member `tid`: local ring first, the
    /// member's shard injector on overflow.  When the region runs under
    /// an ambient affinity key and `tid` sits outside the job's home
    /// shard, the task goes straight to the home shard's injector
    /// instead, so the job's task graph stays concentrated there.
    pub(crate) fn push_task(&self, tid: usize, task: Task) {
        self.tracer.instant(EventKind::TaskSpawn, tid as u32, 0, 0);
        self.outstanding_tasks.fetch_add(1, Ordering::AcqRel);
        match self.home_shard {
            Some(home) if self.layout.shard_of(tid) != home => {
                self.shard_injectors[home].push(task);
            }
            _ => {
                if let Err(task) = self.task_rings[tid].push(task) {
                    self.shard_injectors[self.layout.shard_of(tid)].push(task);
                }
            }
        }
    }

    /// Queue a task with an explicit affinity key: the key hashes to a
    /// home shard; a spawner already inside that shard keeps its local
    /// ring fast path, anyone else submits into the home shard's
    /// injector.
    pub(crate) fn push_task_keyed(&self, tid: usize, key: u64, task: Task) {
        self.tracer
            .instant(EventKind::TaskSpawn, tid as u32, 0, key);
        self.outstanding_tasks.fetch_add(1, Ordering::AcqRel);
        let home = self.layout.shard_for_key(key);
        if self.layout.shard_of(tid) == home {
            if let Err(task) = self.task_rings[tid].push(task) {
                self.shard_injectors[home].push(task);
            }
        } else {
            self.shard_injectors[home].push(task);
        }
    }

    /// Drain one shard's injector (absorbing `Retry` contention blips).
    fn steal_injector(&self, shard: usize) -> Option<Task> {
        loop {
            match self.shard_injectors[shard].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => return None,
            }
        }
    }

    /// Count (and, when tracing is armed, record) a successful steal.
    fn note_steal(&self, tid: usize, victim: usize, remote: bool, armed: bool) {
        if remote {
            self.counters.steals_remote.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.steals_local.fetch_add(1, Ordering::Relaxed);
        }
        if armed {
            self.tracer.instant(
                EventKind::TaskSteal,
                tid as u32,
                victim as u64,
                remote as u64,
            );
            let m = self.tracer.metrics();
            m.counter("task.steal.hit").incr();
            m.counter(if remote {
                "steals.remote"
            } else {
                "steals.local"
            })
            .incr();
        }
    }

    /// Take one queued task as member `tid`, escalating outward: own
    /// ring → own shard's injector → shard-mates' rings (counted as
    /// `steals.local`) → and only once every local source is dry, other
    /// shards' injectors and rings (counted as `steals.remote`).
    pub(crate) fn take_task(&self, tid: usize) -> Option<Task> {
        if let Some(t) = self.task_rings[tid].pop() {
            return Some(t);
        }
        let armed = self.tracer.armed();
        if armed {
            self.tracer.metrics().counter("task.steal.attempt").incr();
        }
        let my_shard = self.layout.shard_of(tid);
        if let Some(t) = self.steal_injector(my_shard) {
            return Some(t);
        }
        let mates = self.layout.members_of(my_shard);
        let my_pos = mates.iter().position(|&m| m == tid).unwrap_or(0);
        for k in 1..mates.len() {
            let victim = mates[(my_pos + k) % mates.len()];
            if let Some(t) = self.task_rings[victim].pop() {
                self.note_steal(tid, victim, false, armed);
                return Some(t);
            }
        }
        // Local sources are dry: escalate across the shard boundary.
        // Other shards' injectors first (their backlog is the cheapest
        // remote work to claim), then their member rings.
        let num_shards = self.layout.num_shards();
        if num_shards > 1 {
            for k in 1..num_shards {
                let shard = (my_shard + k) % num_shards;
                if let Some(t) = self.steal_injector(shard) {
                    self.note_steal(tid, self.layout.members_of(shard)[0], true, armed);
                    return Some(t);
                }
            }
            for k in 1..self.size {
                let victim = (tid + k) % self.size;
                if self.layout.shard_of(victim) == my_shard {
                    continue;
                }
                if let Some(t) = self.task_rings[victim].pop() {
                    self.note_steal(tid, victim, true, armed);
                    return Some(t);
                }
            }
        }
        None
    }

    /// Run one queued task as member `tid`; returns whether one ran.  Task
    /// panics are captured into the team's panic slot (first wins) so a
    /// panic inside a *stolen* task still reaches the master, and
    /// `outstanding_tasks` still reaches zero so barriers don't hang.
    pub(crate) fn run_one_task(&self, tid: usize) -> bool {
        let Some(t) = self.take_task(tid) else {
            return false;
        };
        self.tracer.instant(EventKind::TaskRun, tid as u32, 0, 0);
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(t)) {
            self.record_panic(payload);
        }
        self.outstanding_tasks.fetch_sub(1, Ordering::AcqRel);
        self.counters.tasks.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Run queued tasks until none are reachable; returns `true` if at
    /// least one task ran.
    pub(crate) fn drain_tasks(&self, tid: usize) -> bool {
        let mut any = false;
        while self.run_one_task(tid) {
            any = true;
        }
        any
    }

    /// Record a panic payload (first wins).  The [`CancelUnwind`] sentinel
    /// is *not* a panic — a cancelled member unwinds with it by design —
    /// so it is filtered here rather than stored and re-thrown.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        if payload.is::<CancelUnwind>() {
            return;
        }
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// What a dock slot is being told to do.
pub(crate) enum SlotState {
    /// Nothing; wait for work.
    Idle,
    /// Run this region member.
    Job(JobMsg),
    /// A taken job is still executing; the slot returns to `Idle` when the
    /// member (and its post-barrier epilogue) fully completes.
    Running,
    /// Exit the worker loop (runtime shutdown).
    Exit,
}

/// A region assignment for one pool worker.
pub(crate) struct JobMsg {
    pub team: Arc<TeamShared>,
    pub tid: usize,
    /// The region closure, lifetime-erased.  SAFETY: the master joins the
    /// end-of-region barrier before `parallel` returns, and members never
    /// touch the closure after arriving at that barrier, so the referent
    /// outlives every dereference.
    pub func: RegionFn,
    /// The owning runtime, for construct bookkeeping.  SAFETY: the master
    /// holds the runtime alive for the whole region.
    pub rt: *const crate::runtime::RtInner,
    pub profiling: bool,
}

// SAFETY: see the field-level comments on `func` and `rt`; both raw
// pointers are only dereferenced while the master provably keeps their
// referents alive (it is blocked in the same region).
unsafe impl Send for JobMsg {}

/// Lifetime-erased pointer to the region closure.
#[derive(Clone, Copy)]
pub(crate) struct RegionFn(pub *const (dyn Fn(&crate::worker::Worker) + Sync));

impl RegionFn {
    /// # Safety
    /// Caller must guarantee the referent is still alive (region running).
    pub(crate) unsafe fn call(&self, w: &crate::worker::Worker) {
        unsafe { (*self.0)(w) }
    }
}

/// One dock slot: a mailbox between the master and a pool worker.
///
/// Two condition variables, one per direction: `cv_assign` wakes the worker
/// when a job (or exit) lands, `cv_idle` wakes the master when the slot
/// returns to idle.  With a single shared condvar every region launch
/// cross-woke the other side's waiters — measurable on the EPCC `parallel`
/// overhead at larger team sizes.
pub(crate) struct PoolSlot {
    pub state: PlMutex<SlotState>,
    /// Signalled master → worker (new job / exit).
    cv_assign: Condvar,
    /// Signalled worker → master (slot back to idle).
    cv_idle: Condvar,
}

impl PoolSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(PoolSlot {
            state: PlMutex::new(SlotState::Idle),
            cv_assign: Condvar::new(),
            cv_idle: Condvar::new(),
        })
    }

    /// Master side: hand a job to this slot (waits for the slot to be idle,
    /// which it almost always already is).
    pub(crate) fn assign(&self, job: JobMsg) {
        let mut st = self.state.lock();
        while !matches!(*st, SlotState::Idle) {
            self.cv_idle.wait(&mut st);
        }
        *st = SlotState::Job(job);
        drop(st);
        self.cv_assign.notify_one();
    }

    /// Block until this slot is idle — i.e. any taken job has fully
    /// completed, trailing trace events included.  Used by trace drains,
    /// which need real quiescence, not just "job accepted".
    pub(crate) fn wait_idle(&self) {
        let mut st = self.state.lock();
        while !matches!(*st, SlotState::Idle | SlotState::Exit) {
            self.cv_idle.wait(&mut st);
        }
    }

    /// Master side at shutdown.
    pub(crate) fn send_exit(&self) {
        let mut st = self.state.lock();
        while !matches!(*st, SlotState::Idle) {
            self.cv_idle.wait(&mut st);
        }
        *st = SlotState::Exit;
        drop(st);
        self.cv_assign.notify_one();
    }

    /// Worker side: the dock loop.
    pub(crate) fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock();
                loop {
                    match &*st {
                        SlotState::Idle | SlotState::Running => self.cv_assign.wait(&mut st),
                        SlotState::Exit => return,
                        SlotState::Job(_) => break,
                    }
                }
                match std::mem::replace(&mut *st, SlotState::Running) {
                    SlotState::Job(j) => j,
                    _ => unreachable!("checked above"),
                }
            };
            // Run outside the slot lock. Mark idle only after the region
            // member fully completes — its trailing trace events included —
            // so `wait_idle` observers see a quiescent member.
            run_region_member(&job);
            *self.state.lock() = SlotState::Idle;
            self.cv_idle.notify_one();
        }
    }
}

/// Execute one team member: profiling bracket, region closure with panic
/// capture, then the implicit end-of-region barrier.
pub(crate) fn run_region_member(job: &JobMsg) {
    let team = &job.team;
    // SAFETY: the master keeps the runtime alive for the whole region (it
    // is itself executing a member of the same team).
    let rt = unsafe { &*job.rt };
    let in_parallel_prev = crate::runtime::enter_region_flag();
    let w = crate::worker::Worker::new(team, rt, job.tid);
    team.tracer
        .begin(EventKind::Region, job.tid as u32, team.size as u64);
    let start = if job.profiling {
        Some(mca_platform::vtime::thread_cpu_ns())
    } else {
        None
    };
    // SAFETY: the closure outlives the region; see RegionFn.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
        job.func.call(&w)
    }));
    if let Err(payload) = result {
        team.record_panic(payload);
    }
    if let Some(t0) = start {
        let dt = mca_platform::vtime::thread_cpu_ns().saturating_sub(t0);
        team.cpu_ns[job.tid].fetch_add(dt, Ordering::Relaxed);
    }
    // Implicit end-of-region barrier: also guarantees all explicit tasks
    // complete (OpenMP's rule), via the worker's task-draining barrier.
    // Never the unwinding kind — nothing past this point may panic.  On a
    // cancelled team the barrier is broken (members may have unwound past
    // mid-region barriers, so its counts no longer mean anything); the
    // join latch below is then the only synchronization.
    if !team.cancel_pending() {
        w.barrier_quiet();
    } else {
        team.latch_cancel();
    }
    // Unconditional join: the master must not drop the region closure (or
    // let the runtime pointer dangle) while any member can still touch it.
    team.join_member(job.tid);
    team.tracer
        .end(EventKind::Region, job.tid as u32, team.size as u64);
    crate::runtime::restore_region_flag(in_parallel_prev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, NativeBackend};
    use crate::barrier::BarrierKind;

    pub(crate) fn mk_team(size: usize) -> Arc<TeamShared> {
        mk_team_sharded(size, ShardLayout::single(size), None)
    }

    pub(crate) fn mk_team_sharded(
        size: usize,
        layout: ShardLayout,
        affinity: Option<u64>,
    ) -> Arc<TeamShared> {
        let be = NativeBackend::new();
        Arc::new(TeamShared::new(
            size,
            Barrier::with_layout(size, BarrierKind::Centralized, &layout),
            be.alloc_shared_words(TeamShared::reduce_words_len(size))
                .unwrap(),
            Arc::new(Tracer::new(false)),
            None,
            layout,
            affinity,
        ))
    }

    #[test]
    fn drain_tasks_runs_everything() {
        let team = mk_team(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let h = Arc::clone(&hits);
            team.push_task(
                0,
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert!(team.drain_tasks(0));
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(team.outstanding_tasks.load(Ordering::Relaxed), 0);
        assert!(!team.drain_tasks(0), "second drain finds nothing");
    }

    #[test]
    fn drain_steals_from_other_members() {
        let team = mk_team(4);
        let hits = Arc::new(AtomicU64::new(0));
        // Queue on members 1..3; member 0 must reach all of them by
        // stealing.
        for tid in 1..4 {
            for _ in 0..3 {
                let h = Arc::clone(&hits);
                team.push_task(
                    tid,
                    Box::new(move || {
                        h.fetch_add(1, Ordering::Relaxed);
                    }),
                );
            }
        }
        assert!(team.drain_tasks(0));
        assert_eq!(hits.load(Ordering::Relaxed), 9);
        assert_eq!(team.outstanding_tasks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn task_overflow_spills_to_injector() {
        let team = mk_team(1);
        let hits = Arc::new(AtomicU64::new(0));
        let n = (LOCAL_TASK_RING + 50) as u64;
        for _ in 0..n {
            let h = Arc::clone(&hits);
            team.push_task(
                0,
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert!(
            !team.shard_injectors[0].is_empty(),
            "overflow reached the shard injector"
        );
        assert!(team.drain_tasks(0));
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn local_work_never_crosses_shards() {
        // 4 members over 2 shards (round-robin: shard 0 = {0,2}, shard 1
        // = {1,3}).  All work lives in shard 0; member 0 drains it all by
        // popping its own ring and stealing from its shard-mate.  The
        // remote counter must stay zero: local sources never ran dry
        // while shard 0 still had work, and shard 1 never had any.
        let team = mk_team_sharded(4, ShardLayout::uniform(2, 4), None);
        let hits = Arc::new(AtomicU64::new(0));
        for tid in [0usize, 2] {
            for _ in 0..6 {
                let h = Arc::clone(&hits);
                team.push_task(
                    tid,
                    Box::new(move || {
                        h.fetch_add(1, Ordering::Relaxed);
                    }),
                );
            }
        }
        assert!(team.drain_tasks(0));
        assert_eq!(hits.load(Ordering::Relaxed), 12);
        assert!(
            team.counters.steals_local.load(Ordering::Relaxed) > 0,
            "member 0 must have stolen from shard-mate 2"
        );
        assert_eq!(
            team.counters.steals_remote.load(Ordering::Relaxed),
            0,
            "no work ever crossed the shard boundary"
        );
    }

    #[test]
    fn starved_shard_steals_remotely() {
        // All work pinned to shard 0; member 1 (shard 1) is starved and
        // must escalate across the shard boundary to make progress.
        let team = mk_team_sharded(4, ShardLayout::uniform(2, 4), None);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let h = Arc::clone(&hits);
            team.push_task(
                0,
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert!(team.drain_tasks(1), "starved member found remote work");
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert!(
            team.counters.steals_remote.load(Ordering::Relaxed) > 0,
            "cross-shard steals keep a starved shard fed"
        );
    }

    #[test]
    fn keyed_tasks_land_on_home_shard() {
        let layout = ShardLayout::uniform(4, 8);
        let key = 0xFEEDu64;
        let home = layout.shard_for_key(key);
        let team = mk_team_sharded(8, layout.clone(), None);
        // Spawn from a member of a *different* shard: the task must go
        // to the home shard's injector, not the spawner's ring.
        let spawner = layout.members_of((home + 1) % 4)[0];
        team.push_task_keyed(spawner, key, Box::new(|| {}));
        assert!(
            !team.shard_injectors[home].is_empty(),
            "keyed task staged on its home shard"
        );
        assert!(team.task_rings[spawner].pop().is_none());
        // A home-shard member picks it up without a remote steal.
        assert!(team.drain_tasks(layout.members_of(home)[0]));
        assert_eq!(team.counters.steals_remote.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ambient_affinity_routes_spawns_to_home_shard() {
        let layout = ShardLayout::uniform(2, 4);
        let key = 7u64;
        let home = layout.shard_for_key(key);
        let team = mk_team_sharded(4, layout.clone(), Some(key));
        // A member outside the home shard spawns a plain task: the
        // ambient key redirects it into the home shard's injector.
        let outsider = layout.members_of((home + 1) % 2)[0];
        team.push_task(outsider, Box::new(|| {}));
        assert!(!team.shard_injectors[home].is_empty());
        assert!(team.task_rings[outsider].pop().is_none());
        assert!(team.drain_tasks(layout.members_of(home)[0]));
    }

    #[test]
    fn tasks_spawned_from_tasks_all_complete() {
        // A queued task that queues more tasks (OpenMP allows arbitrary
        // nesting); a barrier-style drain loop must see all of them,
        // including grandchildren queued mid-drain.
        let team = mk_team(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let team2 = Arc::clone(&team);
            let h = Arc::clone(&hits);
            team.push_task(
                0,
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        let team3 = Arc::clone(&team2);
                        let h = Arc::clone(&h);
                        team2.push_task(
                            1,
                            Box::new(move || {
                                h.fetch_add(1, Ordering::Relaxed);
                                let h = Arc::clone(&h);
                                team3.push_task(
                                    0,
                                    Box::new(move || {
                                        h.fetch_add(1, Ordering::Relaxed);
                                    }),
                                );
                            }),
                        );
                    }
                }),
            );
        }
        // The worker barrier's completion loop: drain until outstanding
        // hits zero, which must include tasks spawned *during* the drain.
        while team.outstanding_tasks.load(Ordering::Acquire) > 0 {
            team.drain_tasks(0);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 4 + 4 * 3 + 4 * 3);
    }

    #[test]
    fn panicking_task_is_recorded_not_propagated() {
        let team = mk_team(2);
        team.push_task(1, Box::new(|| panic!("task boom")));
        // Member 0 steals and runs it; the panic must be captured.
        assert!(team.drain_tasks(0));
        assert_eq!(team.outstanding_tasks.load(Ordering::Relaxed), 0);
        let p = team.panic.lock().take().expect("panic recorded");
        assert_eq!(*p.downcast_ref::<&str>().unwrap(), "task boom");
    }

    #[test]
    fn first_panic_wins() {
        let team = mk_team(1);
        team.record_panic(Box::new("first"));
        team.record_panic(Box::new("second"));
        let p = team.panic.lock().take().unwrap();
        assert_eq!(*p.downcast_ref::<&str>().unwrap(), "first");
    }

    #[test]
    fn construct_ring_shares_state_per_seq() {
        let team = mk_team(2);
        let a = team.construct(0, 0, || ConstructState::new(0, 10));
        let b = team.construct(1, 0, || ConstructState::new(99, 99));
        assert!(Arc::ptr_eq(&a, &b), "same seq names the same construct");
        assert_eq!(a.cursor.load(Ordering::Relaxed), 0, "first init wins");
        team.construct_done(0, &a);
        team.construct_done(0, &b);
        // Slot released: seq CONSTRUCT_RING reuses it with fresh state.
        let c = team.construct(0, CONSTRUCT_RING as u64, || ConstructState::new(7, 7));
        assert_eq!(c.cursor.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn construct_ring_lap_waits_for_release() {
        // Size-1 team: every construct is released immediately, so a long
        // seq chain must wrap the ring cleanly.
        let team = mk_team(1);
        for seq in 0..(CONSTRUCT_RING as u64 * 3) {
            let st = team.construct(0, seq, || ConstructState::new(seq, 1));
            assert_eq!(st.cursor.load(Ordering::Relaxed), seq);
            team.construct_done(seq, &st);
        }
    }

    #[test]
    fn slot_assign_exit_protocol() {
        let slot = PoolSlot::new();
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || s2.worker_loop());
        let team = mk_team(2);
        // tid 1 runs a trivial region; master (this thread) is tid 0.
        let f: &(dyn Fn(&crate::worker::Worker) + Sync) = &|w| {
            assert_eq!(w.num_threads(), 2);
        };
        let rt = crate::runtime::RtInner::for_tests();
        slot.assign(JobMsg {
            team: Arc::clone(&team),
            tid: 1,
            func: RegionFn(f as *const _),
            rt: &*rt,
            profiling: false,
        });
        // Master member participates so the implicit barrier completes.
        run_region_member(&JobMsg {
            team: Arc::clone(&team),
            tid: 0,
            func: RegionFn(f as *const _),
            rt: &*rt,
            profiling: false,
        });
        slot.send_exit();
        h.join().unwrap();
        assert!(team.panic.lock().is_none());
    }
}
