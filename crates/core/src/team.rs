//! Teams, the worker pool, and the fork/join machinery.
//!
//! Mirrors libGOMP's "dock" design: the runtime keeps a pool of sleeping
//! worker threads; `parallel` wakes `n-1` of them (spawning more through the
//! backend if the pool is short), hands every member the region closure and
//! a shared `TeamShared`, runs thread 0 on the encountering thread, and
//! joins at the implicit end-of-region barrier.  Workers go back to sleep in
//! their dock slot afterwards, so steady-state region launch costs no thread
//! creation — the behaviour EPCC's `parallel` overhead measures.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex as PlMutex};

use crate::backend::SharedWords;
use crate::barrier::Barrier;
use crate::sync::BackendMutex;

/// A queued explicit task.  Lifetime-erased to the region (see the SAFETY
/// discussion in [`crate::worker::Worker::task`]).
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared per-construct state (dynamic/guided loop cursors, `single`
/// arbitration, copyprivate staging), keyed by construct sequence number.
pub(crate) struct ConstructState {
    /// Next unclaimed iteration (dynamic/guided/sections cursor).
    pub cursor: AtomicU64,
    /// Iterations not yet handed out (guided's shrinking share).
    pub remaining: AtomicU64,
    /// `single`'s first-arriver flag.
    pub claimed: AtomicBool,
    /// Copyprivate / generic-reduction staging slot.
    pub stage: PlMutex<Option<Box<dyn Any + Send>>>,
    /// Members that completed the construct (for table GC).
    pub finished: AtomicUsize,
}

impl ConstructState {
    pub(crate) fn new(start: u64, total: u64) -> Self {
        ConstructState {
            cursor: AtomicU64::new(start),
            remaining: AtomicU64::new(total),
            claimed: AtomicBool::new(false),
            stage: PlMutex::new(None),
            finished: AtomicUsize::new(0),
        }
    }
}

/// Per-team always-on counters; folded into the runtime's totals at join.
#[derive(Default)]
pub(crate) struct TeamCounters {
    pub barriers: AtomicU64,
    pub criticals: AtomicU64,
    pub singles: AtomicU64,
    pub loops: AtomicU64,
    pub tasks: AtomicU64,
}

/// Everything a team shares for the duration of one parallel region.
pub(crate) struct TeamShared {
    /// Team size (≥ 1).
    pub size: usize,
    /// The team barrier (implicit and explicit uses).
    pub barrier: Barrier,
    /// Construct table: seq → state.  Guarded by a *backend* lock — the
    /// gomp_mutex substitution of §5B.3.
    pub constructs: BackendMutex<HashMap<u64, Arc<ConstructState>>>,
    /// Reduction scratch: `size` value slots + one result slot, allocated
    /// through the backend — the gomp_malloc substitution of §5B.2.
    pub reduce_words: Arc<dyn SharedWords>,
    /// Explicit task queue (barriers are task scheduling points).
    pub tasks: SegQueue<Task>,
    /// Tasks queued or running, not yet finished.
    pub outstanding_tasks: AtomicUsize,
    /// `ordered` cursor: the loop index allowed to run its ordered block.
    pub ordered_cursor: PlMutex<u64>,
    pub ordered_cv: Condvar,
    /// First panic payload from any member (re-thrown by the master).
    pub panic: PlMutex<Option<Box<dyn Any + Send>>>,
    /// Per-member CPU time for this region (profiling only).
    pub cpu_ns: Vec<AtomicU64>,
    pub counters: TeamCounters,
}

impl TeamShared {
    /// Run queued tasks until the queue is momentarily empty; returns `true`
    /// if at least one task ran.
    pub(crate) fn drain_tasks(&self) -> bool {
        let mut any = false;
        while let Some(t) = self.tasks.pop() {
            t();
            self.outstanding_tasks.fetch_sub(1, Ordering::AcqRel);
            self.counters.tasks.fetch_add(1, Ordering::Relaxed);
            any = true;
        }
        any
    }

    /// Record a panic payload (first wins).
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// What a dock slot is being told to do.
pub(crate) enum SlotState {
    /// Nothing; wait for work.
    Idle,
    /// Run this region member.
    Job(JobMsg),
    /// Exit the worker loop (runtime shutdown).
    Exit,
}

/// A region assignment for one pool worker.
pub(crate) struct JobMsg {
    pub team: Arc<TeamShared>,
    pub tid: usize,
    /// The region closure, lifetime-erased.  SAFETY: the master joins the
    /// end-of-region barrier before `parallel` returns, and members never
    /// touch the closure after arriving at that barrier, so the referent
    /// outlives every dereference.
    pub func: RegionFn,
    /// The owning runtime, for construct bookkeeping.  SAFETY: the master
    /// holds the runtime alive for the whole region.
    pub rt: *const crate::runtime::RtInner,
    pub profiling: bool,
}

// SAFETY: see the field-level comments on `func` and `rt`; both raw
// pointers are only dereferenced while the master provably keeps their
// referents alive (it is blocked in the same region).
unsafe impl Send for JobMsg {}

/// Lifetime-erased pointer to the region closure.
#[derive(Clone, Copy)]
pub(crate) struct RegionFn(pub *const (dyn Fn(&crate::worker::Worker) + Sync));

impl RegionFn {
    /// # Safety
    /// Caller must guarantee the referent is still alive (region running).
    pub(crate) unsafe fn call(&self, w: &crate::worker::Worker) {
        unsafe { (*self.0)(w) }
    }
}

/// One dock slot: a mailbox between the master and a pool worker.
pub(crate) struct PoolSlot {
    pub state: PlMutex<SlotState>,
    pub cv: Condvar,
}

impl PoolSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(PoolSlot { state: PlMutex::new(SlotState::Idle), cv: Condvar::new() })
    }

    /// Master side: hand a job to this slot (waits for the slot to be idle,
    /// which it almost always already is).
    pub(crate) fn assign(&self, job: JobMsg) {
        let mut st = self.state.lock();
        while !matches!(*st, SlotState::Idle) {
            self.cv.wait(&mut st);
        }
        *st = SlotState::Job(job);
        drop(st);
        self.cv.notify_all();
    }

    /// Master side at shutdown.
    pub(crate) fn send_exit(&self) {
        let mut st = self.state.lock();
        while !matches!(*st, SlotState::Idle) {
            self.cv.wait(&mut st);
        }
        *st = SlotState::Exit;
        drop(st);
        self.cv.notify_all();
    }

    /// Worker side: the dock loop.
    pub(crate) fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock();
                loop {
                    match &*st {
                        SlotState::Idle => self.cv.wait(&mut st),
                        SlotState::Exit => return,
                        SlotState::Job(_) => break,
                    }
                }
                match std::mem::replace(&mut *st, SlotState::Idle) {
                    SlotState::Job(j) => j,
                    _ => unreachable!("checked above"),
                }
            };
            // Run outside the slot lock. Mark idle only after the region
            // member fully completes, so the master's next assign can't
            // overlap this region.
            run_region_member(&job);
            self.cv.notify_all();
        }
    }
}

/// Execute one team member: profiling bracket, region closure with panic
/// capture, then the implicit end-of-region barrier.
pub(crate) fn run_region_member(job: &JobMsg) {
    let team = &job.team;
    // SAFETY: the master keeps the runtime alive for the whole region (it
    // is itself executing a member of the same team).
    let rt = unsafe { &*job.rt };
    let in_parallel_prev = crate::runtime::enter_region_flag();
    let w = crate::worker::Worker::new(team, rt, job.tid);
    let start = if job.profiling { Some(mca_platform::vtime::thread_cpu_ns()) } else { None };
    // SAFETY: the closure outlives the region; see RegionFn.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
        job.func.call(&w)
    }));
    if let Err(payload) = result {
        team.record_panic(payload);
    }
    if let Some(t0) = start {
        let dt = mca_platform::vtime::thread_cpu_ns().saturating_sub(t0);
        team.cpu_ns[job.tid].fetch_add(dt, Ordering::Relaxed);
    }
    // Implicit end-of-region barrier: also guarantees all explicit tasks
    // complete (OpenMP's rule), via the worker's task-draining barrier.
    w.barrier();
    crate::runtime::restore_region_flag(in_parallel_prev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, NativeBackend};
    use crate::barrier::BarrierKind;

    pub(crate) fn mk_team(size: usize) -> Arc<TeamShared> {
        let be = NativeBackend::new();
        Arc::new(TeamShared {
            size,
            barrier: Barrier::new(size, BarrierKind::Centralized),
            constructs: BackendMutex::new(be.new_lock(), HashMap::new()),
            reduce_words: be.alloc_shared_words(size + 1),
            tasks: SegQueue::new(),
            outstanding_tasks: AtomicUsize::new(0),
            ordered_cursor: PlMutex::new(0),
            ordered_cv: Condvar::new(),
            panic: PlMutex::new(None),
            cpu_ns: (0..size).map(|_| AtomicU64::new(0)).collect(),
            counters: TeamCounters::default(),
        })
    }

    #[test]
    fn drain_tasks_runs_everything() {
        let team = mk_team(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let h = Arc::clone(&hits);
            team.outstanding_tasks.fetch_add(1, Ordering::AcqRel);
            team.tasks.push(Box::new(move || {
                h.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert!(team.drain_tasks());
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(team.outstanding_tasks.load(Ordering::Relaxed), 0);
        assert!(!team.drain_tasks(), "second drain finds nothing");
    }

    #[test]
    fn first_panic_wins() {
        let team = mk_team(1);
        team.record_panic(Box::new("first"));
        team.record_panic(Box::new("second"));
        let p = team.panic.lock().take().unwrap();
        assert_eq!(*p.downcast_ref::<&str>().unwrap(), "first");
    }

    #[test]
    fn slot_assign_exit_protocol() {
        let slot = PoolSlot::new();
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || s2.worker_loop());
        let team = mk_team(2);
        // tid 1 runs a trivial region; master (this thread) is tid 0.
        let f: &(dyn Fn(&crate::worker::Worker) + Sync) = &|w| {
            assert_eq!(w.num_threads(), 2);
        };
        let rt = crate::runtime::RtInner::for_tests();
        slot.assign(JobMsg {
            team: Arc::clone(&team),
            tid: 1,
            func: RegionFn(f as *const _),
            rt: &*rt,
            profiling: false,
        });
        // Master member participates so the implicit barrier completes.
        run_region_member(&JobMsg {
            team: Arc::clone(&team),
            tid: 0,
            func: RegionFn(f as *const _),
            rt: &*rt,
            profiling: false,
        });
        slot.send_exit();
        h.join().unwrap();
        assert!(team.panic.lock().is_none());
    }
}
