//! The [`Runtime`]: pool ownership, fork/join, and the public entry points.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mca_sync::Mutex as PlMutex;
use romp_trace::{EventKind, RunSummary, Trace, Tracer};

use crate::backend::{
    make_backend, Backend, BackendKind, DeadlockReport, NativeBackend, RegionLock, SharedWords,
    WorkerJoin,
};
use crate::barrier::Barrier;
use crate::cancel::CancelToken;
use crate::config::Config;
use crate::lock::OmpLock;
use crate::schedule::Schedule;
use crate::stats::{ProfileAccum, RuntimeStats, StatsSnapshot};
use crate::sync::BackendMutex;
use crate::team::{run_region_member, JobMsg, PoolSlot, RegionFn, TeamShared};
use crate::worker::{ReduceOp, Worker};
use crate::RompError;

use mca_platform::vtime::RegionProfile;
use mca_platform::{ShardLayout, Topology};

thread_local! {
    /// Set while this thread is executing inside a parallel region, so a
    /// nested `parallel` serializes (the OpenMP `OMP_NESTED=false` default).
    /// Maintained by `run_region_member` for every team member — masters
    /// and pool workers alike — because a nested `parallel` from a pool
    /// worker would otherwise block on the region gate the master holds.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Flag accessors for `team::run_region_member`.
pub(crate) fn enter_region_flag() -> bool {
    IN_PARALLEL.with(|c| c.replace(true))
}

pub(crate) fn restore_region_flag(prev: bool) {
    IN_PARALLEL.with(|c| c.set(prev));
}

/// Hard cap on team size, protecting the host from runaway requests.
const MAX_TEAM: usize = 512;

/// Erase the region closure's lifetime into a [`RegionFn`].
///
/// SAFETY: the returned pointer is only dereferenced by team members while
/// the region runs, and `parallel` does not return until every member has
/// passed the end-of-region barrier (i.e. finished calling the closure), so
/// the referent strictly outlives every dereference.
fn erase_region_fn<F: Fn(&Worker) + Sync>(f: &F) -> RegionFn {
    let short: &(dyn Fn(&Worker) + Sync) = f;
    // Fat-pointer lifetime transmute; layout is identical.
    let long: &'static (dyn Fn(&Worker) + Sync + 'static) = unsafe { std::mem::transmute(short) };
    RegionFn(long as *const _)
}

/// A native lock, for the last-resort paths where the active backend
/// cannot produce one (native lock creation itself cannot fail).
fn native_lock() -> Arc<dyn RegionLock> {
    NativeBackend::new()
        .new_lock()
        .expect("native lock creation is infallible")
}

pub(crate) struct RtInner {
    /// The active backend.  Swapped (under the mutex) for its
    /// [`Backend::fallback`] when it reports itself poisoned — the
    /// MCA→native graceful-degradation path of DESIGN.md §5.
    backend: PlMutex<Arc<dyn Backend>>,
    /// Backends replaced by a fallback swap.  Kept alive — locks and pool
    /// workers created through them may still be in use — and shut down
    /// when the runtime drops.
    retired: PlMutex<Vec<Arc<dyn Backend>>>,
    /// Whether a fallback swap has ever happened.
    degraded: AtomicBool,
    pub cfg: Config,
    pool: PlMutex<Vec<Arc<PoolSlot>>>,
    joins: PlMutex<Vec<Box<dyn WorkerJoin>>>,
    /// Serializes parallel regions launched from different threads; the
    /// dock slots are single-occupancy.
    region_gate: PlMutex<()>,
    /// Named critical-section locks (`#pragma omp critical(name)` is
    /// program-global in OpenMP; runtime-global here).
    criticals: BackendMutex<HashMap<String, Arc<dyn RegionLock>>>,
    pub stats: RuntimeStats,
    profile: PlMutex<ProfileAccum>,
    profiling: AtomicBool,
    /// The event recorder.  Armed by `cfg.trace`; disarmed, every trace
    /// site in the runtime costs one relaxed load.
    pub(crate) tracer: Arc<Tracer>,
    /// The ambient cancel token: armed by a supervisor (the serving
    /// dispatcher) before running a job, cloned into every team forked
    /// while armed.  Ambient rather than a `parallel` parameter because
    /// kernels fork regions internally and cannot thread one through.
    cancel: PlMutex<Option<CancelToken>>,
    /// The placement topology handed to [`Runtime::with_topology`]:
    /// shards every team by cluster.  `None` (and no `cfg.shards`
    /// override) runs unsharded.  Kept outside `Config` — `Topology`
    /// carries `f64` model parameters and is not `Eq`.
    topology: Option<Arc<Topology>>,
    /// The ambient affinity key (same discipline as `cancel`): armed by
    /// the dispatcher before running a job, hashed to a home shard in
    /// every team forked while armed.
    affinity: PlMutex<Option<u64>>,
}

impl RtInner {
    /// The active backend (cheap Arc clone).
    pub(crate) fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend.lock())
    }

    /// If the active backend has poisoned itself, swap in its fallback,
    /// logging one structured warning.  Returns whether a swap happened.
    fn heal_backend(&self) -> bool {
        let mut cur = self.backend.lock();
        if !cur.poisoned() {
            return false;
        }
        let Some(fb) = cur.fallback() else {
            return false;
        };
        let fb: Arc<dyn Backend> = Arc::from(fb);
        fb.attach_tracer(&self.tracer);
        let reason = cur
            .failure_reason()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "unspecified persistent failure".to_string());
        eprintln!(
            "romp[WARN] backend={} degraded ({reason}); falling back to backend={}",
            cur.name(),
            fb.name()
        );
        let old = std::mem::replace(&mut *cur, fb);
        drop(cur);
        self.retired.lock().push(old);
        self.degraded.store(true, Ordering::Release);
        self.tracer.instant(EventKind::Fallback, u32::MAX, 0, 0);
        if self.tracer.armed() {
            self.tracer.metrics().counter("backend.fallback").incr();
        }
        true
    }

    /// Create a lock through the active backend, swapping in the fallback
    /// backend and retrying once on persistent failure.
    pub(crate) fn backend_new_lock(&self) -> Result<Arc<dyn RegionLock>, RompError> {
        match self.backend().new_lock() {
            Ok(l) => Ok(l),
            Err(e) => {
                if self.heal_backend() {
                    self.backend().new_lock()
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Wait until no pool worker is mid-region, so a trace drain observes
    /// every member's trailing events.  Must not be called from inside a
    /// parallel region (the caller's own member would never go idle).
    pub(crate) fn quiesce_pool(&self) {
        let slots: Vec<_> = self.pool.lock().iter().map(Arc::clone).collect();
        for slot in slots {
            slot.wait_idle();
        }
    }

    /// Allocate shared words, with the same heal-and-retry policy.
    fn backend_alloc(&self, words: usize) -> Result<Arc<dyn SharedWords>, RompError> {
        match self.backend().alloc_shared_words(words) {
            Ok(w) => Ok(w),
            Err(e) => {
                if self.heal_backend() {
                    self.backend().alloc_shared_words(words)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// The lock backing `critical(name)`, created through the backend on
    /// first use (Listing 4's `mrapi_mutex_create` initialization step).
    /// Infallible: a backend that cannot produce a lock has already
    /// poisoned itself, and the native last resort cannot fail.
    pub(crate) fn critical_lock(&self, name: &str) -> Arc<dyn RegionLock> {
        self.criticals.with(|map| match map.get(name) {
            Some(l) => Arc::clone(l),
            None => {
                let l = self.backend_new_lock().unwrap_or_else(|_| native_lock());
                map.insert(name.to_string(), Arc::clone(&l));
                l
            }
        })
    }

    /// A minimal native-backed inner for unit tests in sibling modules.
    #[cfg(test)]
    pub(crate) fn for_tests() -> Arc<RtInner> {
        let backend: Arc<dyn Backend> = Arc::new(crate::backend::NativeBackend::new());
        let criticals = BackendMutex::new(backend.new_lock().unwrap(), HashMap::new());
        Arc::new(RtInner {
            backend: PlMutex::new(backend),
            retired: PlMutex::new(Vec::new()),
            degraded: AtomicBool::new(false),
            cfg: Config::default(),
            pool: PlMutex::new(Vec::new()),
            joins: PlMutex::new(Vec::new()),
            region_gate: PlMutex::new(()),
            criticals,
            stats: RuntimeStats::default(),
            profile: PlMutex::new(ProfileAccum::default()),
            profiling: AtomicBool::new(false),
            tracer: Arc::new(Tracer::new(false)),
            cancel: PlMutex::new(None),
            topology: None,
            affinity: PlMutex::new(None),
        })
    }

    /// The currently armed ambient cancel token, if any.
    pub(crate) fn current_cancel(&self) -> Option<CancelToken> {
        self.cancel.lock().clone()
    }

    /// The currently armed ambient affinity key, if any.
    pub(crate) fn current_affinity(&self) -> Option<u64> {
        *self.affinity.lock()
    }

    /// The shard layout a team of `size` gets: an explicit
    /// `cfg.shards` override wins, then the placement topology (one
    /// shard per cluster in use), else a single shard.
    pub(crate) fn team_layout(&self, size: usize) -> ShardLayout {
        match (self.cfg.shards, self.topology.as_deref()) {
            (Some(s), _) => ShardLayout::uniform(s, size),
            (None, Some(topo)) => ShardLayout::from_topology(topo, size),
            (None, None) => ShardLayout::single(size),
        }
    }

    fn new_team(&self, size: usize) -> Result<Arc<TeamShared>, RompError> {
        let layout = self.team_layout(size);
        Ok(Arc::new(TeamShared::new(
            size,
            Barrier::with_layout(size, self.cfg.barrier, &layout),
            self.backend_alloc(TeamShared::reduce_words_len(size))?,
            Arc::clone(&self.tracer),
            self.current_cancel(),
            layout,
            self.current_affinity(),
        )))
    }

    /// Grow the dock to at least `n` slots, swapping in the fallback
    /// backend if a spawn fails persistently.  Workers already docked stay
    /// valid across the swap — the pool loop is backend-agnostic.
    fn ensure_pool(self: &Arc<Self>, n: usize) -> Result<(), RompError> {
        let mut pool = self.pool.lock();
        while pool.len() < n {
            let slot = PoolSlot::new();
            let label = format!("romp-worker-{}", pool.len() + 1);
            let s2 = Arc::clone(&slot);
            let join = match self
                .backend()
                .spawn_worker(label.clone(), Box::new(move || s2.worker_loop()))
            {
                Ok(j) => j,
                Err(e) => {
                    if !self.heal_backend() {
                        return Err(e);
                    }
                    // A failed creation consumed its closure; rebuild it
                    // around the same slot for the fallback backend.
                    let s3 = Arc::clone(&slot);
                    self.backend()
                        .spawn_worker(label, Box::new(move || s3.worker_loop()))?
                }
            };
            self.joins.lock().push(join);
            pool.push(slot);
        }
        Ok(())
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        for slot in self.pool.lock().iter() {
            slot.send_exit();
        }
        for join in self.joins.lock().drain(..) {
            join.join();
        }
        self.backend.lock().shutdown();
        for be in self.retired.lock().drain(..) {
            be.shutdown();
        }
        // With `ROMP_TRACE_OUT` set, the runtime's last act is writing the
        // chrome://tracing view of everything still buffered.
        if let Some(path) = self.cfg.trace_out.as_deref() {
            if self.tracer.armed() {
                let json = self.tracer.drain().chrome_json();
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("romp[WARN] could not write trace to {path}: {e}");
                }
            }
        }
    }
}

/// The OpenMP-style runtime: owns a backend and a persistent worker pool.
///
/// Cheap to clone (shared handle).  See the crate docs for an overview and
/// [`Worker`] for the constructs available inside a region.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

impl Runtime {
    /// Environment-configured runtime (`ROMP_BACKEND`, `OMP_NUM_THREADS`,
    /// `OMP_SCHEDULE`, ...).
    pub fn new() -> Result<Self, RompError> {
        Self::with_config(Config::from_env())
    }

    /// Default configuration on the given backend.
    pub fn with_backend(kind: BackendKind) -> Result<Self, RompError> {
        Self::with_config(Config::default().with_backend(kind))
    }

    /// Fully explicit construction.  A non-native backend that fails to
    /// initialize persistently (e.g. under an injected fault schedule)
    /// degrades to the native backend with a warning instead of failing
    /// construction.
    pub fn with_config(cfg: Config) -> Result<Self, RompError> {
        let mut started_degraded = false;
        let backend: Arc<dyn Backend> = match make_backend(&cfg) {
            Ok(be) => Arc::from(be),
            Err(e) if cfg.backend != BackendKind::Native => {
                eprintln!(
                    "romp[WARN] backend={} failed to initialize ({e}); \
                     falling back to backend=native",
                    cfg.backend.label()
                );
                started_degraded = true;
                Arc::new(NativeBackend::new())
            }
            Err(e) => return Err(e),
        };
        Self::assemble(cfg, backend, started_degraded, None)
    }

    /// Environment-configured runtime placed on a [`Topology`]: every
    /// team is sharded by cluster — each shard gets its own task
    /// injector, work stealing escalates outward (shard-mates first,
    /// cross-shard only when the shard is dry), and teams spanning more
    /// than one shard synchronize through a hierarchical barrier.  An
    /// explicit [`Config::shards`] override (or `ROMP_SHARDS`) beats the
    /// topology-derived count.
    ///
    /// ```
    /// use mca_platform::Topology;
    /// use romp::Runtime;
    ///
    /// // Three clusters of four dual-threaded cores: a 6-thread team
    /// // round-robins the clusters, so it runs as 3 shards of 2.
    /// let rt = Runtime::with_topology(Topology::t4240rdb()).unwrap();
    /// assert_eq!(rt.shard_layout(6).num_shards(), 3);
    ///
    /// // Regions run normally on the sharded pool (hierarchical barrier
    /// // underneath): steal counts land in `stats().steals_{local,remote}`.
    /// let sum = rt.parallel_reduce_sum(6, 0..100, |i| i);
    /// assert_eq!(sum, 4950);
    /// ```
    pub fn with_topology(topo: Topology) -> Result<Self, RompError> {
        Self::with_config_and_topology(Config::from_env(), topo)
    }

    /// [`Runtime::with_topology`] with an explicit [`Config`].
    ///
    /// ```
    /// use mca_platform::Topology;
    /// use romp::{Config, Runtime};
    ///
    /// // --shards style override: the config wins over the topology.
    /// let rt = Runtime::with_config_and_topology(
    ///     Config::default().with_shards(2),
    ///     Topology::t4240rdb(),
    /// ).unwrap();
    /// assert_eq!(rt.shard_layout(8).num_shards(), 2);
    /// ```
    pub fn with_config_and_topology(cfg: Config, topo: Topology) -> Result<Self, RompError> {
        let mut started_degraded = false;
        let backend: Arc<dyn Backend> = match make_backend(&cfg) {
            Ok(be) => Arc::from(be),
            Err(e) if cfg.backend != BackendKind::Native => {
                eprintln!(
                    "romp[WARN] backend={} failed to initialize ({e}); \
                     falling back to backend=native",
                    cfg.backend.label()
                );
                started_degraded = true;
                Arc::new(NativeBackend::new())
            }
            Err(e) => return Err(e),
        };
        Self::assemble(cfg, backend, started_degraded, Some(Arc::new(topo)))
    }

    /// Construction on a caller-built backend (targeted fault tests,
    /// shared MRAPI systems).  `cfg.backend` is ignored in favour of the
    /// given backend's kind.
    pub fn with_config_and_backend(
        cfg: Config,
        backend: Box<dyn Backend>,
    ) -> Result<Self, RompError> {
        Self::assemble(cfg, Arc::from(backend), false, None)
    }

    fn assemble(
        cfg: Config,
        backend: Arc<dyn Backend>,
        degraded: bool,
        topology: Option<Arc<Topology>>,
    ) -> Result<Self, RompError> {
        // If the backend cannot even produce the criticals guard it is
        // poisoned already; the first region boundary will swap it out.
        let guard = backend.new_lock().unwrap_or_else(|_| native_lock());
        let criticals = BackendMutex::new(guard, HashMap::new());
        let profiling = cfg.profiling;
        let tracer = Arc::new(Tracer::new(cfg.trace));
        backend.attach_tracer(&tracer);
        Ok(Runtime {
            inner: Arc::new(RtInner {
                backend: PlMutex::new(backend),
                retired: PlMutex::new(Vec::new()),
                degraded: AtomicBool::new(degraded),
                cfg,
                pool: PlMutex::new(Vec::new()),
                joins: PlMutex::new(Vec::new()),
                region_gate: PlMutex::new(()),
                criticals,
                stats: RuntimeStats::default(),
                profile: PlMutex::new(ProfileAccum::default()),
                profiling: AtomicBool::new(profiling),
                tracer,
                cancel: PlMutex::new(None),
                topology,
                affinity: PlMutex::new(None),
            }),
        })
    }

    /// The placement topology this runtime was built on, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.inner.topology.as_deref()
    }

    /// The [`ShardLayout`] a team of `team_size` would get (0 = the
    /// default team size): the `shards` config override, else the
    /// topology's cluster placement, else one shard.
    pub fn shard_layout(&self, team_size: usize) -> ShardLayout {
        let n = self.normalize_team(team_size);
        self.inner.team_layout(n)
    }

    /// Which backend this runtime currently uses (reflects degradation:
    /// after an MCA→native fallback this reports `Native`).
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.backend().kind()
    }

    /// Whether the runtime has degraded away from its configured backend
    /// (at construction or mid-run).
    pub fn degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Acquire)
    }

    /// Drain over-long lock-wait diagnostics from the active backend and
    /// any retired (degraded-away) backends.
    pub fn take_deadlock_reports(&self) -> Vec<DeadlockReport> {
        let mut out = self.inner.backend().take_deadlock_reports();
        for be in self.inner.retired.lock().iter() {
            out.extend(be.take_deadlock_reports());
        }
        out
    }

    /// The construction configuration.
    pub fn config(&self) -> &Config {
        &self.inner.cfg
    }

    /// Default team size: the configured `OMP_NUM_THREADS`, else the
    /// backend's online-processor count (§5B.4 metadata on the MCA
    /// backend).
    pub fn max_threads(&self) -> usize {
        self.inner
            .cfg
            .num_threads
            .unwrap_or_else(|| self.inner.backend().online_processors())
    }

    /// `omp_in_parallel` for the calling thread.
    pub fn in_parallel() -> bool {
        IN_PARALLEL.with(|c| c.get())
    }

    fn normalize_team(&self, requested: usize) -> usize {
        let n = if requested == 0 {
            self.max_threads()
        } else {
            requested
        };
        let n = if self.inner.cfg.dynamic {
            n.min(self.inner.backend().online_processors())
        } else {
            n
        };
        n.clamp(1, MAX_TEAM)
    }

    /// `#pragma omp parallel num_threads(n)` — run `f` on a team of `n`
    /// members (0 = default size).  Thread 0 is the calling thread; the
    /// region ends with an implicit barrier; member panics propagate to the
    /// caller after the region completes.
    ///
    /// Never aborts on backend failure: persistent MRAPI trouble degrades
    /// to the native backend, and if even forking is impossible the region
    /// runs on a team of one.  Use [`Runtime::try_parallel`] to observe
    /// the failure instead.
    pub fn parallel<F>(&self, num_threads: usize, f: F)
    where
        F: Fn(&Worker) + Sync,
    {
        if Self::in_parallel() {
            // Nested region: OpenMP default is a team of one (serialized).
            match self.run_inline_team(&f) {
                // A cancelled nested region must not re-run on the native
                // inline path — the whole point is to stop.
                Ok(()) | Err(RompError::Cancelled) => {}
                Err(_) => self.run_inline_native(&f),
            }
            return;
        }
        match self.fork_join(num_threads, &f) {
            Ok(()) => {}
            // Cancellation is not a failure to absorb: the region was asked
            // to stop, so stop — no team-of-one retry.
            Err(RompError::Cancelled) => {}
            Err(e) => {
                eprintln!("romp[WARN] parallel region fell back to a team of one: {e}");
                match self.run_inline_team(&f) {
                    Ok(()) | Err(RompError::Cancelled) => {}
                    Err(_) => self.run_inline_native(&f),
                }
            }
        }
    }

    /// Fallible [`Runtime::parallel`]: on persistent backend failure the
    /// typed error is returned instead of degrading to a team of one.
    /// (The MCA→native backend swap still happens transparently; only an
    /// error the fallback cannot absorb surfaces.)
    pub fn try_parallel<F>(&self, num_threads: usize, f: F) -> Result<(), RompError>
    where
        F: Fn(&Worker) + Sync,
    {
        if Self::in_parallel() {
            return self.run_inline_team(&f);
        }
        self.fork_join(num_threads, &f)
    }

    /// The fork/join engine behind `parallel`/`try_parallel`.
    fn fork_join<F>(&self, num_threads: usize, f: &F) -> Result<(), RompError>
    where
        F: Fn(&Worker) + Sync,
    {
        let n = self.normalize_team(num_threads);
        let _gate = self.inner.region_gate.lock();
        // Region boundary: if the backend poisoned itself mid-run, swap
        // in its fallback before forking the next team.
        self.inner.heal_backend();
        // An already-fired token means the job this region belongs to was
        // cancelled between regions: don't fork at all.
        if self
            .inner
            .current_cancel()
            .is_some_and(|t| t.is_cancelled())
        {
            return Err(RompError::Cancelled);
        }
        self.inner.stats.regions.fetch_add(1, Ordering::Relaxed);
        let team = self.inner.new_team(n)?;
        self.inner.ensure_pool(n.saturating_sub(1))?;
        let profiling = self.inner.profiling.load(Ordering::Relaxed);
        let func = erase_region_fn(f);
        {
            let pool = self.inner.pool.lock();
            for tid in 1..n {
                pool[tid - 1].assign(JobMsg {
                    team: Arc::clone(&team),
                    tid,
                    func,
                    rt: Arc::as_ptr(&self.inner),
                    profiling,
                });
            }
        }
        run_region_member(&JobMsg {
            team: Arc::clone(&team),
            tid: 0,
            func,
            rt: Arc::as_ptr(&self.inner),
            profiling,
        });
        // All members have passed the end barrier: fold this team's
        // counters into the runtime totals.
        let barriers = team.counters.barriers.load(Ordering::Relaxed);
        let criticals = team.counters.criticals.load(Ordering::Relaxed);
        self.inner
            .stats
            .barriers
            .fetch_add(barriers, Ordering::Relaxed);
        self.inner
            .stats
            .criticals
            .fetch_add(criticals, Ordering::Relaxed);
        self.inner.stats.singles.fetch_add(
            team.counters.singles.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.inner.stats.loops.fetch_add(
            team.counters.loops.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.inner.stats.tasks.fetch_add(
            team.counters.tasks.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.inner.stats.steals_local.fetch_add(
            team.counters.steals_local.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.inner.stats.steals_remote.fetch_add(
            team.counters.steals_remote.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        if profiling {
            let cpu: Vec<u64> = team
                .cpu_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            self.inner.profile.lock().merge(&cpu, barriers, criticals);
        }
        let payload = team.panic.lock().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
        // A user panic outranks cancellation (it is the more informative
        // outcome); a cleanly-cancelled team reports the typed error.
        if team.cancelled.load(Ordering::Acquire) {
            return Err(RompError::Cancelled);
        }
        Ok(())
    }

    fn run_team_of_one(&self, team: Arc<TeamShared>, func: RegionFn) -> Result<(), RompError> {
        run_region_member(&JobMsg {
            team: Arc::clone(&team),
            tid: 0,
            func,
            rt: Arc::as_ptr(&self.inner),
            profiling: false,
        });
        let payload = team.panic.lock().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
        if team.cancelled.load(Ordering::Acquire) {
            return Err(RompError::Cancelled);
        }
        Ok(())
    }

    fn run_inline_team<F: Fn(&Worker) + Sync>(&self, f: &F) -> Result<(), RompError> {
        let team = self.inner.new_team(1)?;
        self.run_team_of_one(team, erase_region_fn(f))
    }

    /// Last resort when even a team-of-one allocation fails through the
    /// backend: build the team from native services directly (which cannot
    /// fail) so `parallel` still completes.
    fn run_inline_native<F: Fn(&Worker) + Sync>(&self, f: &F) {
        let words = NativeBackend::new()
            .alloc_shared_words(TeamShared::reduce_words_len(1))
            .expect("native allocation is infallible");
        let team = Arc::new(TeamShared::new(
            1,
            Barrier::new(1, self.inner.cfg.barrier),
            words,
            Arc::clone(&self.inner.tracer),
            self.inner.current_cancel(),
            ShardLayout::single(1),
            self.inner.current_affinity(),
        ));
        let _ = self.run_team_of_one(team, erase_region_fn(f));
    }

    /// Run a region and collect each member's return value (indexed by
    /// thread number; if the region degraded to a smaller team, only the
    /// members that ran contribute).
    pub fn parallel_map<T, F>(&self, num_threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Worker) -> T + Sync,
    {
        let n = self.normalize_team(num_threads);
        let slots: Vec<PlMutex<Option<T>>> = (0..n).map(|_| PlMutex::new(None)).collect();
        self.parallel(n, |w| {
            let v = f(w);
            *slots[w.thread_num()].lock() = Some(v);
        });
        slots.into_iter().filter_map(|s| s.into_inner()).collect()
    }

    /// `#pragma omp parallel for` — fork a team and workshare `range`.
    pub fn parallel_for<F>(
        &self,
        num_threads: usize,
        range: std::ops::Range<u64>,
        sched: Schedule,
        f: F,
    ) where
        F: Fn(u64) + Sync,
    {
        self.parallel(num_threads, |w| {
            w.for_range_nowait(range.clone(), sched, &f);
        });
    }

    /// `#pragma omp parallel for reduction(+:sum)` over u64.
    pub fn parallel_reduce_sum<F>(
        &self,
        num_threads: usize,
        range: std::ops::Range<u64>,
        f: F,
    ) -> u64
    where
        F: Fn(u64) -> u64 + Sync,
    {
        let out = PlMutex::new(0u64);
        self.parallel(num_threads, |w| {
            let mut local = 0u64;
            w.for_chunks_nowait(range.clone(), Schedule::Static { chunk: None }, |chunk| {
                for i in chunk {
                    local = local.wrapping_add(f(i));
                }
            });
            let total = w.reduce_u64(local, ReduceOp::Sum);
            if w.is_master() {
                *out.lock() = total;
            }
        });
        out.into_inner()
    }

    /// `#pragma omp parallel for reduction(+:sum)` over f64.
    pub fn parallel_reduce_sum_f64<F>(
        &self,
        num_threads: usize,
        range: std::ops::Range<u64>,
        f: F,
    ) -> f64
    where
        F: Fn(u64) -> f64 + Sync,
    {
        let out = PlMutex::new(0f64);
        self.parallel(num_threads, |w| {
            let mut local = 0f64;
            w.for_chunks_nowait(range.clone(), Schedule::Static { chunk: None }, |chunk| {
                for i in chunk {
                    local += f(i);
                }
            });
            let total = w.reduce_f64(local, ReduceOp::Sum);
            if w.is_master() {
                *out.lock() = total;
            }
        });
        out.into_inner()
    }

    /// `#pragma omp parallel sections`: fork a team and distribute the
    /// given section bodies dynamically (each runs exactly once).
    pub fn parallel_sections(&self, num_threads: usize, sections: &[&(dyn Fn() + Sync)]) {
        let n_sections = sections.len();
        self.parallel(num_threads, |w| {
            w.sections(n_sections, |i| sections[i]());
        });
    }

    /// An OpenMP-style lock (`omp_init_lock`), backed by the runtime's
    /// backend — an MRAPI mutex on the MCA backend.  Never aborts: on
    /// persistent backend failure the lock comes from the fallback chain.
    pub fn new_lock(&self) -> OmpLock {
        OmpLock::new(
            self.inner
                .backend_new_lock()
                .unwrap_or_else(|_| native_lock()),
        )
    }

    /// Fallible [`Runtime::new_lock`]: surfaces the creation failure
    /// instead of silently degrading to a native lock.
    pub fn try_new_lock(&self) -> Result<OmpLock, RompError> {
        Ok(OmpLock::new(self.inner.backend_new_lock()?))
    }

    /// Arm (or clear, with `None`) the ambient [`CancelToken`]: every
    /// region forked while a token is armed carries a clone and unwinds at
    /// its cooperative checkpoints once the token fires, surfacing as
    /// [`RompError::Cancelled`] from [`Runtime::try_parallel`] (and a
    /// silent early return from [`Runtime::parallel`]).
    ///
    /// This is how a supervisor cancels work that forks regions
    /// internally (served kernels, benchmarks): arm a fresh token before
    /// dispatch, fire it from any thread, clear it afterwards.  Unarmed,
    /// checkpoints cost one branch.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        *self.inner.cancel.lock() = token;
    }

    /// Arm (or clear, with `None`) the ambient affinity key — the same
    /// discipline as [`Runtime::set_cancel_token`]: a dispatcher arms the
    /// job's key before running it and clears it afterwards.  While
    /// armed, every forked team hashes the key to a *home shard*
    /// ([`ShardLayout::shard_for_key`]); explicit tasks spawned by
    /// members outside the home shard are routed to its injector, so the
    /// job's task graph concentrates where its cache state lives.
    /// Meaningless (and free) on an unsharded runtime.
    ///
    /// ```
    /// use romp::{Config, Runtime};
    ///
    /// let rt = Runtime::with_config(Config::default().with_shards(2)).unwrap();
    /// rt.set_affinity(Some(42));
    /// rt.parallel(4, |w| {
    ///     w.task(|| { /* routed toward shard_for_key(42) */ });
    ///     w.taskwait();
    /// });
    /// rt.set_affinity(None);
    /// ```
    pub fn set_affinity(&self, key: Option<u64>) {
        *self.inner.affinity.lock() = key;
    }

    /// Externally poison the active backend so the next region boundary
    /// swaps in its fallback ([`Backend::poison`]).  The watchdog's
    /// escalation path: work wedged inside backend primitives (e.g. an
    /// MRAPI mutex timing out forever) is cut loose — poisoning also flips
    /// in-flight MCA lock waits onto their native escape hatch.  Returns
    /// whether the backend accepted the poisoning.
    pub fn poison_backend(&self, reason: &str) -> bool {
        self.inner
            .backend()
            .poison(RompError::Config(format!("externally poisoned: {reason}")))
    }

    /// If the active backend is poisoned, swap in its fallback *now*
    /// instead of waiting for the next region boundary.  Returns whether a
    /// swap happened.
    pub fn heal_backend_now(&self) -> bool {
        self.inner.heal_backend()
    }

    /// Wait until every pool worker has fully finished its in-flight
    /// region member (post-barrier epilogues included).
    ///
    /// This is the runtime's quiescence hook: long-lived hosts that share
    /// one runtime across many submitted jobs — the `romp-serve` drain
    /// path in particular — call it between "last job completed" and
    /// "report shutdown", so no worker is still running a trailing
    /// epilogue when the process exits.  [`Runtime::take_trace`] and
    /// [`Runtime::run_summary`] quiesce implicitly.
    ///
    /// Must not be called from inside a parallel region (the caller's own
    /// team member would never go idle).
    pub fn quiesce(&self) {
        self.inner.quiesce_pool();
    }

    /// Always-on construct counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// A monotonically increasing liveness signal: bumped every time a
    /// worker *enters* a synchronization construct (barrier, worksharing
    /// loop, critical), live from inside running regions.  A supervisor
    /// watching a cancelled job can distinguish "still unwinding toward a
    /// checkpoint" (value advancing) from "wedged inside the backend"
    /// (value flat) and escalate only the latter.
    pub fn activity(&self) -> u64 {
        self.inner
            .stats
            .activity
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The runtime's event recorder.  Armed via [`Config::with_tracing`]
    /// or `ROMP_TRACE=1`; disarmed (the default) it records nothing and
    /// each instrumentation site costs one relaxed atomic load.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.inner.tracer
    }

    /// Drain every buffered trace event into a [`Trace`] (per-thread
    /// lanes, drop accounting).  Empty when tracing is disarmed.
    ///
    /// Waits for every pool worker to finish its in-flight region member
    /// first (post-barrier epilogues included), so a drain right after
    /// [`Runtime::parallel`] returns sees complete spans.  Do not call
    /// from inside a parallel region.
    pub fn take_trace(&self) -> Trace {
        self.inner.quiesce_pool();
        self.inner.tracer.drain()
    }

    /// A non-consuming observability summary: trace event totals plus the
    /// metrics registry, with the always-on construct counters
    /// ([`Runtime::stats`]) folded in as `stats.*` counters.
    ///
    /// ```
    /// use romp::{BackendKind, Runtime};
    ///
    /// let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    /// rt.parallel(2, |w| w.barrier());
    /// let summary = rt.run_summary();
    /// assert_eq!(summary.events, 0, "tracing disarmed by default");
    /// assert!(summary.metrics.counters.iter().any(|(n, v)| n == "stats.regions" && *v == 1));
    /// println!("{}", summary.render());
    /// ```
    pub fn run_summary(&self) -> RunSummary {
        self.inner.quiesce_pool();
        let mut s = self.inner.tracer.summary();
        let st = self.stats();
        for (name, v) in [
            ("stats.regions", st.regions),
            ("stats.barriers", st.barriers),
            ("stats.criticals", st.criticals),
            ("stats.singles", st.singles),
            ("stats.loops", st.loops),
            ("stats.tasks", st.tasks),
            ("stats.steals.local", st.steals_local),
            ("stats.steals.remote", st.steals_remote),
        ] {
            if v > 0 {
                s.metrics.counters.push((name.to_string(), v));
            }
        }
        s.metrics.counters.sort();
        s
    }

    /// Zero the construct counters.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Toggle per-worker CPU profiling (for the virtual-time engine).
    pub fn set_profiling(&self, on: bool) {
        self.inner.profiling.store(on, Ordering::Relaxed);
    }

    /// Drop accumulated profile data.
    pub fn reset_profile(&self) {
        *self.inner.profile.lock() = ProfileAccum::default();
    }

    /// The profile accumulated since the last reset, as the platform cost
    /// model's input.
    pub fn take_profile(&self) -> RegionProfile {
        let mut p = self.inner.profile.lock();
        let out = p.to_region_profile();
        *p = ProfileAccum::default();
        out
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("backend", &self.inner.backend().name())
            .field("max_threads", &self.max_threads())
            .finish()
    }
}
