//! Team barriers: centralized and combining-tree algorithms.
//!
//! The barrier is the hottest synchronization construct in an OpenMP runtime
//! (every `parallel`, worksharing loop and `single` ends in one), so the
//! runtime offers two algorithms behind one interface:
//!
//! * [`BarrierKind::Centralized`] — one generation counter and one arrival
//!   counter (sense reversal via the generation); O(n) contention on a
//!   single cache line, minimal latency at small team sizes;
//! * [`BarrierKind::Tree`] — arrivals combine up a tree of the given arity
//!   (default 4, matching the T4240's four-core clusters: a cluster's
//!   arrivals meet in its shared L2 before one representative crosses the
//!   CoreNet fabric), release broadcast through the shared generation.
//!
//! On a sharded runtime (see [`mca_platform::ShardLayout`]) the team's
//! barrier is built with [`Barrier::with_layout`] and becomes
//! *hierarchical*: each shard counts its own arrivals on a private padded
//! counter (the per-shard phase), the last arriver in each shard is
//! elected as that shard's representative into a top-level counter, and
//! the last representative fires the shared release.  Intra-shard
//! arrivals thus stay inside the cluster's cache domain; exactly
//! `num_shards - 1` + 1 writes cross it per phase.
//!
//! Waiting is spin-then-sleep with an *idle callback* so the team can drain
//! explicit tasks while blocked — the OpenMP rule that barriers are task
//! scheduling points.  The sleep path uses a condition variable with a
//! bounded wait, which keeps oversubscribed runs (24 workers on one host
//! core) from melting down in spin loops.

use std::hint;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use mca_platform::ShardLayout;
use mca_sync::{CachePadded, Condvar, Mutex as PlMutex};

/// Barrier algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// Single arrival counter + generation.
    #[default]
    Centralized,
    /// Combining tree with the given arity (≥ 2).
    Tree {
        /// Children combined per tree node (clamped to ≥ 2).
        arity: usize,
    },
}

/// Shared release machinery: generation word + sleep support.  The
/// generation is cache-padded away from the arrival counters: every waiter
/// spins reading it, and sharing its line with a counter that every
/// arriver writes would turn each arrival into a team-wide invalidation.
struct Release {
    gen: CachePadded<AtomicU64>,
    lock: PlMutex<()>,
    cv: Condvar,
    /// Set by [`Barrier::cancel`].  Checked inside the wait loop (not just
    /// once before it) because a waiter can load the flag as clear, then
    /// the canceller sets it and fires — a one-shot release would race; the
    /// in-loop check cannot miss it.
    cancelled: AtomicBool,
}

impl Release {
    fn new() -> Self {
        Release {
            gen: CachePadded::new(AtomicU64::new(0)),
            lock: PlMutex::new(()),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    #[inline]
    fn current(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    fn fire(&self) {
        // Bump under the lock so sleepers can't miss the transition between
        // their check and their wait.
        {
            let _g = self.lock.lock();
            self.gen.fetch_add(1, Ordering::Release);
        }
        self.cv.notify_all();
    }

    /// Wait until the generation moves past `gen`, calling `idle` in the
    /// loop (it returns `true` when it did useful work and wants an
    /// immediate re-check).
    fn await_change(&self, gen: u64, mut idle: impl FnMut() -> bool) {
        let mut spins = 0u32;
        while self.current() == gen {
            if self.cancelled.load(Ordering::Acquire) {
                return;
            }
            if idle() {
                continue;
            }
            if spins < 64 {
                hint::spin_loop();
                spins += 1;
            } else if spins < 80 {
                std::thread::yield_now();
                spins += 1;
            } else {
                let mut guard = self.lock.lock();
                if self.current() != gen {
                    return;
                }
                // Bounded wait: re-runs the idle callback periodically so a
                // task posted late still gets drained.
                self.cv.wait_for(&mut guard, Duration::from_micros(500));
            }
        }
    }
}

/// A team barrier for a fixed number of participants.
pub struct Barrier {
    n: usize,
    release: Release,
    algo: Algo,
}

enum Algo {
    Central {
        arrived: CachePadded<AtomicUsize>,
    },
    Tree {
        arity: usize,
        /// `levels[l][node]` counts arrivals at that tree node.  Nodes are
        /// cache-padded so sibling subtrees combine without stealing each
        /// other's lines (the point of the tree shape in the first place).
        levels: Vec<Vec<CachePadded<AtomicUsize>>>,
        /// Expected arrivals per node (the last level expects the number of
        /// children that actually exist).
        expected: Vec<Vec<usize>>,
    },
    /// Two-level shard hierarchy: per-shard arrival counters electing one
    /// representative each into a top-level counter.
    Hier {
        /// `shard_of[tid]` — which per-shard counter `tid` arrives at.
        shard_of: Vec<usize>,
        /// Arrivals per shard, padded so shards don't share lines.
        shard_arrived: Vec<CachePadded<AtomicUsize>>,
        /// Members per shard (the per-shard arrival target).
        shard_expected: Vec<usize>,
        /// Representatives arrived at the top level.
        top_arrived: CachePadded<AtomicUsize>,
    },
}

impl Barrier {
    /// Build a barrier for `n` participants using `kind`.
    pub fn new(n: usize, kind: BarrierKind) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        let algo = match kind {
            BarrierKind::Centralized => Algo::Central {
                arrived: CachePadded::new(AtomicUsize::new(0)),
            },
            BarrierKind::Tree { arity } => {
                let arity = arity.max(2);
                let mut levels = Vec::new();
                let mut expected = Vec::new();
                let mut width = n;
                loop {
                    let nodes = width.div_ceil(arity);
                    levels.push(
                        (0..nodes)
                            .map(|_| CachePadded::new(AtomicUsize::new(0)))
                            .collect::<Vec<_>>(),
                    );
                    expected.push(
                        (0..nodes)
                            .map(|i| {
                                let lo = i * arity;
                                let hi = ((i + 1) * arity).min(width);
                                hi - lo
                            })
                            .collect::<Vec<_>>(),
                    );
                    if nodes == 1 {
                        break;
                    }
                    width = nodes;
                }
                Algo::Tree {
                    arity,
                    levels,
                    expected,
                }
            }
        };
        Barrier {
            n,
            release: Release::new(),
            algo,
        }
    }

    /// Build the barrier for a sharded team: hierarchical (per-shard
    /// phase + top-level representative phase) whenever the layout has
    /// more than one shard, falling back to `kind` on a single shard.
    pub fn with_layout(n: usize, kind: BarrierKind, layout: &ShardLayout) -> Self {
        if layout.num_shards() <= 1 || layout.num_members() != n {
            return Barrier::new(n, kind);
        }
        let num_shards = layout.num_shards();
        Barrier {
            n,
            release: Release::new(),
            algo: Algo::Hier {
                shard_of: (0..n).map(|tid| layout.shard_of(tid)).collect(),
                shard_arrived: (0..num_shards)
                    .map(|_| CachePadded::new(AtomicUsize::new(0)))
                    .collect(),
                shard_expected: (0..num_shards)
                    .map(|s| layout.members_of(s).len())
                    .collect(),
                top_arrived: CachePadded::new(AtomicUsize::new(0)),
            },
        }
    }

    /// Whether this barrier uses the two-level shard hierarchy.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self.algo, Algo::Hier { .. })
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Break the barrier permanently: current and future waiters return
    /// immediately without blocking.  Used when the owning team is
    /// cancelled — members unwinding past their remaining barriers must not
    /// leave late arrivers stranded on a count that will never fill.  The
    /// barrier is per-region, so a broken barrier dies with its team.
    pub fn cancel(&self) {
        self.release.cancelled.store(true, Ordering::Release);
        // Take the sleep lock so a waiter between its generation check and
        // its `cv` wait cannot miss the wake-up.
        {
            let _g = self.release.lock.lock();
        }
        self.release.cv.notify_all();
    }

    /// Has [`Barrier::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.release.cancelled.load(Ordering::Acquire)
    }

    /// Arrive and wait until all `n` participants have arrived.  `tid` is
    /// the caller's dense team index (needed by the tree to find its leaf).
    /// `idle` is invoked while waiting; return `true` from it after doing
    /// useful work to re-check immediately.
    pub fn wait_idle(&self, tid: usize, idle: impl FnMut() -> bool) {
        debug_assert!(tid < self.n);
        if self.n == 1 {
            return;
        }
        // A cancelled barrier admits nobody new: skipping the arrival
        // increment keeps the counts coherent for members that already
        // left, and `await_change` would return immediately anyway.
        if self.is_cancelled() {
            return;
        }
        let gen = self.release.current();
        let is_last = match &self.algo {
            Algo::Central { arrived } => {
                let me = arrived.fetch_add(1, Ordering::AcqRel) + 1;
                if me == self.n {
                    arrived.store(0, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            Algo::Tree {
                arity,
                levels,
                expected,
            } => {
                let mut idx = tid;
                let mut level = 0;
                loop {
                    let node = idx / arity;
                    let got = levels[level][node].fetch_add(1, Ordering::AcqRel) + 1;
                    if got < expected[level][node] {
                        break false;
                    }
                    // Last arriver at this node: reset it and carry upward.
                    levels[level][node].store(0, Ordering::Relaxed);
                    if level + 1 == levels.len() {
                        break true;
                    }
                    idx = node;
                    level += 1;
                }
            }
            Algo::Hier {
                shard_of,
                shard_arrived,
                shard_expected,
                top_arrived,
            } => {
                // Per-shard phase: arrivals stay on the shard's counter.
                let s = shard_of[tid];
                let got = shard_arrived[s].fetch_add(1, Ordering::AcqRel) + 1;
                if got < shard_expected[s] {
                    false
                } else {
                    // Elected representative: reset the shard phase (safe —
                    // every shard-mate is parked in `await_change` until the
                    // release fires) and carry one arrival to the top.
                    shard_arrived[s].store(0, Ordering::Relaxed);
                    let top = top_arrived.fetch_add(1, Ordering::AcqRel) + 1;
                    if top == shard_arrived.len() {
                        top_arrived.store(0, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                }
            }
        };
        if is_last {
            self.release.fire();
        } else {
            self.release.await_change(gen, idle);
        }
    }

    /// Arrive and wait, with no idle work.
    pub fn wait(&self, tid: usize) {
        self.wait_idle(tid, || false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Au64;
    use std::sync::Arc;
    use std::thread;

    fn phase_check(kind: BarrierKind, n: usize, rounds: u64) {
        let b = Arc::new(Barrier::new(n, kind));
        let phase = Arc::new(Au64::new(0));
        let errs = Arc::new(Au64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|tid| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                let errs = Arc::clone(&errs);
                thread::spawn(move || {
                    for r in 0..rounds {
                        // Everyone must observe the phase of round r before
                        // anyone moves to r+1.
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait(tid);
                        let p = phase.load(Ordering::SeqCst);
                        if p < (r + 1) * n as u64 {
                            errs.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            errs.load(Ordering::SeqCst),
            0,
            "{kind:?} leaked a thread through"
        );
        assert_eq!(phase.load(Ordering::SeqCst), rounds * n as u64);
    }

    #[test]
    fn centralized_is_a_barrier() {
        phase_check(BarrierKind::Centralized, 6, 50);
    }

    #[test]
    fn tree_is_a_barrier() {
        phase_check(BarrierKind::Tree { arity: 4 }, 9, 50);
    }

    #[test]
    fn tree_odd_sizes() {
        for n in [1, 2, 3, 5, 7, 13] {
            phase_check(BarrierKind::Tree { arity: 3 }, n, 10);
        }
    }

    #[test]
    fn single_participant_is_free() {
        let b = Barrier::new(1, BarrierKind::Centralized);
        for _ in 0..10 {
            b.wait(0); // must not block
        }
    }

    #[test]
    fn idle_callback_runs_while_waiting() {
        let b = Arc::new(Barrier::new(2, BarrierKind::Centralized));
        let ran = Arc::new(Au64::new(0));
        let b2 = Arc::clone(&b);
        let ran2 = Arc::clone(&ran);
        let h = thread::spawn(move || {
            b2.wait_idle(1, || {
                ran2.fetch_add(1, Ordering::Relaxed);
                false
            });
        });
        thread::sleep(Duration::from_millis(30));
        b.wait(0);
        h.join().unwrap();
        assert!(
            ran.load(Ordering::Relaxed) > 0,
            "idle callback should have run"
        );
    }

    #[test]
    fn reusable_across_many_generations() {
        let b = Arc::new(Barrier::new(3, BarrierKind::Tree { arity: 2 }));
        let sum = Arc::new(Au64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|tid| {
                let b = Arc::clone(&b);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    for _ in 0..200 {
                        sum.fetch_add(1, Ordering::Relaxed);
                        b.wait(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 600);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        Barrier::new(0, BarrierKind::Centralized);
    }

    /// `phase_check` against a hierarchical barrier built from a layout.
    fn hier_phase_check(shards: usize, n: usize, rounds: u64) {
        let layout = ShardLayout::uniform(shards, n);
        let b = Arc::new(Barrier::with_layout(n, BarrierKind::Centralized, &layout));
        assert_eq!(b.is_hierarchical(), layout.num_shards() > 1);
        let phase = Arc::new(Au64::new(0));
        let errs = Arc::new(Au64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|tid| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                let errs = Arc::clone(&errs);
                thread::spawn(move || {
                    for r in 0..rounds {
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait(tid);
                        if phase.load(Ordering::SeqCst) < (r + 1) * n as u64 {
                            errs.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            errs.load(Ordering::SeqCst),
            0,
            "{shards}-shard hierarchical barrier leaked a thread through"
        );
        assert_eq!(phase.load(Ordering::SeqCst), rounds * n as u64);
    }

    #[test]
    fn hierarchical_is_a_barrier_at_1_2_4_shards() {
        for shards in [1, 2, 4] {
            hier_phase_check(shards, 8, 50);
        }
    }

    #[test]
    fn hierarchical_uneven_shards() {
        // 7 members over 4 shards: shard 0..2 get 2 members, shard 3 one —
        // a single-member shard elects itself every phase.
        hier_phase_check(4, 7, 30);
        hier_phase_check(2, 3, 30);
    }

    #[test]
    fn hierarchical_cancel_unblocks_waiters() {
        let layout = ShardLayout::uniform(2, 4);
        let b = Arc::new(Barrier::with_layout(4, BarrierKind::Centralized, &layout));
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || b2.wait(1));
        thread::sleep(Duration::from_millis(10));
        b.cancel();
        h.join().unwrap();
        // Post-cancel arrivals fall straight through.
        b.wait(0);
        b.wait(2);
    }

    #[test]
    fn single_shard_layout_falls_back_to_kind() {
        let layout = ShardLayout::single(4);
        let b = Barrier::with_layout(4, BarrierKind::Tree { arity: 2 }, &layout);
        assert!(!b.is_hierarchical());
    }
}
