//! Runtime statistics and profiling for the virtual-time engine.
//!
//! Two layers:
//!
//! * [`RuntimeStats`] — cheap always-on counters (regions, barrier episodes,
//!   criticals, ...) used by tests and reports;
//! * the profile accumulator — per-worker CPU nanoseconds plus
//!   synchronization episode counts, gathered only when
//!   [`crate::Config::profiling`] is on, and convertible into an
//!   [`mca_platform::vtime::RegionProfile`] for the board cost model that
//!   regenerates the paper's Figure 4.

use std::sync::atomic::{AtomicU64, Ordering};

use mca_platform::vtime::RegionProfile;

/// Always-on construct counters.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub(crate) regions: AtomicU64,
    pub(crate) barriers: AtomicU64,
    pub(crate) criticals: AtomicU64,
    pub(crate) singles: AtomicU64,
    pub(crate) loops: AtomicU64,
    pub(crate) tasks: AtomicU64,
    pub(crate) steals_local: AtomicU64,
    pub(crate) steals_remote: AtomicU64,
    /// Live liveness signal: bumped at construct *entry* (unlike the
    /// per-team counters above, which fold in only at region end), so an
    /// external supervisor can tell a region that is still reaching
    /// synchronization points from one wedged inside the backend.
    pub(crate) activity: AtomicU64,
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Parallel regions executed.
    pub regions: u64,
    /// Team-wide barrier episodes (implicit + explicit).
    pub barriers: u64,
    /// Critical-section entries.
    pub criticals: u64,
    /// `single` constructs executed.
    pub singles: u64,
    /// Worksharing loop instances.
    pub loops: u64,
    /// Explicit tasks run.
    pub tasks: u64,
    /// Successful task steals that stayed inside the thief's shard.
    pub steals_local: u64,
    /// Successful task steals that crossed a shard boundary (zero on an
    /// unsharded runtime, and on a sharded one whose work never ran dry
    /// locally).
    pub steals_remote: u64,
}

impl RuntimeStats {
    /// Copy out the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            regions: self.regions.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            criticals: self.criticals.load(Ordering::Relaxed),
            singles: self.singles.load(Ordering::Relaxed),
            loops: self.loops.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            steals_local: self.steals_local.load(Ordering::Relaxed),
            steals_remote: self.steals_remote.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.regions.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
        self.criticals.store(0, Ordering::Relaxed);
        self.singles.store(0, Ordering::Relaxed);
        self.loops.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.steals_local.store(0, Ordering::Relaxed);
        self.steals_remote.store(0, Ordering::Relaxed);
    }
}

/// Accumulated profile across regions since the last reset.
#[derive(Debug, Default, Clone)]
pub(crate) struct ProfileAccum {
    /// Indexed by team thread number; grows to the largest team seen.
    pub per_tid_cpu_ns: Vec<u64>,
    pub barriers: u64,
    pub criticals: u64,
}

impl ProfileAccum {
    /// Fold one region's measurements in.
    pub fn merge(&mut self, cpu_ns: &[u64], barriers: u64, criticals: u64) {
        if self.per_tid_cpu_ns.len() < cpu_ns.len() {
            self.per_tid_cpu_ns.resize(cpu_ns.len(), 0);
        }
        for (slot, &ns) in self.per_tid_cpu_ns.iter_mut().zip(cpu_ns) {
            *slot += ns;
        }
        self.barriers += barriers;
        self.criticals += criticals;
    }

    /// Convert to the platform cost model's input.
    pub fn to_region_profile(&self) -> RegionProfile {
        RegionProfile {
            worker_cpu_ns: self.per_tid_cpu_ns.clone(),
            barriers: self.barriers,
            criticals: self.criticals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = RuntimeStats::default();
        s.regions.fetch_add(2, Ordering::Relaxed);
        s.barriers.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.regions, 2);
        assert_eq!(snap.barriers, 5);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn profile_merge_grows_and_sums() {
        let mut p = ProfileAccum::default();
        p.merge(&[10, 20], 1, 0);
        p.merge(&[1, 2, 3, 4], 2, 5);
        assert_eq!(p.per_tid_cpu_ns, vec![11, 22, 3, 4]);
        assert_eq!(p.barriers, 3);
        assert_eq!(p.criticals, 5);
        let rp = p.to_region_profile();
        assert_eq!(rp.num_workers(), 4);
        assert_eq!(rp.total_cpu_ns(), 40);
    }
}
