//! Low-level synchronization for the native backend.
//!
//! Stock libGOMP brings its own futex-based locks rather than pthread
//! mutexes; this module is the analogue: a spin-then-park mutex built from
//! atomics and `std::thread::park`, used by [`crate::backend::NativeBackend`]
//! wherever the MCA backend would use an MRAPI mutex.  Keeping the two
//! backends' lock implementations independent mirrors the paper's setup —
//! Table I compares exactly this substitution.

use std::collections::VecDeque;
use std::hint;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::thread::{self, Thread};
use std::time::Duration;

/// Mutex state values.
const FREE: u32 = 0;
const LOCKED: u32 = 1;
const CONTENDED: u32 = 2;

/// How many pause-loop iterations to burn before parking.  Short, because
/// the reproduction often runs oversubscribed (24 workers on few cores),
/// where long spins are pure waste.
const SPIN_LIMIT: u32 = 64;

/// A spin-then-park mutual-exclusion lock (the "native libGOMP" lock).
///
/// Fast path: one compare-and-swap.  Contended path: brief bounded spin,
/// then the thread enqueues itself and parks.  `park_timeout` bounds the
/// cost of the benign missed-wakeup race between enqueue and wake.
pub struct RawMutex {
    state: AtomicU32,
    queue_lock: AtomicBool,
    queue: std::cell::UnsafeCell<VecDeque<Thread>>,
}

// SAFETY: `queue` is only touched while `queue_lock` is held (see
// `with_queue`), making the UnsafeCell access exclusive.
unsafe impl Send for RawMutex {}
unsafe impl Sync for RawMutex {}

impl Default for RawMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl RawMutex {
    /// A new, unlocked mutex.
    pub const fn new() -> Self {
        RawMutex {
            state: AtomicU32::new(FREE),
            queue_lock: AtomicBool::new(false),
            queue: std::cell::UnsafeCell::new(VecDeque::new()),
        }
    }

    fn with_queue<T>(&self, f: impl FnOnce(&mut VecDeque<Thread>) -> T) -> T {
        while self
            .queue_lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            hint::spin_loop();
        }
        // SAFETY: queue_lock grants exclusive access.
        let out = f(unsafe { &mut *self.queue.get() });
        self.queue_lock.store(false, Ordering::Release);
        out
    }

    /// Acquire the lock, blocking as needed.
    #[inline]
    pub fn lock(&self) {
        if self
            .state
            .compare_exchange(FREE, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.lock_contended();
    }

    #[cold]
    fn lock_contended(&self) {
        let mut spins = 0;
        while spins < SPIN_LIMIT {
            if self.state.load(Ordering::Relaxed) == FREE
                && self
                    .state
                    .compare_exchange(FREE, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            hint::spin_loop();
            spins += 1;
        }
        loop {
            // Announce contention; if the lock happened to be free, we now
            // own it (in CONTENDED state — unlock will issue a spare wake,
            // which is harmless).
            if self.state.swap(CONTENDED, Ordering::Acquire) == FREE {
                return;
            }
            self.with_queue(|q| q.push_back(thread::current()));
            if self.state.load(Ordering::Acquire) == CONTENDED {
                // The timeout bounds the enqueue-after-wake race.
                thread::park_timeout(Duration::from_millis(1));
            }
        }
    }

    /// Acquire without blocking; `true` on success.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(FREE, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Release the lock.  Must only be called by the current holder.
    #[inline]
    pub fn unlock(&self) {
        if self.state.swap(FREE, Ordering::Release) == CONTENDED {
            if let Some(t) = self.with_queue(|q| q.pop_front()) {
                t.unpark();
            }
        }
    }

    /// Run `f` under the lock.
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        self.lock();
        let out = f();
        self.unlock();
        out
    }
}

/// A value guarded by a backend-provided lock (see
/// [`crate::backend::RegionLock`]): the runtime's internal shared structures
/// go through this so that the *backend choice* decides which mutex
/// implementation protects them — the substitution the paper performs on
/// libGOMP's `gomp_mutex` entry points (§5B.3).
pub struct BackendMutex<T> {
    lock: std::sync::Arc<dyn crate::backend::RegionLock>,
    cell: std::cell::UnsafeCell<T>,
}

// SAFETY: `cell` is only accessed inside `with`, bracketed by
// lock()/unlock() on a mutual-exclusion lock, so access is exclusive.
unsafe impl<T: Send> Send for BackendMutex<T> {}
unsafe impl<T: Send> Sync for BackendMutex<T> {}

impl<T> BackendMutex<T> {
    /// Wrap `value` under `lock`.
    pub fn new(lock: std::sync::Arc<dyn crate::backend::RegionLock>, value: T) -> Self {
        BackendMutex {
            lock,
            cell: std::cell::UnsafeCell::new(value),
        }
    }

    /// Run `f` with exclusive access to the value.
    pub fn with<U>(&self, f: impl FnOnce(&mut T) -> U) -> U {
        self.lock.lock();
        // SAFETY: the backend lock provides mutual exclusion.
        let out = f(unsafe { &mut *self.cell.get() });
        // The guard was held, so the only unlock errors are injected
        // transients already retried by the lock; nothing to surface here.
        let _ = self.lock.unlock();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_unlock() {
        let m = RawMutex::new();
        m.lock();
        assert!(!m.try_lock());
        m.unlock();
        assert!(m.try_lock());
        m.unlock();
    }

    #[test]
    fn with_runs_exclusively() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let m = Arc::new(RawMutex::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        // Non-atomic read-modify-write made correct only by
                        // the mutex.
                        m.with(|| {
                            let v = c.load(Ordering::Relaxed);
                            c.store(v + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn contended_threads_all_make_progress() {
        let m = Arc::new(RawMutex::new());
        m.lock();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    m.lock();
                    m.unlock();
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        m.unlock();
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    fn backend_mutex_wraps_region_lock() {
        use crate::backend::{Backend, NativeBackend};
        let be = NativeBackend::new();
        let bm = Arc::new(BackendMutex::new(be.new_lock().unwrap(), Vec::<u32>::new()));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let bm = Arc::clone(&bm);
                thread::spawn(move || {
                    for k in 0..100 {
                        bm.with(|v| v.push(i * 1000 + k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        bm.with(|v| assert_eq!(v.len(), 400));
    }
}
