//! Mixed-load driver for `romp-serve` integration tests.
//!
//! The chaos and validation suites need to hold a serving endpoint under
//! realistic concurrent load — several clients, a mixed EPCC/NPB job
//! rotation, admission-control retries — while something else (a fault
//! plan, a drain request) happens to the server.  This module packages
//! that driver so each test does not re-implement it.

use std::net::SocketAddr;
use std::time::Duration;

use mca_sync::SmallRng;
use romp_epcc::Construct;
use romp_npb::{Class, NpbKernel};
use romp_serve::{Client, ClientError, JobSpec, SubmitOptions};

/// Aggregate result of one [`drive_mixed_load`] run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Jobs the server accepted (admission granted).
    pub accepted: u64,
    /// Accepted jobs whose results came back with `ok == true`.
    pub completed: u64,
    /// Accepted jobs whose results came back with `ok == false`.
    pub failed: u64,
    /// Admission rejections absorbed by retry before acceptance.
    pub rejections: u64,
    /// Submissions refused because the server was draining.
    pub drain_refusals: u64,
}

impl LoadReport {
    /// Accepted jobs that never produced a result — the quantity every
    /// serving test asserts is zero.
    pub fn lost(&self) -> u64 {
        self.accepted - self.completed - self.failed
    }

    fn absorb(&mut self, other: LoadReport) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.rejections += other.rejections;
        self.drain_refusals += other.drain_refusals;
    }
}

/// The job rotation: every EPCC construct family plus both fast NPB
/// kernels, all sized to finish in milliseconds so a load run exercises
/// queueing rather than kernel arithmetic.
pub fn mixed_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::Epcc {
            construct: Construct::Parallel,
            threads: 2,
            inner_reps: 4,
        },
        JobSpec::Epcc {
            construct: Construct::Barrier,
            threads: 2,
            inner_reps: 8,
        },
        JobSpec::Epcc {
            construct: Construct::Critical,
            threads: 2,
            inner_reps: 4,
        },
        JobSpec::Epcc {
            construct: Construct::Reduction,
            threads: 2,
            inner_reps: 4,
        },
        JobSpec::Npb {
            kernel: NpbKernel::Ep,
            class: Class::S,
            threads: 2,
        },
        JobSpec::Npb {
            kernel: NpbKernel::Is,
            class: Class::S,
            threads: 2,
        },
    ]
}

/// Drive `clients` concurrent connections, each submitting
/// `requests_per_client` jobs from the [`mixed_specs`] rotation (offset
/// per client so the wire sees interleaved job kinds), waiting for every
/// result.  Admission rejections are retried until accepted; only a
/// draining server makes a submission count as refused.
///
/// Panics on transport or protocol errors — in a test, those are
/// failures, not data.
pub fn drive_mixed_load(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            std::thread::spawn(move || {
                let specs = mixed_specs();
                let mut c = Client::connect(addr).expect("connect");
                let mut local = LoadReport::default();
                for r in 0..requests_per_client {
                    let spec = specs[(k + r) % specs.len()];
                    match c.submit_with_retry(&spec, Duration::from_secs(60)) {
                        Ok(Some((id, rejections))) => {
                            local.accepted += 1;
                            local.rejections += u64::from(rejections);
                            let out = c
                                .wait_result(id, Duration::from_secs(120))
                                .expect("result for accepted job");
                            if out.ok {
                                local.completed += 1;
                            } else {
                                local.failed += 1;
                            }
                        }
                        Ok(None) => local.drain_refusals += 1,
                        Err(ClientError::Closed) => {
                            // Server went away mid-run; stop this client.
                            break;
                        }
                        Err(e) => panic!("client {k} request {r}: {e}"),
                    }
                }
                local
            })
        })
        .collect();
    let mut report = LoadReport::default();
    for h in handles {
        report.absorb(h.join().expect("load client panicked"));
    }
    report
}

/// Aggregate result of one [`drive_cancel_storm`] run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StormReport {
    /// Jobs the server accepted.
    pub accepted: u64,
    /// Results with `ok == true`.
    pub completed: u64,
    /// Results reporting cancellation or a missed deadline.
    pub killed: u64,
    /// Results with `ok == false` for any other reason.
    pub failed: u64,
    /// Cancel requests issued.
    pub cancels_sent: u64,
    /// Submissions refused because the server was draining.
    pub drain_refusals: u64,
}

impl StormReport {
    /// Accepted jobs that never produced a result — must be zero.
    pub fn lost(&self) -> u64 {
        self.accepted - self.completed - self.killed - self.failed
    }

    fn absorb(&mut self, other: StormReport) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.killed += other.killed;
        self.failed += other.failed;
        self.cancels_sent += other.cancels_sent;
        self.drain_refusals += other.drain_refusals;
    }
}

/// A cancellation storm: `clients` concurrent connections each submit
/// `requests_per_client` jobs from the [`mixed_specs`] rotation with
/// idempotency keys and (one in three) a short deadline, then cancel
/// roughly 20% of them at a random moment — so Cancel races every
/// lifecycle state: still queued, mid-dispatch, mid-execution, already
/// complete, even already fetched.  Every accepted job must still reach
/// exactly one terminal outcome; the caller asserts `lost() == 0`.
pub fn drive_cancel_storm(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
    seed: u64,
) -> StormReport {
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            std::thread::spawn(move || {
                let specs = mixed_specs();
                let mut rng = SmallRng::seed_from_u64(seed ^ (0xD00D_F00D << 1) ^ k as u64);
                let mut c = Client::connect(addr).expect("connect");
                let mut local = StormReport::default();
                for r in 0..requests_per_client {
                    let spec = specs[(k + r) % specs.len()];
                    let opts = SubmitOptions {
                        // One in three jobs carries a real (but generous
                        // vs. job length) deadline; the rest are open.
                        deadline_ms: if rng.gen_index(0, 3) == 0 {
                            rng.gen_range(2_000, 10_000) as u32
                        } else {
                            0
                        },
                        // Unique non-zero key per (client, request).
                        idem_key: ((k as u64) << 32) | (r as u64 + 1),
                        // Per-client shard key: each client's jobs share a
                        // home shard, so the storm exercises both pinned
                        // and cross-shard scheduling.
                        affinity: k as u64 + 1,
                        // Rotate across all three lanes so the storm also
                        // exercises weighted lane dispatch.
                        priority: ((k + r) % 3) as u8,
                    };
                    match c.submit_with_retry_opts(&spec, opts, Duration::from_secs(60)) {
                        Ok(Some((id, _rejections))) => {
                            local.accepted += 1;
                            if rng.gen_index(0, 5) == 0 {
                                // Let the job advance a random distance
                                // before the cancel lands.
                                std::thread::sleep(Duration::from_micros(rng.gen_range(0, 800)));
                                c.cancel(id).expect("cancel accepted job");
                                local.cancels_sent += 1;
                            }
                            let out = c
                                .wait_result(id, Duration::from_secs(120))
                                .expect("result for accepted job");
                            if out.ok {
                                local.completed += 1;
                            } else if out.detail.contains("cancel")
                                || out.detail.contains("deadline")
                            {
                                local.killed += 1;
                            } else {
                                local.failed += 1;
                            }
                        }
                        Ok(None) => local.drain_refusals += 1,
                        Err(ClientError::Closed) => break,
                        Err(e) => panic!("storm client {k} request {r}: {e}"),
                    }
                }
                local
            })
        })
        .collect();
    let mut report = StormReport::default();
    for h in handles {
        report.absorb(h.join().expect("storm client panicked"));
    }
    report
}
