//! Chaos-mode driver: the construct matrix under N seeded fault schedules.
//!
//! ```text
//! chaos [--seeds N] [--seed-base S] [--teams 1,4] [--backend both|native|mca]
//! ```
//!
//! Exit status 1 if any run violated the fault-tolerance contract
//! (panicked or completed with wrong results); typed errors and
//! MCA→native degradations are permitted outcomes and are reported.

use romp::BackendKind;
use romp_validation::chaos::run_chaos;

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let mut n_seeds = 8usize;
    let mut seed_base = 0xC0FFEEu64;
    let mut teams = vec![1usize, 4];
    let mut kinds = vec![BackendKind::Native, BackendKind::Mca];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--seeds" => {
                n_seeds = need(i).parse().expect("--seeds takes a count");
                i += 2;
            }
            "--seed-base" => {
                seed_base = parse_u64(need(i)).expect("--seed-base takes a u64");
                i += 2;
            }
            "--teams" => {
                teams = need(i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--teams takes sizes"))
                    .collect();
                i += 2;
            }
            "--backend" => {
                kinds = match need(i).as_str() {
                    "both" => vec![BackendKind::Native, BackendKind::Mca],
                    s => vec![BackendKind::parse(s).expect("--backend native|mca|both")],
                };
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let seeds: Vec<u64> = (0..n_seeds as u64).map(|k| seed_base + k).collect();
    println!(
        "chaos: {} seeds from {seed_base:#x}, teams {teams:?}, backends {:?}",
        seeds.len(),
        kinds.iter().map(|k| k.label()).collect::<Vec<_>>()
    );
    for &seed in &seeds {
        println!(
            "  seed {seed:#x}: {}",
            mca_mrapi::FaultPlan::from_seed(seed).describe()
        );
    }

    let mut failed = false;
    for kind in kinds {
        let report = run_chaos(kind, &seeds, &teams);
        println!("{}", report.summary());
        if !report.degraded_seeds.is_empty() {
            println!(
                "  {} seeds degraded to the fallback backend: {:?}",
                report.degraded_seeds.len(),
                report
                    .degraded_seeds
                    .iter()
                    .map(|s| format!("{s:#x}"))
                    .collect::<Vec<_>>()
            );
        }
        for (seed, summary) in &report.summaries {
            println!("  -- trace summary, seed {seed:#x} --");
            for line in summary.render().lines() {
                println!("  {line}");
            }
        }
        if !report.all_safe() {
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
