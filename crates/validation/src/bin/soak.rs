//! Soak driver: a long-running in-process server under a cancellation
//! storm, with a persistent MRAPI fault armed partway through.
//!
//! ```text
//! soak [--secs N] [--clients N] [--seed S]
//! ```
//!
//! Runs [`drive_cancel_storm`] waves against one MCA-backed server until
//! the time budget is spent, arming a persistent `MutexLock` timeout
//! fault halfway, then drains and audits the books: every accepted job
//! reached exactly one terminal state (`dropped == 0`), no storm client
//! hit a protocol error (the driver panics on any), and the server kept
//! serving after both the fault and every cancellation.  Exit status 1
//! on any violation — this is the CI `soak` job's assertion.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite, MrapiStatus, MrapiSystem};
use romp::{BackendKind, Config, McaBackend, McaOptions, RetryPolicy, Runtime};
use romp_serve::{Client, ServeConfig, Server};
use romp_validation::drive_cancel_storm;

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let mut secs = 20u64;
    let mut clients = 4usize;
    let mut seed = 0x50A4_BEEF_u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--secs" => {
                secs = need(i).parse().expect("--secs takes seconds");
                i += 2;
            }
            "--clients" => {
                clients = need(i).parse().expect("--clients takes a count");
                i += 2;
            }
            "--seed" => {
                seed = parse_u64(need(i)).expect("--seed takes a u64");
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // An MCA-backed runtime whose MRAPI system we keep, so the fault can
    // be armed mid-soak; a short lock timeout keeps escalation fast.
    let sys = MrapiSystem::new_t4240();
    let be = McaBackend::with_options(
        sys.clone(),
        McaOptions {
            lock_timeout: Duration::from_millis(10),
            retry: RetryPolicy::default(),
        },
    )
    .expect("MCA backend construction");
    let rt = Runtime::with_config_and_backend(
        Config::default().with_backend(BackendKind::Mca),
        Box::new(be),
    )
    .expect("runtime construction");

    // Every job gets a deadline: jobs that carry none inherit the server
    // default, so a wedge can never outlive deadline + grace.  Without
    // this, an open-ended job that hits the persistent lock fault would
    // hang the dispatcher forever (supervision is opt-in by design).
    let cfg = ServeConfig {
        queue_cap: 128,
        default_deadline_ms: 10_000,
        ..ServeConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", cfg, rt).expect("bind");
    let addr = handle.addr();
    println!("soak: {secs}s, {clients} clients, seed {seed:#x}, serving on {addr}");

    let deadline = Instant::now() + Duration::from_secs(secs);
    let arm_at = Instant::now() + Duration::from_secs(secs / 2);
    let mut armed = false;
    let mut wave = 0u64;
    let mut total_accepted = 0u64;
    let mut total_cancels = 0u64;
    while Instant::now() < deadline {
        if !armed && Instant::now() >= arm_at {
            // Halfway in: every MRAPI mutex lock times out from now on.
            // Jobs wedge on the lock, the watchdog escalates, the backend
            // falls over to native, and serving must continue.
            let plan = Arc::new(FaultPlan::new(seed).with_persistent(
                FaultSite::MutexLock,
                MrapiStatus::Timeout,
                0,
            ));
            sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
            armed = true;
            println!("soak: armed persistent MutexLock timeout fault");
        }
        let report = drive_cancel_storm(addr, clients, 8, seed.wrapping_add(wave));
        if report.lost() != 0 {
            eprintln!("soak: wave {wave} lost jobs: {report:?}");
            std::process::exit(1);
        }
        total_accepted += report.accepted;
        total_cancels += report.cancels_sent;
        wave += 1;
    }

    let mut c = Client::connect(addr).expect("final connect");
    let stats = c.stats().expect("stats");
    c.shutdown().expect("shutdown");
    let report = handle.join();
    println!("soak: {wave} waves, {total_accepted} jobs, {total_cancels} cancels");
    println!("{}", report.to_json());

    let mut failed = false;
    if report.dropped != 0 {
        eprintln!("soak: drain dropped {} accepted jobs", report.dropped);
        failed = true;
    }
    if !stats.contains("\"watchdog.ticks\"") {
        eprintln!("soak: watchdog metrics missing from stats");
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
