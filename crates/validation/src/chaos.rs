//! Chaos mode: the construct matrix under seeded MRAPI fault schedules.
//!
//! The fault-tolerance contract (DESIGN.md §5) is behavioural, not
//! structural: under *any* spec-legal MRAPI failure pattern the runtime
//! must either complete a construct with correct results (possibly after
//! degrading to the native backend) or surface a typed [`romp::RompError`]
//! — it must never panic, abort, or complete with wrong answers.  This
//! module reruns the §6A validation checks under deterministic
//! [`mca_mrapi::FaultPlan`] schedules and classifies every run.
//!
//! Cross-checks (the deliberately broken construct variants of
//! [`crate::checks`]) are *not* run here: they prove detectability by
//! racing, and an injected latency spike can serialize the race and make
//! the broken variant pass by accident — a false "vacuous check" signal
//! that has nothing to do with fault tolerance.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use romp::trace::RunSummary;
use romp::{BackendKind, Config, RetryPolicy, Runtime};

use crate::checks;

/// How one check ended under one fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The check completed and its correctness predicate held.
    Correct,
    /// The check completed with wrong results — a safety violation.
    CheckFailed(String),
    /// The check (or the runtime under it) panicked — a safety violation.
    Panicked(String),
    /// The run did not complete, but failed with a typed error — the
    /// contract's permitted non-completion.
    TypedError(String),
}

/// One (seed, team size, check) execution.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    pub seed: u64,
    pub threads: usize,
    pub check: &'static str,
    pub outcome: ChaosOutcome,
}

impl ChaosRun {
    /// Whether this run violated the fault-tolerance contract.
    pub fn violation(&self) -> bool {
        matches!(
            self.outcome,
            ChaosOutcome::CheckFailed(_) | ChaosOutcome::Panicked(_)
        )
    }
}

/// Results of a chaos campaign on one backend.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    pub backend: &'static str,
    pub runs: Vec<ChaosRun>,
    /// Seeds whose runtime degraded away from the configured backend
    /// (MCA→native fallback observed).
    pub degraded_seeds: Vec<u64>,
    /// Over-long lock waits observed across all seeds.
    pub deadlock_reports: usize,
    /// Per-seed observability summaries, collected only when the campaign
    /// ran with tracing armed (`ROMP_TRACE=1`); empty otherwise.
    pub summaries: Vec<(u64, RunSummary)>,
}

impl ChaosReport {
    /// Whether no run panicked or produced wrong results.
    pub fn all_safe(&self) -> bool {
        self.runs.iter().all(|r| !r.violation())
    }

    /// The violating runs.
    pub fn violations(&self) -> Vec<&ChaosRun> {
        self.runs.iter().filter(|r| r.violation()).collect()
    }

    /// Human-readable summary (violations listed; counts otherwise).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for r in self.violations() {
            s.push_str(&format!(
                "seed {:#x} / {} @ {} threads: {:?}\n",
                r.seed, r.check, r.threads, r.outcome
            ));
        }
        let typed = self
            .runs
            .iter()
            .filter(|r| matches!(r.outcome, ChaosOutcome::TypedError(_)))
            .count();
        s.push_str(&format!(
            "{}: {} runs, {} violations, {} typed errors, {} degraded seeds, {} lock-wait reports",
            self.backend,
            self.runs.len(),
            self.violations().len(),
            typed,
            self.degraded_seeds.len(),
            self.deadlock_reports
        ));
        if !self.summaries.is_empty() {
            let events: u64 = self.summaries.iter().map(|(_, s)| s.events).sum();
            let dropped: u64 = self.summaries.iter().map(|(_, s)| s.dropped).sum();
            s.push_str(&format!(
                ", {} trace events ({} dropped) across {} traced seeds",
                events,
                dropped,
                self.summaries.len()
            ));
        }
        s
    }
}

/// The chaos configuration for `seed`: short lock timeout so wedged-lock
/// schedules degrade in milliseconds, a tight retry ladder, and the
/// seeded fault plan itself.  Tracing follows the environment
/// (`ROMP_TRACE`/`ROMP_TRACE_OUT`), so a chaos campaign can be replayed
/// with a chrome trace per seed.
pub fn chaos_config(kind: BackendKind, seed: u64) -> Config {
    let env = Config::from_env();
    let mut cfg = Config::default()
        .with_backend(kind)
        .with_fault_seed(seed)
        .with_lock_timeout(Duration::from_millis(10))
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(20),
            max_delay: Duration::from_micros(500),
        })
        .with_tracing(env.trace);
    cfg.trace_out = env.trace_out;
    // Sharding follows the environment too (`ROMP_SHARDS`), so the same
    // fault schedules can be replayed against a sharded runtime.
    cfg.shards = env.shards;
    cfg
}

/// `chaos_config` with the trace output redirected to a per-seed file
/// (`foo.json` → `foo-seed-0xSEED.json`) so a multi-seed campaign does not
/// overwrite one trace with the next.
fn seeded_config(kind: BackendKind, seed: u64, many_seeds: bool) -> Config {
    let mut cfg = chaos_config(kind, seed);
    if many_seeds {
        if let Some(path) = cfg.trace_out.take() {
            let (stem, ext) = match path.rsplit_once('.') {
                Some((s, e)) => (s.to_string(), format!(".{e}")),
                None => (path, String::new()),
            };
            cfg.trace_out = Some(format!("{stem}-seed-{seed:#x}{ext}"));
        }
    }
    cfg
}

/// Run the construct matrix under each seeded fault schedule on `kind`.
///
/// Every check runs under `catch_unwind`: a panic is recorded as a
/// violation, never propagated, so one bad schedule cannot mask the rest
/// of the campaign.
pub fn run_chaos(kind: BackendKind, seeds: &[u64], team_sizes: &[usize]) -> ChaosReport {
    let mut runs = Vec::new();
    let mut degraded_seeds = Vec::new();
    let mut deadlock_reports = 0usize;
    let mut summaries = Vec::new();
    for &seed in seeds {
        let rt = match Runtime::with_config(seeded_config(kind, seed, seeds.len() > 1)) {
            Ok(rt) => rt,
            Err(e) => {
                // Typed construction failure: a permitted non-completion
                // covering every check of this seed.
                runs.push(ChaosRun {
                    seed,
                    threads: 0,
                    check: "construct-runtime",
                    outcome: ChaosOutcome::TypedError(e.to_string()),
                });
                continue;
            }
        };
        for &n in team_sizes {
            for (name, check, _crosscheck) in checks() {
                let outcome = match catch_unwind(AssertUnwindSafe(|| check(&rt, n))) {
                    Ok(Ok(())) => ChaosOutcome::Correct,
                    Ok(Err(msg)) => ChaosOutcome::CheckFailed(msg),
                    Err(payload) => ChaosOutcome::Panicked(panic_message(&payload)),
                };
                runs.push(ChaosRun {
                    seed,
                    threads: n,
                    check: name,
                    outcome,
                });
            }
        }
        if rt.degraded() {
            degraded_seeds.push(seed);
        }
        deadlock_reports += rt.take_deadlock_reports().len();
        if rt.tracer().armed() {
            // `run_summary` does not consume the buffered events, so the
            // runtime's drop still writes the full chrome trace.
            summaries.push((seed, rt.run_summary()));
        }
    }
    ChaosReport {
        backend: kind.label(),
        runs,
        degraded_seeds,
        deadlock_reports,
        summaries,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_seed_matches_plain_suite() {
        // A chaos run whose schedule happens to be quiet must behave like
        // the plain suite: all correct, nothing degraded.
        let report = run_chaos(BackendKind::Native, &[1], &[2]);
        assert!(report.all_safe(), "{}", report.summary());
        assert!(report
            .runs
            .iter()
            .all(|r| r.outcome == ChaosOutcome::Correct));
    }

    #[test]
    fn mca_chaos_single_seed_is_safe() {
        let report = run_chaos(BackendKind::Mca, &[0xC0FFEE], &[1, 4]);
        assert!(report.all_safe(), "{}", report.summary());
    }

    #[test]
    fn summary_counts_runs() {
        let report = run_chaos(BackendKind::Native, &[7], &[1]);
        assert_eq!(report.runs.len(), checks().len());
        assert!(report.summary().contains("0 violations"));
    }
}
